//! # abccc-suite — umbrella crate for the ABCCC reproduction
//!
//! This crate re-exports the whole workspace behind one dependency and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration and property tests (`tests/`). For the individual pieces
//! see:
//!
//! * [`abccc`] — the paper's contribution (topology, routing, expansion);
//! * [`dcn_baselines`] — BCube, BCCC, DCell, fat-tree, hypercube;
//! * [`netgraph`] — the graph substrate (BFS, max-flow, disjoint paths);
//! * [`dcn_metrics`] — diameter/bisection/CAPEX/expansion metrics;
//! * [`dcn_sim`] — the unified traffic engine (fluid + packet fidelity;
//!   `flowsim`/`packetsim` are compatibility shims over it);
//! * [`dcn_workloads`] — traffic patterns, failure generators, and the
//!   production scenario library;
//! * [`dcn_fib`] — compiled forwarding tables + the route-query service.
//!
//! ```
//! use abccc_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Abccc::new(AbcccParams::new(4, 1, 2)?)?;
//! assert_eq!(topo.network().server_count(), 32);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use abccc;
pub use dcn_baselines;
pub use dcn_fib;
pub use dcn_metrics;
pub use dcn_sim;
pub use dcn_workloads;
pub use flowsim;
pub use netgraph;
pub use packetsim;

/// The common imports for examples and quick experiments.
pub mod prelude {
    pub use abccc::{
        Abccc, AbcccParams, CubeLabel, ExpansionStep, PermStrategy, ResilientRouter, RetryBudget,
        Router, ServerAddr,
    };
    pub use dcn_baselines::{
        BCube, BCubeParams, Bccc, BcccParams, DCell, DCellParams, FatTree, FatTreeParams,
        Hypercube, HypercubeParams,
    };
    pub use dcn_fib::{Fib, FibCompiler, RouteService};
    pub use dcn_metrics::{CostModel, TopologyStats};
    pub use dcn_sim::{
        Fidelity, FlowSim, FlowSpec, PacketSim, PacketSimConfig, Scenario, ScenarioFlow,
        ScenarioReport, TrafficEngine,
    };
    pub use netgraph::{FaultMask, Network, NodeId, Route, Topology};
}
