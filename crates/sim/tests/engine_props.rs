//! Property tests for the unified traffic engine: thread-count
//! determinism of the batch runner, fluid-vs-packet FCT bracketing on
//! lone flows, and byte conservation across the whole scenario catalog.

use abccc::{Abccc, AbcccParams};
use dcn_sim::{Fidelity, PacketSimConfig, Scenario, ScenarioFlow, TrafficEngine};
use dcn_workloads::scenarios;
use netgraph::{NodeId, Topology};
use proptest::prelude::*;

fn small_topo() -> Abccc {
    Abccc::new(AbcccParams::new(3, 1, 2).expect("valid")).expect("build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batch runner's reports are byte-identical regardless of the
    /// worker-thread count: same scenarios, any interleaving, one answer.
    #[test]
    fn run_batch_reports_are_thread_invariant(
        seeds in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        threads in 2usize..6,
    ) {
        let topo = small_topo();
        let n = topo.network().server_count();
        let engine = TrafficEngine::new(&topo);
        let seeds = [seeds.0, seeds.1, seeds.2, seeds.3, seeds.4];
        let batch: Vec<Scenario> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let name = scenarios::NAMES[i % scenarios::NAMES.len()];
                scenarios::by_name(name, n, seed).expect("catalog name")
            })
            .collect();
        let serial: Vec<String> = engine
            .run_batch(&batch, 1)
            .expect("serial batch")
            .iter()
            .map(|r| serde_json::to_string(r).expect("json"))
            .collect();
        let parallel: Vec<String> = engine
            .run_batch(&batch, threads)
            .expect("parallel batch")
            .iter()
            .map(|r| serde_json::to_string(r).expect("json"))
            .collect();
        prop_assert_eq!(serial, parallel);
    }

    /// On a lone flow the two fidelities bracket each other exactly:
    /// fluid FCT is the ideal `bytes * 8` ns at 1 Gbps, and the packet
    /// loop pays at most the store-and-forward pipeline on top of it.
    #[test]
    fn packet_fct_brackets_fluid_on_lone_flows(
        bytes in 1_500u64..400_000,
        pair in (any::<u32>(), any::<u32>()),
    ) {
        let topo = small_topo();
        let n = topo.network().server_count() as u32;
        let (src, dst) = (NodeId(pair.0 % n), NodeId(pair.1 % n));
        prop_assume!(src != dst);
        let engine = TrafficEngine::new(&topo);

        let mut fluid = Scenario::new("lone", 1, Fidelity::Fluid);
        fluid.flows.push(ScenarioFlow::bulk(src, dst, bytes));
        let fluid_fct = engine.run(&fluid).expect("fluid")
            .per_flow[0].fct_ns.expect("complete");
        prop_assert_eq!(fluid_fct, bytes * 8, "lone fluid flow runs at line rate");

        let mut packet = Scenario::new("lone", 1, Fidelity::packet_open());
        packet.flows.push(ScenarioFlow::bulk(src, dst, bytes));
        let packet_fct = engine.run(&packet).expect("packet")
            .per_flow[0].fct_ns.expect("complete");

        let cfg = PacketSimConfig::default();
        let per_hop = cfg.tx_time_ns() + cfg.prop_delay_ns;
        let hops = topo.route(src, dst).expect("route").link_hops() as u64;
        prop_assert!(
            packet_fct >= fluid_fct,
            "store-and-forward cannot beat the fluid ideal: {packet_fct} < {fluid_fct}"
        );
        prop_assert!(
            packet_fct <= fluid_fct + hops * per_hop,
            "lone packet flow exceeds the pipeline bound: \
             {packet_fct} > {fluid_fct} + {hops} * {per_hop}"
        );
    }

    /// Every catalog scenario conserves bytes on every seed
    /// (offered == delivered + dropped + killed, in aggregate and per
    /// flow), and reruns reproduce the identical report.
    #[test]
    fn catalog_conserves_bytes_and_reruns_identically(
        seed in any::<u64>(),
        which in 0usize..5,
    ) {
        let topo = small_topo();
        let n = topo.network().server_count();
        let engine = TrafficEngine::new(&topo);
        let name = scenarios::NAMES[which];
        let scenario = scenarios::by_name(name, n, seed).expect("catalog name");
        let report = engine.run(&scenario).expect("run");
        prop_assert!(report.conserves_bytes(), "{name} leaked bytes");
        prop_assert!(report.delivery_ratio() <= 1.0 + 1e-12);
        prop_assert!(report.completed <= report.flows);
        prop_assert!(report.makespan_ns > 0);
        let rerun = engine.run(&scenario).expect("rerun");
        prop_assert_eq!(report, rerun, "{} is not rerun-deterministic", name);
    }
}
