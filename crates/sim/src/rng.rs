//! Seeded per-entity RNG streams.
//!
//! The engine's determinism discipline is the campaign engine's: one run
//! seed, split into independent per-entity streams with SplitMix64 so the
//! randomness an entity sees never depends on scheduling order, thread
//! count, or how many entities came before it. `mix_seed` uses the exact
//! finalizer constants the experiment registry uses for per-point seeds,
//! so a scenario seeded from a registry point inherits the same stream
//! family.

use rand::RngCore;

/// Derives the sub-seed for entity `index` under `base` — SplitMix64's
/// output function over `base + index`, bit-compatible with the experiment
/// registry's per-point seeding.
#[inline]
#[must_use]
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 stream: tiny, fast, and statistically solid for the
/// simulation's needs (entity selection, arrival jitter, size sampling).
///
/// Implements [`rand::RngCore`], so the workload generators' existing
/// `Rng`-based helpers (`gen_range`, `SliceRandom::shuffle`) run on an
/// engine stream unchanged.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream starting at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The stream for entity `index` of a run seeded with `base`.
    #[must_use]
    pub fn stream(base: u64, index: u64) -> Self {
        SplitMix64::new(mix_seed(base, index))
    }

    /// Next raw 64-bit draw.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; returns 0 for `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction: unbiased enough for simulation use and
        // branch-free (Lemire's reduction without the rejection loop).
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_matches_registry_constants() {
        // Pinned values: moving them silently re-seeds every experiment.
        // `mix_seed(0, 1)` is SplitMix64's first output from seed 0.
        assert_eq!(mix_seed(0, 1), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix_seed(7, 0), dcn_bench_mix(7, 0));
        assert_ne!(mix_seed(1, 0), mix_seed(0, 1));
    }

    /// The experiment registry's per-point mixer, restated here so drift
    /// between the two is caught at test time.
    fn dcn_bench_mix(seed: u64, salt: u64) -> u64 {
        let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn streams_are_independent_of_sibling_count() {
        let a = SplitMix64::stream(42, 7).next();
        // Creating other streams first must not perturb stream 7.
        let _ = SplitMix64::stream(42, 0).next();
        let b = SplitMix64::stream(42, 7).next();
        assert_eq!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
