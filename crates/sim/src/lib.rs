//! `dcn-sim` — the unified seeded discrete-event traffic engine.
//!
//! One event core, two fidelity backends, three routing planes:
//!
//! * **Core** — a binary-heap [`EventQueue`] keyed `(time, seq)` so event
//!   order is time-then-insertion, and [`SplitMix64`] per-entity RNG
//!   streams ([`mix_seed`] matches the campaign engine's seed discipline).
//!   Nothing in the engine reads wall clocks or global RNG state, so every
//!   run is byte-deterministic at any thread count.
//! * **Fluid backend** — flows are rates under progressive-filling max-min
//!   fairness ([`max_min_allocation`]), recomputed event by event.
//! * **Packet backend** — store-and-forward with FIFO output queues, tail
//!   drop, and open-loop or AIMD injection.
//! * **Planes** — the topology's native routing, any [`abccc::Router`],
//!   or a compiled [`dcn_fib::RouteService`] FIB.
//!
//! A [`Scenario`] describes traffic (flows in bulk-synchronous phases), a
//! fault timeline ([`FaultInjection`] — faults fire *mid-flow*), and a
//! [`Fidelity`]; [`TrafficEngine::run`] turns it into a
//! [`ScenarioReport`] with HDR FCT quantiles and byte-conservation
//! accounting, and [`TrafficEngine::run_batch`] sweeps batches with
//! work-stealing workers and slot-ordered, thread-count-independent
//! results.
//!
//! The historical `flowsim` ([`FlowSim`]) and `packetsim` ([`PacketSim`])
//! APIs live on as thin veneers over the same internals; the old crates
//! re-export them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fluid;
pub mod maxmin;
mod packet;
mod queue;
mod report;
mod rng;
mod scenario;
mod stats;

pub use engine::{EngineError, RoutePlane, TrafficEngine};
pub use fluid::{FlowSim, FlowSimReport};
pub use maxmin::{max_min_allocation, DirectedLink};
pub use packet::{AimdConfig, FlowSpec, PacketSim, PacketSimConfig};
pub use queue::EventQueue;
pub use report::{retention, FctSummary, FlowResult, ScenarioReport};
pub use rng::{mix_seed, SplitMix64};
pub use scenario::{FaultInjection, Fidelity, Scenario, ScenarioFlow, Transport};
pub use stats::{FlowOutcome, PacketSimReport};
