//! The fluid (flow-level) fidelity backend.
//!
//! [`FlowSim`] is the classic one-shot driver: route every pair, hand the
//! flow set to the max-min allocator, report steady-state rates. It is an
//! allocator, not an event loop — the event-driven fluid backend in
//! [`crate::engine`] calls the same [`max_min_allocation`] whenever the
//! active-flow set changes (arrival, completion, fault), so both views
//! share one rate model.

use crate::{max_min_allocation, DirectedLink};
use netgraph::{FaultMask, NodeId, RouteError, Topology};
use serde::{Deserialize, Serialize};

/// Flow-level simulator bound to one topology.
#[derive(Debug, Clone, Copy)]
pub struct FlowSim<'a, T: Topology + ?Sized> {
    topo: &'a T,
}

impl<'a, T: Topology + ?Sized> FlowSim<'a, T> {
    /// Creates a simulator over `topo`.
    pub fn new(topo: &'a T) -> Self {
        FlowSim { topo }
    }

    /// Routes every pair with the family's native algorithm and computes
    /// the max-min fair allocation.
    ///
    /// # Errors
    ///
    /// Propagates the first routing failure (fault-free networks never
    /// fail to route).
    pub fn run(&self, pairs: &[(NodeId, NodeId)]) -> Result<FlowSimReport, RouteError> {
        self.run_inner(pairs, None)
    }

    /// Like [`FlowSim::run`], but under a failure mask: unroutable pairs are
    /// *dropped* (counted in the report) instead of failing the run, and
    /// surviving flows use the family's fault-tolerant routing.
    pub fn run_with_mask(&self, pairs: &[(NodeId, NodeId)], mask: &FaultMask) -> FlowSimReport {
        self.run_inner(pairs, Some(mask))
            .expect("masked run never propagates routing errors")
    }

    /// Multipath variant: every pair is split across up to `paths` of the
    /// family's internally-disjoint parallel routes; each subflow gets its
    /// own max-min share and the flow's rate is their sum (idealized
    /// MPTCP-style striping).
    ///
    /// # Errors
    ///
    /// Propagates the first routing failure.
    pub fn run_multipath(
        &self,
        pairs: &[(NodeId, NodeId)],
        paths: usize,
    ) -> Result<FlowSimReport, RouteError> {
        let _span = dcn_telemetry::span!("flowsim.run_multipath");
        let _run_timer = dcn_telemetry::histogram!("flowsim.run_ns").start_timer();
        dcn_telemetry::counter!("flowsim.runs").inc();
        let net = self.topo.network();
        let mut subflows: Vec<Vec<DirectedLink>> = Vec::new();
        let mut owner: Vec<usize> = Vec::new(); // subflow → pair index
        let mut hops = Vec::with_capacity(pairs.len());
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let routes = self.topo.parallel_routes(s, d, paths)?;
            let mut pair_hops = 0usize;
            for r in &routes {
                pair_hops = pair_hops.max(r.server_hops(net));
                subflows.push(DirectedLink::of_route(net, r));
                owner.push(i);
            }
            hops.push(pair_hops as f64);
        }
        let sub_rates = max_min_allocation(net, &subflows);
        let mut rates = vec![0.0f64; pairs.len()];
        for (rate, &o) in sub_rates.iter().zip(&owner) {
            if rate.is_finite() {
                rates[o] += rate;
            } else {
                rates[o] = f64::INFINITY;
            }
        }
        let finite: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
        let aggregate = finite.iter().sum::<f64>();
        let min_rate = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let flows_n = finite.len();
        Ok(FlowSimReport {
            topology: self.topo.name(),
            flows: flows_n,
            unroutable: 0,
            aggregate_rate: aggregate,
            min_rate: if flows_n == 0 { 0.0 } else { min_rate },
            mean_rate: if flows_n == 0 {
                0.0
            } else {
                aggregate / flows_n as f64
            },
            abt: if flows_n == 0 {
                0.0
            } else {
                min_rate * flows_n as f64
            },
            mean_hops: if hops.is_empty() {
                0.0
            } else {
                hops.iter().sum::<f64>() / hops.len() as f64
            },
            rates,
        })
    }

    fn run_inner(
        &self,
        pairs: &[(NodeId, NodeId)],
        mask: Option<&FaultMask>,
    ) -> Result<FlowSimReport, RouteError> {
        let _span = dcn_telemetry::span!("flowsim.run");
        let _run_timer = dcn_telemetry::histogram!("flowsim.run_ns").start_timer();
        dcn_telemetry::counter!("flowsim.runs").inc();
        let net = self.topo.network();
        let mut flows: Vec<Vec<DirectedLink>> = Vec::with_capacity(pairs.len());
        let mut hops = Vec::with_capacity(pairs.len());
        let mut unroutable = 0usize;
        for &(s, d) in pairs {
            let route = match mask {
                None => self.topo.route(s, d)?,
                Some(m) => match self.topo.route_avoiding(s, d, m) {
                    Ok(r) => r,
                    Err(RouteError::NotAServer(n)) => return Err(RouteError::NotAServer(n)),
                    Err(_) => {
                        unroutable += 1;
                        continue;
                    }
                },
            };
            hops.push(route.server_hops(net) as f64);
            flows.push(DirectedLink::of_route(net, &route));
        }
        dcn_telemetry::counter!("flowsim.flows_routed").add(flows.len() as u64);
        dcn_telemetry::counter!("flowsim.flows_unroutable").add(unroutable as u64);
        let rates = max_min_allocation(net, &flows);
        let finite: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
        let aggregate = finite.iter().sum::<f64>();
        let min_rate = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let flows_n = finite.len();
        Ok(FlowSimReport {
            topology: self.topo.name(),
            flows: flows_n,
            unroutable,
            aggregate_rate: aggregate,
            min_rate: if flows_n == 0 { 0.0 } else { min_rate },
            mean_rate: if flows_n == 0 {
                0.0
            } else {
                aggregate / flows_n as f64
            },
            abt: if flows_n == 0 {
                0.0
            } else {
                min_rate * flows_n as f64
            },
            mean_hops: if hops.is_empty() {
                0.0
            } else {
                hops.iter().sum::<f64>() / hops.len() as f64
            },
            rates,
        })
    }
}

/// Result of one flow-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSimReport {
    /// Topology name.
    pub topology: String,
    /// Flows that were routed (excludes unroutable and self-pairs).
    pub flows: usize,
    /// Pairs dropped because no surviving path existed.
    pub unroutable: usize,
    /// Σ rates (network throughput, link-capacity units).
    pub aggregate_rate: f64,
    /// Worst flow rate.
    pub min_rate: f64,
    /// Mean flow rate.
    pub mean_rate: f64,
    /// Aggregate bottleneck throughput `flows × min_rate` (the BCube-paper
    /// metric: total goodput of an all-flows-equal-size job).
    pub abt: f64,
    /// Mean path length (server hops) over routed flows.
    pub mean_hops: f64,
    /// Per-flow rates in input order (∞ for self-pairs).
    pub rates: Vec<f64>,
}

impl FlowSimReport {
    /// Jain's fairness index over the finite per-flow rates:
    /// `(Σx)² / (n·Σx²)` — 1.0 is perfectly fair, `1/n` maximally unfair.
    /// Returns 1.0 for an empty flow set.
    pub fn fairness_index(&self) -> f64 {
        let finite: Vec<f64> = self
            .rates
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .collect();
        if finite.is_empty() {
            return 1.0;
        }
        let sum: f64 = finite.iter().sum();
        let sq: f64 = finite.iter().map(|r| r * r).sum();
        if sq == 0.0 {
            return 1.0;
        }
        sum * sum / (finite.len() as f64 * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use rand::SeedableRng;

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap() // 24 servers
    }

    #[test]
    fn permutation_throughput_positive() {
        let t = topo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let pairs =
            dcn_workloads::traffic::random_permutation(t.network().server_count(), &mut rng);
        let report = FlowSim::new(&t).run(&pairs).unwrap();
        assert_eq!(report.flows, 24);
        assert!(report.min_rate > 0.0);
        assert!(report.aggregate_rate >= report.abt - 1e-9);
        assert!(report.mean_hops > 0.0);
    }

    #[test]
    fn self_pair_is_infinite_and_excluded() {
        let t = topo();
        let pairs = [(NodeId(0), NodeId(0)), (NodeId(0), NodeId(1))];
        let report = FlowSim::new(&t).run(&pairs).unwrap();
        assert!(report.rates[0].is_infinite());
        assert_eq!(report.flows, 1);
    }

    #[test]
    fn masked_run_counts_unroutable() {
        let t = topo();
        // Isolate server 1.
        let cut = t.network().neighbors(NodeId(1)).iter().map(|&(_, l)| l);
        let mask = netgraph::FaultScenario::seeded(0)
            .fail_links(cut)
            .build(t.network());
        let pairs = [(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
        let report = FlowSim::new(&t).run_with_mask(&pairs, &mask);
        assert_eq!(report.unroutable, 1);
        assert_eq!(report.flows, 1);
    }

    #[test]
    fn incast_is_fair() {
        let t = topo();
        let sink = NodeId(0);
        let pairs: Vec<_> = (1..5).map(|i| (NodeId(i), sink)).collect();
        let report = FlowSim::new(&t).run(&pairs).unwrap();
        // Sink has 2 NIC ports ⇒ aggregate into it ≤ 2.0.
        assert!(report.aggregate_rate <= 2.0 + 1e-9);
        assert!(report.min_rate > 0.0);
    }

    #[test]
    fn lone_flow_doubles_over_disjoint_paths() {
        // A single bulk flow is NIC-limited to 1 Gbps on one path; striping
        // over the two disjoint paths of a dual-port server doubles it.
        let t = topo();
        let pairs = [(NodeId(0), NodeId(23))];
        let single = FlowSim::new(&t).run(&pairs).unwrap();
        assert!((single.rates[0] - 1.0).abs() < 1e-9);
        let multi = FlowSim::new(&t).run_multipath(&pairs, 2).unwrap();
        assert!((multi.rates[0] - 2.0).abs() < 1e-9, "{}", multi.rates[0]);
    }

    #[test]
    fn fairness_index_bounds_and_extremes() {
        let t = topo();
        // Symmetric pair of flows → perfectly fair.
        let pairs = [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))];
        let report = FlowSim::new(&t).run(&pairs).unwrap();
        assert!((report.fairness_index() - 1.0).abs() < 1e-9);
        // Any allocation stays within [1/n, 1].
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let perm = dcn_workloads::traffic::random_permutation(24, &mut rng);
        let r2 = FlowSim::new(&t).run(&perm).unwrap();
        let f = r2.fairness_index();
        assert!(f > 1.0 / 24.0 && f <= 1.0 + 1e-9, "{f}");
    }

    #[test]
    fn multipath_keeps_flow_count_and_positive_rates() {
        let t = topo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let pairs =
            dcn_workloads::traffic::random_permutation(t.network().server_count(), &mut rng);
        let single = FlowSim::new(&t).run(&pairs).unwrap();
        let multi = FlowSim::new(&t).run_multipath(&pairs, 2).unwrap();
        assert_eq!(multi.flows, single.flows);
        assert!(multi.min_rate > 0.0);
    }

    #[test]
    fn multipath_with_one_path_close_to_single() {
        // want = 1 uses only the primary route ⇒ identical allocation.
        let t = topo();
        let pairs = [(NodeId(0), NodeId(23)), (NodeId(5), NodeId(17))];
        let single = FlowSim::new(&t).run(&pairs).unwrap();
        let multi = FlowSim::new(&t).run_multipath(&pairs, 1).unwrap();
        assert_eq!(single.rates, multi.rates);
    }

    #[test]
    fn rejects_switch_endpoint() {
        let t = topo();
        let sw = NodeId(t.params().server_count() as u32);
        assert!(FlowSim::new(&t).run(&[(sw, NodeId(0))]).is_err());
    }
}
