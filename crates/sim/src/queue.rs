//! The deterministic event queue.
//!
//! A binary heap keyed `(time, seq)` where `seq` is a global insertion
//! counter: ties in simulated time break by insertion order, which is
//! itself deterministic, so a run's event sequence is a pure function of
//! its inputs — never of heap internals or thread scheduling. This is the
//! same key discipline both historical simulators used; the queue hoists
//! it into one place so every backend shares it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A popped event: `(time_ns, seq, payload)`.
pub type Popped<P> = (u64, u64, P);

/// Min-heap of `(time_ns, seq, payload)` with an internal insertion
/// counter. `P` needs `Ord` only to satisfy the heap; the `(time, seq)`
/// prefix is unique per event, so payload ordering never decides anything.
#[derive(Debug, Clone)]
pub struct EventQueue<P: Ord> {
    heap: BinaryHeap<Reverse<(u64, u64, P)>>,
    seq: u64,
}

impl<P: Ord> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<P: Ord> EventQueue<P> {
    /// An empty queue with the sequence counter at zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time_ns`, assigning the next sequence
    /// number. Returns the sequence number assigned.
    pub fn push(&mut self, time_ns: u64, payload: P) -> u64 {
        let s = self.seq;
        self.heap.push(Reverse((time_ns, s, payload)));
        self.seq += 1;
        s
    }

    /// Pops the earliest event (`(time, seq)` order).
    pub fn pop(&mut self) -> Option<Popped<P>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The `(time, seq)` key of the next event without popping it.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Sequence numbers handed out so far (the total events ever pushed).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(10, "late");
        q.push(5, "first-at-5");
        q.push(5, "second-at-5");
        q.push(1, "earliest");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, ["earliest", "first-at-5", "second-at-5", "late"]);
    }

    #[test]
    fn seq_is_monotone_and_counted() {
        let mut q = EventQueue::new();
        assert_eq!(q.push(3, ()), 0);
        assert_eq!(q.push(1, ()), 1);
        assert_eq!(q.pushed(), 2);
        let (t, s, ()) = q.pop().unwrap();
        assert_eq!((t, s), (1, 1));
        assert_eq!(q.peek_key(), Some((3, 0)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_key(), None);
    }
}
