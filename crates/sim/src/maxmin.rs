//! Progressive-filling max-min fair allocation.

#[cfg(test)]
use netgraph::NodeId;
use netgraph::{LinkId, Network, Route};
use serde::{Deserialize, Serialize};

/// A directed traversal of a physical cable (cables are full duplex: the
/// two directions have independent capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirectedLink {
    /// The underlying cable.
    pub link: LinkId,
    /// `true` when traversed from `link.a` to `link.b`.
    pub forward: bool,
}

impl DirectedLink {
    /// Dense index for table lookups: `2·link + direction`.
    #[inline]
    pub fn index(self) -> usize {
        self.link.index() * 2 + usize::from(self.forward)
    }

    /// Resolves the directed traversals of a route.
    ///
    /// Each window resolves through [`Network::find_link`], which binary
    /// searches the CSR's neighbor-sorted adjacency — O(log degree) per
    /// hop, instead of the linear port scan this used to cost. On parallel
    /// links it picks the lowest link id, exactly as the scan did.
    ///
    /// # Panics
    ///
    /// Panics if consecutive route nodes are not adjacent in `net`.
    pub fn of_route(net: &Network, route: &Route) -> Vec<DirectedLink> {
        route
            .nodes()
            .windows(2)
            .map(|w| {
                let l = net
                    .find_link(w[0], w[1])
                    .unwrap_or_else(|| panic!("route nodes {} and {} not adjacent", w[0], w[1]));
                DirectedLink {
                    link: l,
                    forward: net.link(l).a == w[0],
                }
            })
            .collect()
    }
}

/// Computes the max-min fair rate for each flow (a flow is the list of
/// directed links it crosses). Flows with an empty path (src == dst) get
/// `f64::INFINITY`.
///
/// Progressive filling: all unfrozen flows grow at the same rate; when a
/// directed link saturates, the flows crossing it freeze at the current
/// level; repeat until every flow is frozen.
pub fn max_min_allocation(net: &Network, flows: &[Vec<DirectedLink>]) -> Vec<f64> {
    let _span = dcn_telemetry::span!("flowsim.maxmin");
    dcn_telemetry::counter!("flowsim.maxmin.calls").inc();
    dcn_telemetry::counter!("flowsim.maxmin.flows").add(flows.len() as u64);
    let n_dir = net.link_count() * 2;
    let mut remaining = vec![0.0f64; n_dir];
    for (i, link) in net.links().iter().enumerate() {
        remaining[2 * i] = link.capacity;
        remaining[2 * i + 1] = link.capacity;
    }
    let mut active = vec![0usize; n_dir];
    for f in flows {
        for dl in f {
            active[dl.index()] += 1;
        }
    }
    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    for (i, f) in flows.iter().enumerate() {
        if f.is_empty() {
            rate[i] = f64::INFINITY;
            frozen[i] = true;
        }
    }
    const EPS: f64 = 1e-12;
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        // Smallest per-flow headroom over links with active flows.
        let mut delta = f64::INFINITY;
        for d in 0..n_dir {
            if active[d] > 0 {
                delta = delta.min(remaining[d] / active[d] as f64);
            }
        }
        if !delta.is_finite() {
            break; // no active links ⇒ all flows frozen
        }
        let delta = delta.max(0.0);
        // Grow every unfrozen flow and charge the links.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                rate[i] += delta;
                for dl in f {
                    remaining[dl.index()] -= delta;
                }
            }
        }
        // Freeze flows on saturated links.
        let mut any_frozen = false;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] && f.iter().any(|dl| remaining[dl.index()] <= EPS) {
                frozen[i] = true;
                for dl in f {
                    active[dl.index()] -= 1;
                }
                any_frozen = true;
            }
        }
        if !any_frozen {
            break; // numerical safety; should not happen with delta > 0
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    if dcn_telemetry::enabled() {
        dcn_telemetry::counter!("flowsim.maxmin.rounds").add(rounds);
        dcn_telemetry::histogram!("flowsim.maxmin.rounds_per_call").record(rounds);
        // Convergence residual: worst oversubscription across directed
        // links (≤ ~EPS·rounds when progressive filling converged) — a
        // positive residual means an allocation exceeds some capacity.
        let residual = remaining.iter().fold(0.0f64, |worst, &rem| worst.max(-rem));
        dcn_telemetry::float_gauge!("flowsim.maxmin.residual").set_max(residual);
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_servers_one_link() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        net.add_link(a, b, 1.0);
        (net, a, b)
    }

    fn dl(net: &Network, from: NodeId, to: NodeId) -> DirectedLink {
        let l = net.find_link(from, to).unwrap();
        DirectedLink {
            link: l,
            forward: net.link(l).a == from,
        }
    }

    #[test]
    fn two_flows_share_a_link() {
        let (net, a, b) = two_servers_one_link();
        let f = vec![dl(&net, a, b)];
        let rates = max_min_allocation(&net, &[f.clone(), f]);
        assert!((rates[0] - 0.5).abs() < 1e-9);
        assert!((rates[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn full_duplex_directions_are_independent() {
        let (net, a, b) = two_servers_one_link();
        let fwd = vec![dl(&net, a, b)];
        let bwd = vec![dl(&net, b, a)];
        let rates = max_min_allocation(&net, &[fwd, bwd]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_infinite() {
        let (net, _, _) = two_servers_one_link();
        let rates = max_min_allocation(&net, &[vec![]]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn incast_bottleneck() {
        // 3 senders → 1 sink through a switch: the sink's downlink caps
        // each flow at 1/3.
        let mut net = Network::new();
        let s: Vec<NodeId> = (0..3).map(|_| net.add_server()).collect();
        let sink = net.add_server();
        let sw = net.add_switch();
        for &x in &s {
            net.add_link(x, sw, 1.0);
        }
        net.add_link(sink, sw, 1.0);
        let flows: Vec<Vec<DirectedLink>> = s
            .iter()
            .map(|&x| vec![dl(&net, x, sw), dl(&net, sw, sink)])
            .collect();
        let rates = max_min_allocation(&net, &flows);
        for r in rates {
            assert!((r - 1.0 / 3.0).abs() < 1e-9, "{r}");
        }
    }

    #[test]
    fn max_min_unfreezes_capacity_for_short_flows() {
        // Classic: flows A (x→y), B (y→z), C (x→y→z). C is capped by
        // sharing both links; A and B then grow to fill the rest.
        let mut net = Network::new();
        let x = net.add_server();
        let y = net.add_server();
        let z = net.add_server();
        net.add_link(x, y, 1.0);
        net.add_link(y, z, 1.0);
        let fa = vec![dl(&net, x, y)];
        let fb = vec![dl(&net, y, z)];
        let fc = vec![dl(&net, x, y), dl(&net, y, z)];
        let rates = max_min_allocation(&net, &[fa, fb, fc]);
        assert!((rates[2] - 0.5).abs() < 1e-9, "C = {}", rates[2]);
        assert!((rates[0] - 0.5).abs() < 1e-9, "A = {}", rates[0]);
        assert!((rates[1] - 0.5).abs() < 1e-9, "B = {}", rates[1]);
    }

    #[test]
    fn no_link_oversubscribed() {
        let mut net = Network::new();
        let s: Vec<NodeId> = (0..4).map(|_| net.add_server()).collect();
        let sw = net.add_switch();
        for &x in &s {
            net.add_link(x, sw, 1.0);
        }
        let flows: Vec<Vec<DirectedLink>> = (0..4)
            .flat_map(|i| (0..4).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| vec![dl(&net, s[i], sw), dl(&net, sw, s[j])])
            .collect();
        let rates = max_min_allocation(&net, &flows);
        let mut load = std::collections::HashMap::new();
        for (f, r) in flows.iter().zip(rates.iter()) {
            for dlk in f {
                *load.entry(dlk.index()).or_insert(0.0) += r;
            }
        }
        for (_, l) in load {
            assert!(l <= 1.0 + 1e-6, "oversubscribed: {l}");
        }
    }
}
