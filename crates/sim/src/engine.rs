//! The traffic engine: one seeded discrete-event core, two fidelity
//! backends, three routing planes.
//!
//! [`TrafficEngine::run`] executes a [`Scenario`] on a topology:
//!
//! * **fluid** — flows are rates; the active set's max-min fair
//!   allocation is recomputed on every arrival, completion, and fault
//!   event, and completions are scheduled as events (epoch-tagged so a
//!   rate change invalidates stale predictions);
//! * **packet** — the unified store-and-forward loop in [`crate::packet`].
//!
//! Both backends route through one resolver derived from the engine's
//! [`RoutePlane`]: the topology's native algorithms, any [`Router`]
//! implementation, or a compiled [`RouteService`] FIB. Fault timelines
//! fire *mid-flow*: in-flight traffic on dead gear is lost, survivors
//! reroute on the same plane, flows with no surviving path are killed and
//! accounted.
//!
//! [`TrafficEngine::run_batch`] sweeps scenarios with work-stealing
//! workers and slot-ordered assembly, so reports are byte-identical at
//! any thread count — the campaign engine's determinism discipline.

use crate::maxmin::{max_min_allocation, DirectedLink};
use crate::packet::{run_packet, PacketFlow};
use crate::queue::EventQueue;
use crate::report::{FctSummary, FlowResult, ScenarioReport};
use crate::scenario::{Fidelity, Scenario};
use crate::FlowSpec;
use abccc::{Abccc, Router};
use dcn_fib::RouteService;
use dcn_telemetry::HdrHistogram;
use netgraph::{FaultMask, NodeId, Route, RouteError, Topology};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which routing plane resolves scenario flows.
pub enum RoutePlane<'a> {
    /// The topology's native `route` / `route_avoiding`.
    Native,
    /// Any [`Router`] implementation (requires an ABCCC topology).
    Router(&'a (dyn Router + Sync)),
    /// A compiled forwarding table behind a shared [`RouteService`]. The
    /// engine installs the scenario's cumulative fault mask into the
    /// service as faults fire and clears it when the run ends; batches on
    /// this plane run sequentially (the service holds one mask at a time).
    Fib(&'a Mutex<RouteService>),
}

impl fmt::Debug for RoutePlane<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RoutePlane::Native => "Native",
            RoutePlane::Router(_) => "Router",
            RoutePlane::Fib(_) => "Fib",
        })
    }
}

/// Engine-level failure.
#[derive(Debug)]
pub enum EngineError {
    /// A routing error escaped the lenient handling (should not happen
    /// for server-to-server scenario flows).
    Route(RouteError),
    /// [`RoutePlane::Router`] needs the topology to be an [`Abccc`].
    PlaneRequiresAbccc,
    /// The fluid backend found an active flow with zero allocated rate
    /// (a zero-capacity link), which would never complete.
    Stalled {
        /// The scenario that stalled.
        scenario: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Route(e) => write!(f, "routing failed: {e}"),
            EngineError::PlaneRequiresAbccc => {
                write!(f, "the Router plane requires an ABCCC topology")
            }
            EngineError::Stalled { scenario } => {
                write!(
                    f,
                    "scenario {scenario:?} stalled: active flow with zero rate"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RouteError> for EngineError {
    fn from(e: RouteError) -> Self {
        EngineError::Route(e)
    }
}

/// The unified traffic engine: a topology plus a routing plane.
pub struct TrafficEngine<'a> {
    topo: &'a (dyn Topology + Sync),
    plane: RoutePlane<'a>,
}

impl<'a> TrafficEngine<'a> {
    /// An engine routing on the topology's native plane.
    pub fn new(topo: &'a (dyn Topology + Sync)) -> Self {
        TrafficEngine {
            topo,
            plane: RoutePlane::Native,
        }
    }

    /// An engine routing on an explicit plane.
    pub fn with_plane(topo: &'a (dyn Topology + Sync), plane: RoutePlane<'a>) -> Self {
        TrafficEngine { topo, plane }
    }

    /// The plane label reports carry.
    #[must_use]
    pub fn plane_label(&self) -> String {
        match &self.plane {
            RoutePlane::Native => "native".into(),
            RoutePlane::Router(r) => r.name(),
            RoutePlane::Fib(_) => "fib".into(),
        }
    }

    /// Builds the scenario's cumulative fault-mask timeline: one mask per
    /// injection, each containing every earlier failure, sorted by time.
    fn build_faults(&self, scenario: &Scenario) -> Vec<(u64, FaultMask)> {
        let net = self.topo.network();
        let mut inj: Vec<_> = scenario.faults.iter().collect();
        inj.sort_by_key(|f| f.at_ns);
        let mut out: Vec<(u64, FaultMask)> = Vec::with_capacity(inj.len());
        for f in inj {
            let mut mask = f.scenario.build(net);
            if let Some((_, prev)) = out.last() {
                for n in prev.failed_nodes() {
                    mask.fail_node(n);
                }
                for l in prev.failed_links() {
                    mask.fail_link(l);
                }
            }
            out.push((f.at_ns, mask));
        }
        out
    }

    /// Runs one scenario to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::PlaneRequiresAbccc`] when a [`RoutePlane::Router`]
    /// engine drives a non-ABCCC topology; [`EngineError::Stalled`] when
    /// the fluid backend meets a zero-rate active flow.
    pub fn run(&self, scenario: &Scenario) -> Result<ScenarioReport, EngineError> {
        let _span = dcn_telemetry::span!("dcn_sim.engine.run");
        let _timer = dcn_telemetry::histogram!("dcn_sim.scenario_ns").start_timer();
        dcn_telemetry::counter!("dcn_sim.scenarios").inc();
        let cube: Option<&Abccc> = self.topo.as_any().downcast_ref::<Abccc>();
        if matches!(self.plane, RoutePlane::Router(_)) && cube.is_none() {
            return Err(EngineError::PlaneRequiresAbccc);
        }
        let faults = self.build_faults(scenario);
        let mut fib_installed: Option<FaultMask> = None;
        let report = {
            let mut resolve =
                |s: NodeId, d: NodeId, m: Option<&FaultMask>| -> Result<Route, RouteError> {
                    match &self.plane {
                        RoutePlane::Native => match m {
                            None => self.topo.route(s, d),
                            Some(mask) => self.topo.route_avoiding(s, d, mask),
                        },
                        RoutePlane::Router(r) => {
                            let topo = cube.expect("checked above");
                            r.route(topo, s, d, m).map(|o| o.route)
                        }
                        RoutePlane::Fib(svc) => {
                            let mut g = svc.lock().expect("route service poisoned");
                            match m {
                                Some(mask) => {
                                    if fib_installed.as_ref() != Some(mask) {
                                        let _ = g.apply_mask(mask.clone());
                                        fib_installed = Some(mask.clone());
                                    }
                                }
                                None => {
                                    if fib_installed.is_some() {
                                        g.clear_faults();
                                        fib_installed = None;
                                    }
                                }
                            }
                            g.query(s, d).map(|o| o.route)
                        }
                    }
                };
            match &scenario.fidelity {
                Fidelity::Fluid => self.run_fluid(scenario, &faults, &mut resolve),
                Fidelity::Packet { config, transport } => {
                    self.run_packet_scenario(scenario, &faults, *config, *transport, &mut resolve)
                }
            }
        }?;
        // Leave a shared FIB service clean for the next caller.
        if let RoutePlane::Fib(svc) = &self.plane {
            if fib_installed.is_some() {
                svc.lock().expect("route service poisoned").clear_faults();
            }
        }
        Ok(report)
    }

    /// Runs a scenario batch with `threads` work-stealing workers.
    /// Reports come back in input order and are byte-identical at any
    /// thread count. [`RoutePlane::Fib`] batches run sequentially (the
    /// shared service holds one fault mask at a time).
    ///
    /// # Errors
    ///
    /// The first failing scenario's error, by input order.
    pub fn run_batch(
        &self,
        scenarios: &[Scenario],
        threads: usize,
    ) -> Result<Vec<ScenarioReport>, EngineError> {
        let threads = if matches!(self.plane, RoutePlane::Fib(_)) {
            1
        } else {
            threads.max(1).min(scenarios.len().max(1))
        };
        if threads <= 1 {
            return scenarios.iter().map(|s| self.run(s)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<ScenarioReport, EngineError>>>> =
            Mutex::new((0..scenarios.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= scenarios.len() {
                        break;
                    }
                    let r = self.run(&scenarios[i]);
                    slots.lock().expect("slot lock poisoned")[i] = Some(r);
                });
            }
        });
        slots
            .into_inner()
            .expect("slot lock poisoned")
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// The packet-fidelity adapter: scenario flows → packet trains, run
    /// through the unified loop, accounted in bytes.
    fn run_packet_scenario(
        &self,
        scenario: &Scenario,
        faults: &[(u64, FaultMask)],
        config: crate::PacketSimConfig,
        transport: crate::scenario::Transport,
        resolve: &mut crate::packet::Resolver<'_>,
    ) -> Result<ScenarioReport, EngineError> {
        let net = self.topo.network();
        let pb = u64::from(config.packet_bytes);
        let pflows: Vec<PacketFlow> = scenario
            .flows
            .iter()
            .map(|f| PacketFlow {
                spec: FlowSpec {
                    src: f.src,
                    dst: f.dst,
                    packets: f.bytes.div_ceil(pb).max(1),
                    start_ns: f.start_ns,
                    gap_ns: f.gap_ns,
                },
                phase: f.phase,
            })
            .collect();
        let stats = run_packet(net, resolve, &pflows, config, transport, faults, false)?;
        let mut fct_hist = HdrHistogram::new();
        let mut per_flow = Vec::with_capacity(pflows.len());
        let mut completed = 0usize;
        for (i, st) in stats.flows.iter().enumerate() {
            let sf = &scenario.flows[i];
            let complete = st.delivered == st.offered && st.offered > 0;
            let fct = if complete {
                let f = st.completion_ns.saturating_sub(st.activated_ns);
                fct_hist.record(f);
                completed += 1;
                Some(f)
            } else {
                None
            };
            per_flow.push(FlowResult {
                src: sf.src,
                dst: sf.dst,
                phase: sf.phase,
                offered_bytes: st.offered * pb,
                delivered_bytes: st.delivered * pb,
                dropped_bytes: st.dropped * pb,
                killed_bytes: st.killed * pb,
                fct_ns: fct,
                dead: st.dead,
            });
        }
        let bytes_delivered: u64 = per_flow.iter().map(|f| f.delivered_bytes).sum();
        let makespan = stats.last_delivery;
        Ok(ScenarioReport {
            scenario: scenario.name.clone(),
            topology: self.topo.name(),
            fidelity: scenario.fidelity.label().into(),
            plane: self.plane_label(),
            flows: per_flow.len(),
            completed,
            unroutable: stats.unroutable,
            phases: scenario.phase_count(),
            faults_fired: stats.faults_fired,
            bytes_offered: per_flow.iter().map(|f| f.offered_bytes).sum(),
            bytes_delivered,
            bytes_dropped: per_flow.iter().map(|f| f.dropped_bytes).sum(),
            bytes_killed: per_flow.iter().map(|f| f.killed_bytes).sum(),
            makespan_ns: makespan,
            goodput_gbps: if makespan == 0 {
                0.0
            } else {
                bytes_delivered as f64 * 8.0 / makespan as f64
            },
            fct: FctSummary::of(&fct_hist),
            per_flow,
        })
    }

    /// The fluid backend: an event-driven max-min rate simulation.
    fn run_fluid(
        &self,
        scenario: &Scenario,
        faults: &[(u64, FaultMask)],
        resolve: &mut crate::packet::Resolver<'_>,
    ) -> Result<ScenarioReport, EngineError> {
        let net = self.topo.network();
        let n = scenario.flows.len();
        let n_phases = scenario.phase_count();

        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum Ev {
            /// Fault `idx` fires.
            Fault(u32),
            /// Flow arrives and starts transmitting.
            Arrival(u32),
            /// Flow predicted complete under rate epoch `.1`.
            Completion(u32, u64),
        }

        struct Flow {
            remaining_bits: f64,
            arrival_ns: u64,
            path: Vec<DirectedLink>,
            active: bool,
            terminal: bool,
            dead: bool,
            delivered_bytes: u64,
            killed_bytes: u64,
            fct_ns: Option<u64>,
        }

        let mut flows: Vec<Flow> = scenario
            .flows
            .iter()
            .map(|_| Flow {
                remaining_bits: 0.0,
                arrival_ns: 0,
                path: Vec::new(),
                active: false,
                terminal: false,
                dead: false,
                delivered_bytes: 0,
                killed_bytes: 0,
                fct_ns: None,
            })
            .collect();
        let mut phase_open: Vec<usize> = vec![0; n_phases as usize];
        for f in &scenario.flows {
            phase_open[f.phase as usize] += 1;
        }

        let mut q: EventQueue<Ev> = EventQueue::new();
        for (i, f) in faults.iter().enumerate() {
            q.push(f.0, Ev::Fault(i as u32));
        }
        for (i, f) in scenario.flows.iter().enumerate() {
            if f.phase == 0 {
                q.push(f.start_ns, Ev::Arrival(i as u32));
            }
        }

        let mut rates: Vec<f64> = vec![0.0; n];
        let mut epoch = 0u64;
        let mut last_t = 0u64;
        let mut cur_mask: Option<&FaultMask> = None;
        let mut cur_phase: u16 = 0;
        let mut unroutable = 0usize;
        let mut faults_fired = 0usize;
        let mut makespan = 0u64;
        let mut fct_hist = HdrHistogram::new();
        let mut completed = 0usize;

        // Retires flow `fi`; opens later phases when its phase drains.
        // Returns arrivals to schedule as `(time, flow)` — pushed by the
        // caller to keep borrows simple.
        #[allow(clippy::too_many_arguments)]
        fn retire(
            fi: usize,
            now: u64,
            scenario: &Scenario,
            flows: &mut [Flow],
            phase_open: &mut [usize],
            cur_phase: &mut u16,
            q: &mut EventQueue<Ev>,
            n_phases: u16,
        ) {
            if flows[fi].terminal {
                return;
            }
            flows[fi].terminal = true;
            flows[fi].active = false;
            let p = scenario.flows[fi].phase;
            phase_open[p as usize] -= 1;
            if p == *cur_phase {
                while *cur_phase + 1 < n_phases && phase_open[*cur_phase as usize] == 0 {
                    *cur_phase += 1;
                    for (i, f) in scenario.flows.iter().enumerate() {
                        if f.phase == *cur_phase {
                            q.push(now + f.start_ns, Ev::Arrival(i as u32));
                        }
                    }
                }
            }
        }

        while let Some((now, _, ev)) = q.pop() {
            // Advance transmission progress to `now` under current rates.
            let elapsed = (now - last_t) as f64;
            if elapsed > 0.0 {
                for (fi, f) in flows.iter_mut().enumerate() {
                    if f.active {
                        f.remaining_bits = (f.remaining_bits - rates[fi] * elapsed).max(0.0);
                    }
                }
            }
            last_t = now;

            // Process every event at this timestamp, then recompute rates
            // once.
            let mut batch = vec![ev];
            while q.peek_key().is_some_and(|(t, _)| t == now) {
                let (_, _, e) = q.pop().expect("peeked");
                batch.push(e);
            }
            let mut changed = false;
            for ev in batch {
                match ev {
                    Ev::Fault(k) => {
                        let mask = &faults[k as usize].1;
                        cur_mask = Some(mask);
                        faults_fired += 1;
                        changed = true;
                        for fi in 0..n {
                            if !flows[fi].active {
                                continue;
                            }
                            let usable = flows[fi]
                                .path
                                .iter()
                                .all(|dl| mask.edge_usable(net, dl.link));
                            if usable {
                                continue;
                            }
                            let sf = &scenario.flows[fi];
                            match resolve(sf.src, sf.dst, Some(mask)) {
                                Ok(r) => {
                                    flows[fi].path = DirectedLink::of_route(net, &r);
                                }
                                Err(_) => {
                                    // Killed mid-flow: account partial
                                    // progress, lose the rest.
                                    let f = &mut flows[fi];
                                    let rem_bytes =
                                        ((f.remaining_bits / 8.0).ceil() as u64).min(sf.bytes);
                                    f.killed_bytes = rem_bytes;
                                    f.delivered_bytes = sf.bytes - rem_bytes;
                                    f.dead = true;
                                    unroutable += 1;
                                    makespan = makespan.max(now);
                                    retire(
                                        fi,
                                        now,
                                        scenario,
                                        &mut flows,
                                        &mut phase_open,
                                        &mut cur_phase,
                                        &mut q,
                                        n_phases,
                                    );
                                }
                            }
                        }
                    }
                    Ev::Arrival(fi) => {
                        let fi = fi as usize;
                        let sf = &scenario.flows[fi];
                        flows[fi].arrival_ns = now;
                        changed = true;
                        if sf.src == sf.dst {
                            // Degenerate self-flow: completes instantly.
                            flows[fi].delivered_bytes = sf.bytes;
                            flows[fi].fct_ns = Some(0);
                            fct_hist.record(0);
                            completed += 1;
                            makespan = makespan.max(now);
                            retire(
                                fi,
                                now,
                                scenario,
                                &mut flows,
                                &mut phase_open,
                                &mut cur_phase,
                                &mut q,
                                n_phases,
                            );
                            continue;
                        }
                        match resolve(sf.src, sf.dst, cur_mask) {
                            Ok(r) => {
                                let f = &mut flows[fi];
                                f.path = DirectedLink::of_route(net, &r);
                                f.remaining_bits = sf.bytes as f64 * 8.0;
                                f.active = true;
                            }
                            Err(_) => {
                                let f = &mut flows[fi];
                                f.killed_bytes = sf.bytes;
                                f.dead = true;
                                unroutable += 1;
                                retire(
                                    fi,
                                    now,
                                    scenario,
                                    &mut flows,
                                    &mut phase_open,
                                    &mut cur_phase,
                                    &mut q,
                                    n_phases,
                                );
                            }
                        }
                    }
                    Ev::Completion(fi, ev_epoch) => {
                        let fi = fi as usize;
                        if ev_epoch != epoch || !flows[fi].active {
                            continue; // stale prediction
                        }
                        let sf = &scenario.flows[fi];
                        let f = &mut flows[fi];
                        f.remaining_bits = 0.0;
                        f.delivered_bytes = sf.bytes;
                        let fct = now - f.arrival_ns;
                        f.fct_ns = Some(fct);
                        fct_hist.record(fct);
                        completed += 1;
                        makespan = makespan.max(now);
                        changed = true;
                        retire(
                            fi,
                            now,
                            scenario,
                            &mut flows,
                            &mut phase_open,
                            &mut cur_phase,
                            &mut q,
                            n_phases,
                        );
                    }
                }
            }

            if !changed {
                continue;
            }
            // Recompute the active set's max-min allocation and
            // re-predict completions under the new epoch.
            epoch += 1;
            let active: Vec<usize> = (0..n).filter(|&i| flows[i].active).collect();
            if active.is_empty() {
                continue;
            }
            let paths: Vec<Vec<DirectedLink>> =
                active.iter().map(|&i| flows[i].path.clone()).collect();
            let alloc = max_min_allocation(net, &paths);
            for (slot, &fi) in active.iter().enumerate() {
                let r = alloc[slot];
                if !r.is_finite() || r <= 1e-12 {
                    return Err(EngineError::Stalled {
                        scenario: scenario.name.clone(),
                    });
                }
                rates[fi] = r;
                let dt = ((flows[fi].remaining_bits / r).ceil() as u64).max(1);
                q.push(now + dt, Ev::Completion(fi as u32, epoch));
            }
        }

        let per_flow: Vec<FlowResult> = scenario
            .flows
            .iter()
            .zip(&flows)
            .map(|(sf, f)| FlowResult {
                src: sf.src,
                dst: sf.dst,
                phase: sf.phase,
                offered_bytes: sf.bytes,
                delivered_bytes: f.delivered_bytes,
                dropped_bytes: 0,
                killed_bytes: f.killed_bytes,
                fct_ns: f.fct_ns,
                dead: f.dead,
            })
            .collect();
        let bytes_delivered: u64 = per_flow.iter().map(|f| f.delivered_bytes).sum();
        Ok(ScenarioReport {
            scenario: scenario.name.clone(),
            topology: self.topo.name(),
            fidelity: scenario.fidelity.label().into(),
            plane: self.plane_label(),
            flows: n,
            completed,
            unroutable,
            phases: n_phases,
            faults_fired,
            bytes_offered: per_flow.iter().map(|f| f.offered_bytes).sum(),
            bytes_delivered,
            bytes_dropped: 0,
            bytes_killed: per_flow.iter().map(|f| f.killed_bytes).sum(),
            makespan_ns: makespan,
            goodput_gbps: if makespan == 0 {
                0.0
            } else {
                bytes_delivered as f64 * 8.0 / makespan as f64
            },
            fct: FctSummary::of(&fct_hist),
            per_flow,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultInjection, Fidelity, ScenarioFlow, Transport};
    use abccc::AbcccParams;
    use netgraph::FaultScenario;

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap() // 8 servers
    }

    fn fluid_pair() -> Scenario {
        let mut s = Scenario::new("pair", 1, Fidelity::Fluid);
        s.flows
            .push(ScenarioFlow::bulk(NodeId(0), NodeId(7), 125_000));
        s
    }

    #[test]
    fn fluid_lone_flow_fct_is_exact() {
        // One flow on idle links runs at line rate: 125 kB at 1 Gbps is
        // exactly 1 ms.
        let t = topo();
        let r = TrafficEngine::new(&t).run(&fluid_pair()).unwrap();
        assert_eq!(r.completed, 1);
        assert_eq!(r.per_flow[0].fct_ns, Some(1_000_000));
        assert_eq!(r.makespan_ns, 1_000_000);
        assert!((r.goodput_gbps - 1.0).abs() < 1e-9);
        assert!(r.conserves_bytes());
    }

    #[test]
    fn fluid_sharing_halves_rates() {
        // Two flows forced through the same first hop finish later than
        // one alone would.
        let t = topo();
        let mut s = Scenario::new("share", 1, Fidelity::Fluid);
        s.flows
            .push(ScenarioFlow::bulk(NodeId(0), NodeId(7), 125_000));
        s.flows
            .push(ScenarioFlow::bulk(NodeId(0), NodeId(6), 125_000));
        let r = TrafficEngine::new(&t).run(&s).unwrap();
        assert_eq!(r.completed, 2);
        assert!(
            r.makespan_ns > 1_500_000,
            "shared bottleneck must stretch FCT, got {}",
            r.makespan_ns
        );
        assert!(r.conserves_bytes());
    }

    #[test]
    fn fluid_phases_serialize() {
        let t = topo();
        let mut s = Scenario::new("phased", 1, Fidelity::Fluid);
        s.flows
            .push(ScenarioFlow::bulk(NodeId(0), NodeId(7), 125_000));
        s.flows
            .push(ScenarioFlow::bulk(NodeId(0), NodeId(7), 125_000).in_phase(1));
        let r = TrafficEngine::new(&t).run(&s).unwrap();
        assert_eq!(r.completed, 2);
        assert_eq!(r.phases, 2);
        // Sequential phases: each runs alone at line rate.
        assert_eq!(r.per_flow[0].fct_ns, Some(1_000_000));
        assert_eq!(r.per_flow[1].fct_ns, Some(1_000_000));
        assert_eq!(r.makespan_ns, 2_000_000);
    }

    #[test]
    fn fluid_midflow_fault_kills_or_reroutes() {
        // Fail half the servers mid-run: some flows die, accounting stays
        // exact, and the fault actually fires.
        let t = topo();
        let mut s = Scenario::new("faulted", 1, Fidelity::Fluid);
        for i in 0..4u32 {
            s.flows
                .push(ScenarioFlow::bulk(NodeId(i), NodeId(7 - i), 1_250_000));
        }
        s.faults.push(FaultInjection {
            at_ns: 1_000_000,
            scenario: FaultScenario::seeded(0xF00D).fail_servers_frac(0.5),
        });
        let r = TrafficEngine::new(&t).run(&s).unwrap();
        assert_eq!(r.faults_fired, 1);
        assert!(r.conserves_bytes());
        let healthy = TrafficEngine::new(&t).run(&s.without_faults()).unwrap();
        assert_eq!(healthy.completed, 4);
        assert!(crate::report::retention(&healthy, &r) <= 1.0 + 1e-9);
    }

    #[test]
    fn packet_scenario_reports_fct_and_conserves() {
        let t = topo();
        let mut s = Scenario::new("incast", 1, Fidelity::packet_open());
        for i in 1..8u32 {
            s.flows
                .push(ScenarioFlow::burst(NodeId(i), NodeId(0), 30_000, 0));
        }
        let r = TrafficEngine::new(&t).run(&s).unwrap();
        assert!(r.conserves_bytes());
        assert!(r.bytes_delivered > 0);
        assert!(r.fct.count > 0 || r.bytes_dropped > 0);
        assert_eq!(r.fidelity, "packet");
    }

    #[test]
    fn aimd_scenario_label_and_accounting() {
        let t = topo();
        let mut s = Scenario::new(
            "aimd",
            1,
            Fidelity::Packet {
                config: crate::PacketSimConfig {
                    buffer_packets: 4,
                    ..Default::default()
                },
                transport: Transport::Aimd(crate::AimdConfig::default()),
            },
        );
        for i in 1..8u32 {
            s.flows
                .push(ScenarioFlow::bulk(NodeId(i), NodeId(0), 150_000));
        }
        let r = TrafficEngine::new(&t).run(&s).unwrap();
        assert_eq!(r.fidelity, "packet+aimd");
        assert!(r.conserves_bytes());
    }

    #[test]
    fn run_batch_is_thread_count_invariant() {
        let t = topo();
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                let mut s = Scenario::new(
                    format!("s{i}"),
                    i,
                    if i % 2 == 0 {
                        Fidelity::Fluid
                    } else {
                        Fidelity::packet_open()
                    },
                );
                for f in 0..4u32 {
                    s.flows.push(ScenarioFlow::bulk(
                        NodeId((f + i as u32) % 8),
                        NodeId((f + i as u32 + 3) % 8),
                        100_000,
                    ));
                }
                s
            })
            .collect();
        let eng = TrafficEngine::new(&t);
        let one = eng.run_batch(&scenarios, 1).unwrap();
        let four = eng.run_batch(&scenarios, 4).unwrap();
        assert_eq!(one, four);
        let json1 = serde_json::to_string(&one).unwrap();
        let json4 = serde_json::to_string(&four).unwrap();
        assert_eq!(json1, json4);
    }

    #[test]
    fn fib_plane_matches_native_on_healthy_runs() {
        let t = topo();
        let svc = Mutex::new(RouteService::compile(t.clone(), 1).unwrap());
        let s = fluid_pair();
        let native = TrafficEngine::new(&t).run(&s).unwrap();
        let fib = TrafficEngine::with_plane(&t, RoutePlane::Fib(&svc))
            .run(&s)
            .unwrap();
        assert_eq!(native.completed, fib.completed);
        assert_eq!(native.bytes_delivered, fib.bytes_delivered);
        assert_eq!(fib.plane, "fib");
    }

    #[test]
    fn self_flows_complete_instantly() {
        let t = topo();
        let mut s = Scenario::new("self", 1, Fidelity::Fluid);
        s.flows.push(ScenarioFlow::bulk(NodeId(3), NodeId(3), 500));
        let r = TrafficEngine::new(&t).run(&s).unwrap();
        assert_eq!(r.completed, 1);
        assert_eq!(r.per_flow[0].fct_ns, Some(0));
        assert!(r.conserves_bytes());
    }
}
