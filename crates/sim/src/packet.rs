//! The packet fidelity backend: one store-and-forward event loop.
//!
//! Historically `packetsim` held two near-identical discrete-event loops
//! (open loop and AIMD closed loop). Both are now the single
//! [`run_packet`] loop, parameterized by transport, a fault timeline, and
//! bulk-synchronous phases. When the timeline is empty and every flow is
//! phase 0, the event sequence — time keys *and* insertion order — is
//! bit-for-bit the historical one, so the [`PacketSim`] compatibility API
//! reproduces the old reports byte for byte.
//!
//! Determinism: the only event ordering is the [`EventQueue`]'s
//! `(time, seq)` key; fault application and rerouting walk flows in input
//! order; no randomness is drawn inside the loop.

use crate::queue::EventQueue;
use crate::scenario::Transport;
use crate::stats::{FlowOutcome, PacketSimReport};
use netgraph::{FaultMask, LinkId, Network, NodeId, Route, RouteError, Topology};
use serde::{Deserialize, Serialize};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSimConfig {
    /// Link rate in Gbit/s (every link; the topology's capacities are
    /// interpreted as multiples of this).
    pub link_gbps: f64,
    /// Packet size in bytes (headers included).
    pub packet_bytes: u32,
    /// Output-queue capacity per directed link, in packets (tail drop).
    pub buffer_packets: u32,
    /// Per-hop propagation delay in nanoseconds.
    pub prop_delay_ns: u64,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            link_gbps: 1.0,
            packet_bytes: 1500,
            buffer_packets: 64,
            prop_delay_ns: 500,
        }
    }
}

impl PacketSimConfig {
    /// Serialization time of one packet on one link, in ns.
    pub fn tx_time_ns(&self) -> u64 {
        ((f64::from(self.packet_bytes) * 8.0) / self.link_gbps).round() as u64
    }
}

/// One flow: a packet train from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Number of packets.
    pub packets: u64,
    /// Injection start time (ns).
    pub start_ns: u64,
    /// Inter-packet injection gap (ns); `None` paces at line rate.
    pub gap_ns: Option<u64>,
}

impl FlowSpec {
    /// A bulk transfer paced at line rate starting at t = 0.
    pub fn bulk(src: NodeId, dst: NodeId, packets: u64) -> Self {
        FlowSpec {
            src,
            dst,
            packets,
            start_ns: 0,
            gap_ns: None,
        }
    }

    /// An unpaced burst: all packets offered at `start_ns` simultaneously
    /// (stresses buffers; models incast micro-bursts).
    pub fn burst(src: NodeId, dst: NodeId, packets: u64, start_ns: u64) -> Self {
        FlowSpec {
            src,
            dst,
            packets,
            start_ns,
            gap_ns: Some(0),
        }
    }
}

/// AIMD parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AimdConfig {
    /// Initial congestion window (packets in flight).
    pub initial_window: f64,
    /// Window cap (packets).
    pub max_window: f64,
    /// Multiplicative decrease factor on loss (e.g. 0.5).
    pub decrease: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            initial_window: 2.0,
            max_window: 64.0,
            decrease: 0.5,
        }
    }
}

/// A flow handed to the unified loop: the historical spec plus its phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PacketFlow {
    pub spec: FlowSpec,
    pub phase: u16,
}

/// Per-flow accounting out of the unified loop.
#[derive(Debug, Clone)]
pub(crate) struct PacketFlowStats {
    pub offered: u64,
    pub delivered: u64,
    pub dropped: u64,
    /// Packets never injected because the flow died (unroutable under the
    /// cumulative fault mask) — distinct from in-network tail/fault drops.
    pub killed: u64,
    pub completion_ns: u64,
    /// When the flow's injections were scheduled (phase base + start_ns).
    pub activated_ns: u64,
    pub dead: bool,
}

/// Aggregate accounting out of the unified loop.
#[derive(Debug, Clone)]
pub(crate) struct PacketRunStats {
    pub latencies: Vec<u64>,
    pub dropped: u64,
    pub last_delivery: u64,
    pub unroutable: usize,
    pub faults_fired: usize,
    pub flows: Vec<PacketFlowStats>,
}

/// One hop of a resolved path: the node the packet sits at and, unless it
/// is the destination, the directed link it leaves on.
#[derive(Debug, Clone, Copy)]
struct Hop {
    node: NodeId,
    out: Option<(usize, LinkId, NodeId)>,
}

fn hops_of_route(net: &Network, route: &Route) -> Vec<Hop> {
    let nodes = route.nodes();
    let mut hops = Vec::with_capacity(nodes.len());
    for (i, &node) in nodes.iter().enumerate() {
        let out = if i + 1 < nodes.len() {
            let l: LinkId = net
                .find_link(node, nodes[i + 1])
                .expect("route validated by construction");
            Some((
                l.index() * 2 + usize::from(net.link(l).a == node),
                l,
                nodes[i + 1],
            ))
        } else {
            None
        };
        hops.push(Hop { node, out });
    }
    hops
}

fn path_usable(path: &[Hop], mask: &FaultMask) -> bool {
    path.iter().all(|h| {
        mask.node_alive(h.node)
            && h.out
                .is_none_or(|(_, l, next)| mask.link_alive(l) && mask.node_alive(next))
    })
}

/// Heap payload. `(time, seq)` in the queue decides all ordering; these
/// fields only say what the event *is*. `hop == TRY_SEND` is an AIMD
/// sender wake-up rather than a packet arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Pkt {
    flow: u32,
    inject_ns: u64,
    hop: u32,
    ver: u16,
}

const TRY_SEND: u32 = u32::MAX;

/// Mutable per-flow loop state.
struct FState {
    remaining: u64,
    in_flight: u64,
    window: f64,
    done: bool,
    dead: bool,
    stats: PacketFlowStats,
}

/// The resolver the loop routes through: `(src, dst, mask)` to a route.
/// The engine supplies a plane-aware closure; the compatibility API
/// supplies the topology's native routing.
pub(crate) type Resolver<'r> =
    dyn FnMut(NodeId, NodeId, Option<&FaultMask>) -> Result<Route, RouteError> + 'r;

/// Everything the unified loop mutates, so phase activation and fault
/// rerouting can be ordinary methods instead of re-entrant closures.
struct PacketLoop<'l, 'r> {
    net: &'l Network,
    resolve: &'l mut Resolver<'r>,
    flows: &'l [PacketFlow],
    faults: &'l [(u64, FaultMask)],
    aimd: Option<AimdConfig>,
    tx: u64,
    paths: Vec<Vec<Vec<Hop>>>,
    cur_ver: Vec<u16>,
    state: Vec<FState>,
    heap: EventQueue<Pkt>,
    phase_open: Vec<usize>,
    cur_phase: u16,
    n_phases: u16,
    mask_idx: Option<usize>,
    unroutable: usize,
}

impl PacketLoop<'_, '_> {
    fn mask(&self) -> Option<&FaultMask> {
        self.mask_idx.map(|i| &self.faults[i].1)
    }

    /// Schedules flow `fi`'s injections (open loop) or first sender
    /// wake-up (AIMD) at phase base time `base`.
    fn activate(&mut self, fi: usize, base: u64) {
        let f = self.flows[fi];
        let start = base + f.spec.start_ns;
        self.state[fi].stats.activated_ns = start;
        // Under an accumulated mask, the initial path may be stale.
        if !self.state[fi].dead {
            if let Some(i) = self.mask_idx {
                let faults = self.faults;
                let mask = &faults[i].1;
                let v = self.cur_ver[fi] as usize;
                if !path_usable(&self.paths[fi][v], mask) {
                    match (self.resolve)(f.spec.src, f.spec.dst, Some(mask)) {
                        Ok(r) => {
                            self.paths[fi].push(hops_of_route(self.net, &r));
                            self.cur_ver[fi] = (self.paths[fi].len() - 1) as u16;
                        }
                        Err(_) => {
                            self.state[fi].dead = true;
                            self.state[fi].stats.dead = true;
                            self.unroutable += 1;
                        }
                    }
                }
            }
        }
        if self.state[fi].dead {
            let st = &mut self.state[fi];
            st.stats.killed += st.remaining;
            st.remaining = 0;
        } else if self.aimd.is_some() {
            self.push_try_send(fi, start);
        } else {
            let gap = f.spec.gap_ns.unwrap_or(self.tx);
            let ver = self.cur_ver[fi];
            for p in 0..f.spec.packets {
                let t = start + p * gap;
                self.heap.push(
                    t,
                    Pkt {
                        flow: fi as u32,
                        inject_ns: t,
                        hop: 0,
                        ver,
                    },
                );
            }
            let st = &mut self.state[fi];
            st.in_flight = f.spec.packets;
            st.remaining = 0;
        }
    }

    /// Activates every flow of phase `opening`, retiring the ones that are
    /// born terminal (dead or zero packets).
    fn open_phase(&mut self, opening: u16, now: u64) {
        for fi in 0..self.flows.len() {
            if self.flows[fi].phase != opening {
                continue;
            }
            self.activate(fi, now);
            let st = &mut self.state[fi];
            if !st.done && st.remaining == 0 && st.in_flight == 0 {
                st.done = true;
                self.phase_open[opening as usize] -= 1;
            }
        }
    }

    /// Opens successive phases while the current one has fully drained.
    fn advance_phases(&mut self, now: u64) {
        while self.cur_phase + 1 < self.n_phases && self.phase_open[self.cur_phase as usize] == 0 {
            self.cur_phase += 1;
            self.open_phase(self.cur_phase, now);
        }
    }

    /// Retires flow `fi` if it has terminated, opening later phases when
    /// its phase drains.
    fn check_done(&mut self, fi: usize, now: u64) {
        let st = &mut self.state[fi];
        if st.done || st.remaining != 0 || st.in_flight != 0 {
            return;
        }
        st.done = true;
        let p = self.flows[fi].phase;
        self.phase_open[p as usize] -= 1;
        if p == self.cur_phase {
            self.advance_phases(now);
        }
    }

    /// Installs fault `idx` as the cumulative mask and reroutes every live
    /// activated flow, killing the ones with no surviving path.
    fn apply_fault(&mut self, idx: usize, now: u64) {
        self.mask_idx = Some(idx);
        let faults = self.faults;
        let mask = &faults[idx].1;
        for fi in 0..self.flows.len() {
            if self.state[fi].done || self.state[fi].dead || self.flows[fi].phase > self.cur_phase {
                continue; // later phases validate at activation
            }
            let v = self.cur_ver[fi] as usize;
            if path_usable(&self.paths[fi][v], mask) {
                continue;
            }
            let f = self.flows[fi];
            match (self.resolve)(f.spec.src, f.spec.dst, Some(mask)) {
                Ok(r) => {
                    self.paths[fi].push(hops_of_route(self.net, &r));
                    self.cur_ver[fi] = (self.paths[fi].len() - 1) as u16;
                }
                Err(_) => {
                    let st = &mut self.state[fi];
                    st.dead = true;
                    st.stats.dead = true;
                    st.stats.killed += st.remaining;
                    st.remaining = 0;
                    self.check_done(fi, now);
                }
            }
        }
    }

    /// Schedules an AIMD sender wake-up for `fi` at `at`.
    fn push_try_send(&mut self, fi: usize, at: u64) {
        self.heap.push(
            at,
            Pkt {
                flow: fi as u32,
                inject_ns: 0,
                hop: TRY_SEND,
                ver: self.cur_ver[fi],
            },
        );
    }
}

/// Runs the unified packet loop.
///
/// `faults` is a timeline of *cumulative* masks sorted by time: entry `i`
/// must contain every failure of entry `i - 1`. `strict` propagates
/// initial routing errors (the historical contract); otherwise unroutable
/// flows are killed and counted.
pub(crate) fn run_packet(
    net: &Network,
    resolve: &mut Resolver<'_>,
    flows: &[PacketFlow],
    config: PacketSimConfig,
    transport: Transport,
    faults: &[(u64, FaultMask)],
    strict: bool,
) -> Result<PacketRunStats, RouteError> {
    let _span = dcn_telemetry::span!("packetsim.run");
    dcn_telemetry::counter!("packetsim.runs").inc();
    let telemetry_on = dcn_telemetry::enabled();
    let tx = config.tx_time_ns();
    let buffer_ns = u64::from(config.buffer_packets) * tx;
    let aimd = match transport {
        Transport::Open => None,
        Transport::Aimd(a) => Some(a),
    };

    // Resolve every flow's initial path upfront, in input order (the
    // historical behaviour; keeps strict-mode error propagation and seq
    // assignment identical to the old loops).
    let mut paths: Vec<Vec<Vec<Hop>>> = Vec::with_capacity(flows.len());
    let mut state: Vec<FState> = Vec::with_capacity(flows.len());
    let mut unroutable = 0usize;
    for f in flows {
        let (versions, dead) = match resolve(f.spec.src, f.spec.dst, None) {
            Ok(r) => (vec![hops_of_route(net, &r)], false),
            Err(e) if strict => return Err(e),
            Err(_) => {
                unroutable += 1;
                (vec![Vec::new()], true)
            }
        };
        paths.push(versions);
        state.push(FState {
            remaining: f.spec.packets,
            in_flight: 0,
            window: aimd.map_or(0.0, |a| a.initial_window),
            done: false,
            dead,
            stats: PacketFlowStats {
                offered: f.spec.packets,
                delivered: 0,
                dropped: 0,
                killed: 0,
                completion_ns: 0,
                activated_ns: 0,
                dead,
            },
        });
    }

    let n_phases = flows.iter().map(|f| f.phase + 1).max().unwrap_or(0);
    let mut phase_open: Vec<usize> = vec![0; n_phases as usize];
    for f in flows {
        phase_open[f.phase as usize] += 1;
    }

    let mut lp = PacketLoop {
        net,
        resolve,
        flows,
        faults,
        aimd,
        tx,
        paths,
        cur_ver: vec![0; flows.len()],
        state,
        heap: EventQueue::new(),
        phase_open,
        cur_phase: 0,
        n_phases,
        mask_idx: None,
        unroutable,
    };

    let mut busy_until = vec![0u64; net.link_count() * 2];
    let mut latencies: Vec<u64> = Vec::new();
    let mut dropped = 0u64;
    let mut last_delivery = 0u64;
    let mut events = 0u64;
    let mut next_fault = 0usize;

    if n_phases > 0 {
        lp.open_phase(0, 0);
        lp.advance_phases(0);
    }

    while let Some((now, _, pkt)) = lp.heap.pop() {
        events += 1;
        // Fire every fault due by `now` and reroute live flows.
        while next_fault < faults.len() && faults[next_fault].0 <= now {
            lp.apply_fault(next_fault, now);
            next_fault += 1;
        }

        let fi = pkt.flow as usize;
        if pkt.hop == TRY_SEND {
            let can_send = {
                let st = &lp.state[fi];
                st.remaining > 0 && (st.in_flight as f64) < st.window.floor()
            };
            if can_send {
                let ver = lp.cur_ver[fi];
                {
                    let st = &mut lp.state[fi];
                    st.remaining -= 1;
                    st.in_flight += 1;
                }
                lp.heap.push(
                    now,
                    Pkt {
                        flow: pkt.flow,
                        inject_ns: now,
                        hop: 0,
                        ver,
                    },
                );
                // Pace the next injection one serialization time later.
                if lp.state[fi].remaining > 0 {
                    lp.push_try_send(fi, now + tx);
                }
            }
            lp.check_done(fi, now);
            continue;
        }

        let hop = lp.paths[fi][pkt.ver as usize][pkt.hop as usize];
        // A packet crossing dead gear vanishes (counts as a loss signal).
        let fault_hit = lp.mask().is_some_and(|m| {
            !m.node_alive(hop.node)
                || hop
                    .out
                    .is_some_and(|(_, l, next)| !m.link_alive(l) || !m.node_alive(next))
        });
        match hop.out {
            None if !fault_hit => {
                // Delivered.
                if telemetry_on {
                    dcn_telemetry::histogram!("packetsim.delivery_latency_ns")
                        .record(now - pkt.inject_ns);
                }
                latencies.push(now - pkt.inject_ns);
                last_delivery = last_delivery.max(now);
                let st = &mut lp.state[fi];
                st.in_flight -= 1;
                st.stats.delivered += 1;
                st.stats.completion_ns = st.stats.completion_ns.max(now);
                if let Some(a) = aimd {
                    // Additive increase, then try to send more.
                    st.window = (st.window + 1.0 / st.window).min(a.max_window);
                    lp.push_try_send(fi, now);
                }
                lp.check_done(fi, now);
            }
            Some((dlink, _, _)) if !fault_hit => {
                // Tail-drop if the output queue (measured in pending
                // serialization time) is full.
                let backlog = busy_until[dlink].saturating_sub(now);
                if telemetry_on {
                    // Queue depth in packets at enqueue time.
                    dcn_telemetry::histogram!("packetsim.queue_depth_packets")
                        .record(backlog / tx.max(1));
                }
                if backlog >= buffer_ns {
                    dropped += 1;
                    let st = &mut lp.state[fi];
                    st.in_flight -= 1;
                    st.stats.dropped += 1;
                    if let Some(a) = aimd {
                        // Multiplicative decrease (instant loss signal).
                        st.window = (st.window * a.decrease).max(1.0);
                        lp.push_try_send(fi, now + tx);
                    }
                    lp.check_done(fi, now);
                    continue;
                }
                let start = busy_until[dlink].max(now);
                let done_t = start + tx;
                busy_until[dlink] = done_t;
                lp.heap.push(
                    done_t + config.prop_delay_ns,
                    Pkt {
                        flow: pkt.flow,
                        inject_ns: pkt.inject_ns,
                        hop: pkt.hop + 1,
                        ver: pkt.ver,
                    },
                );
            }
            _ => {
                // Lost to a fault: the packet's node, link, or next node
                // died under the cumulative mask.
                dropped += 1;
                let st = &mut lp.state[fi];
                st.in_flight -= 1;
                st.stats.dropped += 1;
                if let Some(a) = aimd {
                    st.window = (st.window * a.decrease).max(1.0);
                    lp.push_try_send(fi, now + tx);
                }
                lp.check_done(fi, now);
            }
        }
    }

    if telemetry_on {
        dcn_telemetry::counter!("packetsim.events").add(events);
        dcn_telemetry::counter!("packetsim.delivered").add(latencies.len() as u64);
        dcn_telemetry::counter!("packetsim.dropped").add(dropped);
    }
    unroutable = lp.unroutable;
    Ok(PacketRunStats {
        latencies,
        dropped,
        last_delivery,
        unroutable,
        faults_fired: next_fault,
        flows: lp.state.into_iter().map(|s| s.stats).collect(),
    })
}

/// Discrete-event packet simulator bound to one topology (the historical
/// `packetsim` API, now a thin veneer over [`run_packet`]).
#[derive(Debug, Clone, Copy)]
pub struct PacketSim<'a, T: Topology + ?Sized> {
    topo: &'a T,
    config: PacketSimConfig,
}

impl<'a, T: Topology + ?Sized> PacketSim<'a, T> {
    /// Creates a simulator over `topo`.
    pub fn new(topo: &'a T, config: PacketSimConfig) -> Self {
        PacketSim { topo, config }
    }

    /// The topology this simulator drives.
    pub fn topo(&self) -> &'a T {
        self.topo
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PacketSimConfig {
        &self.config
    }

    fn run_transport(
        &self,
        flows: &[FlowSpec],
        transport: Transport,
    ) -> Result<PacketSimReport, RouteError> {
        let net = self.topo.network();
        let pflows: Vec<PacketFlow> = flows
            .iter()
            .map(|&spec| PacketFlow { spec, phase: 0 })
            .collect();
        let mut resolve = |s: NodeId, d: NodeId, m: Option<&FaultMask>| match m {
            None => self.topo.route(s, d),
            Some(mask) => self.topo.route_avoiding(s, d, mask),
        };
        let stats = run_packet(
            net,
            &mut resolve,
            &pflows,
            self.config,
            transport,
            &[],
            true,
        )?;
        let per_flow: Vec<FlowOutcome> = flows
            .iter()
            .zip(&stats.flows)
            .map(|(f, st)| FlowOutcome {
                src: f.src,
                dst: f.dst,
                offered: f.packets,
                delivered: st.delivered,
                dropped: st.dropped,
                completion_ns: st.completion_ns,
            })
            .collect();
        Ok(PacketSimReport::from_samples(
            self.topo.name(),
            stats.latencies,
            stats.dropped,
            stats.last_delivery,
            self.config,
            per_flow,
        ))
    }

    /// Runs the flow set to completion and reports packet-level statistics.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (e.g. a non-server endpoint).
    pub fn run(&self, flows: &[FlowSpec]) -> Result<PacketSimReport, RouteError> {
        self.run_transport(flows, Transport::Open)
    }

    /// Runs the flow set with AIMD closed-loop senders: each flow keeps at
    /// most `window` packets in flight, growing the window by `1/window`
    /// per delivery and multiplying it by `decrease` per loss.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (e.g. a non-server endpoint).
    pub fn run_aimd(
        &self,
        flows: &[FlowSpec],
        aimd: AimdConfig,
    ) -> Result<PacketSimReport, RouteError> {
        self.run_transport(flows, Transport::Aimd(aimd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap() // 8 servers
    }

    #[test]
    fn lone_flow_is_lossless_at_line_rate() {
        let t = topo();
        let cfg = PacketSimConfig::default();
        let r = PacketSim::new(&t, cfg)
            .run(&[FlowSpec::bulk(NodeId(0), NodeId(7), 500)])
            .unwrap();
        assert_eq!(r.delivered, 500);
        assert_eq!(r.dropped, 0);
        assert!(r.mean_latency_ns > 0.0);
        // Goodput ≈ line rate for a long-enough train.
        assert!(r.goodput_gbps(1) > 0.9, "{}", r.goodput_gbps(1));
    }

    #[test]
    fn latency_grows_with_hops() {
        let t = topo();
        let cfg = PacketSimConfig::default();
        // 1-hop pair: same label, different position ⇒ ids 0 and 1.
        let near = PacketSim::new(&t, cfg)
            .run(&[FlowSpec::bulk(NodeId(0), NodeId(1), 1)])
            .unwrap();
        let far = PacketSim::new(&t, cfg)
            .run(&[FlowSpec::bulk(NodeId(0), NodeId(7), 1)])
            .unwrap();
        assert!(far.mean_latency_ns > near.mean_latency_ns);
    }

    #[test]
    fn incast_burst_drops_with_tiny_buffers() {
        let t = topo();
        let cfg = PacketSimConfig {
            buffer_packets: 2,
            ..Default::default()
        };
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::burst(NodeId(s), NodeId(0), 50, 0))
            .collect();
        let r = PacketSim::new(&t, cfg).run(&flows).unwrap();
        assert!(r.dropped > 0, "expected tail drops under incast burst");
        assert!(r.delivered > 0);
        assert_eq!(r.delivered + r.dropped, 350);
    }

    #[test]
    fn bigger_buffers_reduce_drops() {
        let t = topo();
        let small = PacketSimConfig {
            buffer_packets: 2,
            ..Default::default()
        };
        let big = PacketSimConfig {
            buffer_packets: 256,
            ..Default::default()
        };
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::burst(NodeId(s), NodeId(0), 50, 0))
            .collect();
        let r_small = PacketSim::new(&t, small).run(&flows).unwrap();
        let r_big = PacketSim::new(&t, big).run(&flows).unwrap();
        assert!(r_big.dropped < r_small.dropped);
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let cfg = PacketSimConfig::default();
        let flows = [FlowSpec::bulk(NodeId(0), NodeId(6), 100)];
        let a = PacketSim::new(&t, cfg).run(&flows).unwrap();
        let b = PacketSim::new(&t, cfg).run(&flows).unwrap();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_latency_ns, b.mean_latency_ns);
    }

    #[test]
    fn per_flow_outcomes_are_consistent() {
        let t = topo();
        let flows = [
            FlowSpec::bulk(NodeId(0), NodeId(7), 40),
            FlowSpec::bulk(NodeId(2), NodeId(5), 10),
        ];
        let r = PacketSim::new(&t, PacketSimConfig::default())
            .run(&flows)
            .unwrap();
        assert_eq!(r.per_flow.len(), 2);
        for (fo, spec) in r.per_flow.iter().zip(&flows) {
            assert_eq!(fo.src, spec.src);
            assert_eq!(fo.dst, spec.dst);
            assert_eq!(fo.offered, spec.packets);
            assert_eq!(fo.delivered + fo.dropped, fo.offered);
        }
        let total: u64 = r.per_flow.iter().map(|f| f.delivered).sum();
        assert_eq!(total, r.delivered);
        // FCT of the longer flow dominates the mean makespan accounting.
        let fct = r.mean_fct_ns().unwrap();
        assert!(fct > 0.0 && fct <= r.makespan_ns as f64);
        assert!(r.per_flow[0].completion_ns >= r.per_flow[1].completion_ns);
    }

    #[test]
    fn rejects_switch_endpoint() {
        let t = topo();
        let sw = NodeId(t.params().server_count() as u32);
        assert!(PacketSim::new(&t, PacketSimConfig::default())
            .run(&[FlowSpec::bulk(sw, NodeId(0), 1)])
            .is_err());
    }

    #[test]
    fn aimd_keeps_offered_packets_accounted() {
        // AIMD retries nothing (dropped is dropped), so delivered + dropped
        // equals offered.
        let t = topo();
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::bulk(NodeId(s), NodeId(0), 100))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 4,
            ..Default::default()
        };
        let r = PacketSim::new(&t, cfg)
            .run_aimd(&flows, AimdConfig::default())
            .unwrap();
        let offered = 7 * 100;
        assert_eq!(r.delivered + r.dropped, offered);
    }

    #[test]
    fn aimd_loses_far_less_than_open_loop_under_incast() {
        let t = topo();
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::burst(NodeId(s), NodeId(0), 100, 0))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 4,
            ..Default::default()
        };
        let open = PacketSim::new(&t, cfg).run(&flows).unwrap();
        let aimd = PacketSim::new(&t, cfg)
            .run_aimd(&flows, AimdConfig::default())
            .unwrap();
        assert!(open.loss_rate() > 0.1, "incast must stress the open loop");
        assert!(
            aimd.loss_rate() < open.loss_rate() / 2.0,
            "aimd {} vs open {}",
            aimd.loss_rate(),
            open.loss_rate()
        );
    }

    #[test]
    fn lone_aimd_flow_completes_losslessly() {
        let t = topo();
        let r = PacketSim::new(&t, PacketSimConfig::default())
            .run_aimd(
                &[FlowSpec::bulk(NodeId(0), NodeId(7), 200)],
                AimdConfig::default(),
            )
            .unwrap();
        assert_eq!(r.delivered, 200);
        assert_eq!(r.dropped, 0);
        assert!(r.per_flow[0].complete());
    }

    #[test]
    fn window_cap_limits_inflight_latency() {
        // A tiny max window keeps queues shallow → lower p99 than a huge one.
        let t = topo();
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::bulk(NodeId(s), NodeId(0), 100))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 1024,
            ..Default::default()
        };
        let small = PacketSim::new(&t, cfg)
            .run_aimd(
                &flows,
                AimdConfig {
                    max_window: 2.0,
                    ..Default::default()
                },
            )
            .unwrap();
        let big = PacketSim::new(&t, cfg)
            .run_aimd(
                &flows,
                AimdConfig {
                    max_window: 512.0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(small.p99_latency_ns < big.p99_latency_ns);
    }

    #[test]
    fn phases_serialize_packet_trains() {
        // Two phases on the same path: the phase-1 flow cannot start
        // before the phase-0 flow's last delivery.
        let t = topo();
        let net = t.network();
        let flows = [
            PacketFlow {
                spec: FlowSpec::bulk(NodeId(0), NodeId(7), 50),
                phase: 0,
            },
            PacketFlow {
                spec: FlowSpec::bulk(NodeId(0), NodeId(7), 50),
                phase: 1,
            },
        ];
        let mut resolve = |s: NodeId, d: NodeId, m: Option<&FaultMask>| match m {
            None => t.route(s, d),
            Some(mask) => t.route_avoiding(s, d, mask),
        };
        let stats = run_packet(
            net,
            &mut resolve,
            &flows,
            PacketSimConfig::default(),
            Transport::Open,
            &[],
            true,
        )
        .unwrap();
        assert_eq!(stats.flows[0].delivered, 50);
        assert_eq!(stats.flows[1].delivered, 50);
        assert!(stats.flows[1].activated_ns >= stats.flows[0].completion_ns);
    }

    #[test]
    fn midflow_fault_drops_inflight_and_reroutes() {
        // Fail a link mid-train: some packets are lost at the dead link,
        // the rest reroute and still arrive; accounting stays exact.
        let t = topo();
        let net = t.network();
        let route = t.route(NodeId(0), NodeId(7)).unwrap();
        let nodes = route.nodes();
        let l = net.find_link(nodes[0], nodes[1]).unwrap();
        let mut mask = FaultMask::new(net);
        mask.fail_link(l);
        let flows = [PacketFlow {
            spec: FlowSpec::bulk(NodeId(0), NodeId(7), 200),
            phase: 0,
        }];
        let cfg = PacketSimConfig::default();
        let fault_at = 100 * cfg.tx_time_ns(); // mid-train
        let mut resolve = |s: NodeId, d: NodeId, m: Option<&FaultMask>| match m {
            None => t.route(s, d),
            Some(mk) => t.route_avoiding(s, d, mk),
        };
        let stats = run_packet(
            net,
            &mut resolve,
            &flows,
            cfg,
            Transport::Open,
            &[(fault_at, mask)],
            true,
        )
        .unwrap();
        let st = &stats.flows[0];
        assert_eq!(stats.faults_fired, 1);
        assert!(
            st.dropped > 0,
            "in-flight packets on the dead link are lost"
        );
        assert!(st.delivered > 0, "rerouted packets still arrive");
        assert_eq!(st.delivered + st.dropped + st.killed, st.offered);
    }

    #[test]
    fn unified_loop_without_faults_matches_historical_behaviour() {
        // The compat API must agree with itself across transports and be
        // stable run to run (byte identity is asserted end-to-end by the
        // bench fig tables; here we pin the aggregate numbers).
        let t = topo();
        let flows = [
            FlowSpec::bulk(NodeId(0), NodeId(7), 64),
            FlowSpec::burst(NodeId(3), NodeId(4), 16, 1000),
        ];
        let r = PacketSim::new(&t, PacketSimConfig::default())
            .run(&flows)
            .unwrap();
        assert_eq!(r.delivered + r.dropped, 80);
        let again = PacketSim::new(&t, PacketSimConfig::default())
            .run(&flows)
            .unwrap();
        assert_eq!(r, again);
    }
}
