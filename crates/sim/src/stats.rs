//! Packet-level statistics (the historical `packetsim` report shape).

use crate::PacketSimConfig;
use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Per-flow outcome of a packet-level run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Packets offered by the flow.
    pub offered: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Time of the flow's last delivery (ns) — its completion time when
    /// `delivered == offered`.
    pub completion_ns: u64,
}

impl FlowOutcome {
    /// `true` if every offered packet arrived.
    pub fn complete(&self) -> bool {
        self.delivered == self.offered
    }
}

/// Result of one packet-level simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSimReport {
    /// Topology name.
    pub topology: String,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets tail-dropped.
    pub dropped: u64,
    /// Mean end-to-end latency (ns) over delivered packets.
    pub mean_latency_ns: f64,
    /// Median latency (ns).
    pub p50_latency_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_latency_ns: u64,
    /// Maximum latency (ns).
    pub max_latency_ns: u64,
    /// Time of the last delivery (ns) — the makespan.
    pub makespan_ns: u64,
    /// Configuration the run used.
    pub config: PacketSimConfig,
    /// Per-flow outcomes, in input order.
    pub per_flow: Vec<FlowOutcome>,
}

impl PacketSimReport {
    /// Builds a report from raw latency samples.
    pub(crate) fn from_samples(
        topology: String,
        mut latencies: Vec<u64>,
        dropped: u64,
        makespan_ns: u64,
        config: PacketSimConfig,
        per_flow: Vec<FlowOutcome>,
    ) -> Self {
        latencies.sort_unstable();
        let delivered = latencies.len() as u64;
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / delivered as f64
        };
        let pct = |q: f64| -> u64 {
            if latencies.is_empty() {
                0
            } else {
                // Nearest-rank percentile.
                let idx = (latencies.len() as f64 * q).ceil() as usize;
                latencies[idx.clamp(1, latencies.len()) - 1]
            }
        };
        PacketSimReport {
            topology,
            delivered,
            dropped,
            mean_latency_ns: mean,
            p50_latency_ns: pct(0.50),
            p99_latency_ns: pct(0.99),
            max_latency_ns: latencies.last().copied().unwrap_or(0),
            makespan_ns,
            config,
            per_flow,
        }
    }

    /// Mean flow completion time (ns) over flows that finished completely;
    /// `None` when no flow completed.
    pub fn mean_fct_ns(&self) -> Option<f64> {
        let done: Vec<u64> = self
            .per_flow
            .iter()
            .filter(|f| f.complete() && f.offered > 0)
            .map(|f| f.completion_ns)
            .collect();
        if done.is_empty() {
            None
        } else {
            Some(done.iter().sum::<u64>() as f64 / done.len() as f64)
        }
    }

    /// Loss rate over offered packets.
    pub fn loss_rate(&self) -> f64 {
        let offered = self.delivered + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Delivered goodput in Gbit/s, normalized by the number of concurrent
    /// flows (pass 1 for aggregate).
    pub fn goodput_gbps(&self, flows: u64) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        let bits = self.delivered as f64 * f64::from(self.config.packet_bytes) * 8.0;
        bits / self.makespan_ns as f64 / flows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates() {
        let cfg = PacketSimConfig::default();
        let lat: Vec<u64> = (1..=100).collect();
        let r = PacketSimReport::from_samples("t".into(), lat, 25, 1_000_000, cfg, vec![]);
        assert_eq!(r.delivered, 100);
        assert_eq!(r.p50_latency_ns, 50);
        assert_eq!(r.p99_latency_ns, 99);
        assert_eq!(r.max_latency_ns, 100);
        assert!((r.mean_latency_ns - 50.5).abs() < 1e-9);
        assert!((r.loss_rate() - 0.2).abs() < 1e-12);
        assert!(r.goodput_gbps(1) > 0.0);
    }

    #[test]
    fn empty_run() {
        let cfg = PacketSimConfig::default();
        let r = PacketSimReport::from_samples("t".into(), vec![], 0, 0, cfg, vec![]);
        assert_eq!(r.mean_fct_ns(), None);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.goodput_gbps(1), 0.0);
    }
}
