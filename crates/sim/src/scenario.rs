//! Scenario descriptions: what traffic to offer, at which fidelity, and
//! which faults fire while it runs.
//!
//! A [`Scenario`] is a pure value — flows, phases, a fault timeline, and a
//! fidelity choice — so the same description can run on any topology and
//! any routing plane, and two runs of the same scenario are byte-identical
//! by construction.

use crate::packet::PacketSimConfig;
use crate::AimdConfig;
use netgraph::{FaultScenario, NodeId};
use serde::{Deserialize, Serialize};

/// One flow of a scenario.
///
/// Flows are grouped into *phases*: phase `k + 1` starts only when every
/// phase-`k` flow has terminated (delivered, dropped, or killed). Within a
/// phase, a flow starts `start_ns` after the phase opens. This models
/// bulk-synchronous collectives (ring all-reduce steps) without the engine
/// having to know anything about the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioFlow {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Start offset within the flow's phase (ns).
    pub start_ns: u64,
    /// Packet-mode injection gap (ns); `None` paces at line rate, `Some(0)`
    /// is an unpaced burst. Ignored by the fluid backend.
    pub gap_ns: Option<u64>,
    /// Bulk-synchronous phase index (0 = starts at scenario time zero).
    pub phase: u16,
}

impl ScenarioFlow {
    /// A line-rate-paced phase-0 transfer starting at t = 0.
    pub fn bulk(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        ScenarioFlow {
            src,
            dst,
            bytes,
            start_ns: 0,
            gap_ns: None,
            phase: 0,
        }
    }

    /// An unpaced burst offered all at once at `start_ns` (phase 0).
    pub fn burst(src: NodeId, dst: NodeId, bytes: u64, start_ns: u64) -> Self {
        ScenarioFlow {
            src,
            dst,
            bytes,
            start_ns,
            gap_ns: Some(0),
            phase: 0,
        }
    }

    /// The same flow in phase `phase`.
    #[must_use]
    pub fn in_phase(mut self, phase: u16) -> Self {
        self.phase = phase;
        self
    }

    /// The same flow starting `start_ns` into its phase.
    #[must_use]
    pub fn starting_at(mut self, start_ns: u64) -> Self {
        self.start_ns = start_ns;
        self
    }
}

/// A fault firing mid-run: at `at_ns` (absolute scenario time) the seeded
/// [`FaultScenario`] is built against the network and unioned into the
/// cumulative fault mask. In-flight traffic crossing newly dead gear is
/// dropped; surviving flows reroute on the engine's routing plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjection {
    /// Absolute scenario time the fault fires (ns).
    pub at_ns: u64,
    /// What fails (built against the run's network when the time comes).
    pub scenario: FaultScenario,
}

/// How the packet backend injects traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Transport {
    /// Open loop: every packet is offered on schedule regardless of loss.
    Open,
    /// Closed loop: windowed AIMD senders (additive increase per delivery,
    /// multiplicative decrease per loss).
    Aimd(AimdConfig),
}

/// Which fidelity backend runs the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Fluid: flows are rates under max-min fair sharing, recomputed on
    /// every arrival/completion/fault event. Fast, no loss model.
    Fluid,
    /// Packet: store-and-forward with FIFO output queues and tail drop.
    Packet {
        /// Link/packet/buffer parameters.
        config: PacketSimConfig,
        /// Injection discipline.
        transport: Transport,
    },
}

impl Fidelity {
    /// Packet fidelity with the default config and open-loop injection.
    #[must_use]
    pub fn packet_open() -> Self {
        Fidelity::Packet {
            config: PacketSimConfig::default(),
            transport: Transport::Open,
        }
    }

    /// Packet fidelity with the default config and AIMD senders.
    #[must_use]
    pub fn packet_aimd() -> Self {
        Fidelity::Packet {
            config: PacketSimConfig::default(),
            transport: Transport::Aimd(AimdConfig::default()),
        }
    }

    /// Stable label for reports: `fluid`, `packet`, or `packet+aimd`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Fidelity::Fluid => "fluid",
            Fidelity::Packet {
                transport: Transport::Open,
                ..
            } => "packet",
            Fidelity::Packet {
                transport: Transport::Aimd(_),
                ..
            } => "packet+aimd",
        }
    }
}

/// A complete scenario: named traffic + fault timeline + fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reports carry it).
    pub name: String,
    /// The seed the scenario was generated from (provenance; the engine
    /// itself draws no randomness).
    pub seed: u64,
    /// Fidelity backend to run on.
    pub fidelity: Fidelity,
    /// The offered flows.
    pub flows: Vec<ScenarioFlow>,
    /// Faults firing mid-run, in any order (the engine sorts by time).
    pub faults: Vec<FaultInjection>,
}

impl Scenario {
    /// An empty scenario shell.
    pub fn new(name: impl Into<String>, seed: u64, fidelity: Fidelity) -> Self {
        Scenario {
            name: name.into(),
            seed,
            fidelity,
            flows: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// The same scenario with the fault timeline stripped (the healthy
    /// counterpart used for throughput-retention baselines).
    #[must_use]
    pub fn without_faults(&self) -> Scenario {
        Scenario {
            faults: Vec::new(),
            ..self.clone()
        }
    }

    /// Number of bulk-synchronous phases (`max phase + 1`; 0 if no flows).
    #[must_use]
    pub fn phase_count(&self) -> u16 {
        self.flows
            .iter()
            .map(|f| f.phase + 1)
            .max()
            .unwrap_or_default()
    }

    /// Total bytes offered across all flows and phases.
    #[must_use]
    pub fn offered_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_count_and_offered_bytes() {
        let mut s = Scenario::new("t", 1, Fidelity::Fluid);
        assert_eq!(s.phase_count(), 0);
        s.flows.push(ScenarioFlow::bulk(NodeId(0), NodeId(1), 100));
        s.flows
            .push(ScenarioFlow::bulk(NodeId(1), NodeId(2), 50).in_phase(2));
        assert_eq!(s.phase_count(), 3);
        assert_eq!(s.offered_bytes(), 150);
    }

    #[test]
    fn without_faults_strips_only_faults() {
        let mut s = Scenario::new("t", 1, Fidelity::packet_open());
        s.flows
            .push(ScenarioFlow::burst(NodeId(0), NodeId(1), 9, 5));
        s.faults.push(FaultInjection {
            at_ns: 10,
            scenario: netgraph::FaultScenario::seeded(3).fail_links_frac(0.1),
        });
        let h = s.without_faults();
        assert!(h.faults.is_empty());
        assert_eq!(h.flows, s.flows);
        assert_eq!(h.name, s.name);
    }

    #[test]
    fn fidelity_labels() {
        assert_eq!(Fidelity::Fluid.label(), "fluid");
        assert_eq!(Fidelity::packet_open().label(), "packet");
        assert_eq!(Fidelity::packet_aimd().label(), "packet+aimd");
    }
}
