//! Scenario-level reporting: FCT distributions, byte conservation, and
//! throughput retention.

use dcn_telemetry::HdrHistogram;
use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Flow-completion-time distribution summary, measured in nanoseconds and
/// quantized by [`dcn_telemetry::HdrHistogram`] (relative error ≤ 1/16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FctSummary {
    /// Completed flows the distribution covers.
    pub count: u64,
    /// Mean FCT (ns).
    pub mean_ns: f64,
    /// Median FCT (ns).
    pub p50_ns: u64,
    /// 99th-percentile FCT (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile FCT (ns).
    pub p999_ns: u64,
    /// Worst FCT (ns).
    pub max_ns: u64,
}

impl FctSummary {
    /// Summarizes an HDR histogram of FCT samples.
    #[must_use]
    pub fn of(h: &HdrHistogram) -> Self {
        FctSummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.percentile(0.50),
            p99_ns: h.percentile(0.99),
            p999_ns: h.percentile(0.999),
            max_ns: h.max(),
        }
    }
}

/// Per-flow outcome of a scenario run, in scenario flow order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Bulk-synchronous phase.
    pub phase: u16,
    /// Bytes offered.
    pub offered_bytes: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Bytes lost in the network (tail drop or dead gear; packet mode).
    pub dropped_bytes: u64,
    /// Bytes never injected because the flow died (unroutable).
    pub killed_bytes: u64,
    /// Flow completion time (ns from the flow's activation), for flows
    /// that delivered everything they offered.
    pub fct_ns: Option<u64>,
    /// `true` when the flow was killed by faults (unroutable).
    pub dead: bool,
}

impl FlowResult {
    /// `true` when every offered byte was delivered.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.delivered_bytes == self.offered_bytes
    }
}

/// Result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Topology name.
    pub topology: String,
    /// Fidelity label (`fluid`, `packet`, `packet+aimd`).
    pub fidelity: String,
    /// Routing plane label (`native`, router name, or `fib`).
    pub plane: String,
    /// Flows offered.
    pub flows: usize,
    /// Flows that delivered every offered byte.
    pub completed: usize,
    /// Flows killed (no route at start or after faults).
    pub unroutable: usize,
    /// Bulk-synchronous phases the scenario ran.
    pub phases: u16,
    /// Faults that fired during the run.
    pub faults_fired: usize,
    /// Total bytes offered.
    pub bytes_offered: u64,
    /// Bytes delivered end to end.
    pub bytes_delivered: u64,
    /// Bytes lost in the network.
    pub bytes_dropped: u64,
    /// Bytes never injected (killed flows).
    pub bytes_killed: u64,
    /// Time of the last delivery or kill (ns).
    pub makespan_ns: u64,
    /// Aggregate delivered goodput in Gbit/s over the makespan.
    pub goodput_gbps: f64,
    /// FCT distribution over completed flows.
    pub fct: FctSummary,
    /// Per-flow outcomes (scenario flow order).
    pub per_flow: Vec<FlowResult>,
}

impl ScenarioReport {
    /// Byte conservation: offered == delivered + dropped + killed, both in
    /// aggregate and per flow (nothing is ever in flight after a run).
    #[must_use]
    pub fn conserves_bytes(&self) -> bool {
        self.bytes_offered == self.bytes_delivered + self.bytes_dropped + self.bytes_killed
            && self
                .per_flow
                .iter()
                .all(|f| f.offered_bytes == f.delivered_bytes + f.dropped_bytes + f.killed_bytes)
    }

    /// Delivered fraction of offered bytes.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.bytes_offered == 0 {
            return 1.0;
        }
        self.bytes_delivered as f64 / self.bytes_offered as f64
    }
}

/// Throughput retention of a faulted run against its healthy counterpart:
/// `faulted.goodput / healthy.goodput`, clamped to 0 when the healthy run
/// moved no bytes.
#[must_use]
pub fn retention(healthy: &ScenarioReport, faulted: &ScenarioReport) -> f64 {
    if healthy.goodput_gbps <= 0.0 {
        return 0.0;
    }
    faulted.goodput_gbps / healthy.goodput_gbps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScenarioReport {
        ScenarioReport {
            scenario: "t".into(),
            topology: "x".into(),
            fidelity: "fluid".into(),
            plane: "native".into(),
            flows: 1,
            completed: 1,
            unroutable: 0,
            phases: 1,
            faults_fired: 0,
            bytes_offered: 100,
            bytes_delivered: 80,
            bytes_dropped: 15,
            bytes_killed: 5,
            makespan_ns: 1000,
            goodput_gbps: 0.64,
            fct: FctSummary {
                count: 1,
                mean_ns: 5.0,
                p50_ns: 5,
                p99_ns: 5,
                p999_ns: 5,
                max_ns: 5,
            },
            per_flow: vec![FlowResult {
                src: NodeId(0),
                dst: NodeId(1),
                phase: 0,
                offered_bytes: 100,
                delivered_bytes: 80,
                dropped_bytes: 15,
                killed_bytes: 5,
                fct_ns: None,
                dead: false,
            }],
        }
    }

    #[test]
    fn conservation_checks_aggregate_and_per_flow() {
        let mut r = report();
        assert!(r.conserves_bytes());
        r.bytes_dropped += 1;
        assert!(!r.conserves_bytes());
    }

    #[test]
    fn retention_guards_zero_goodput() {
        let h = report();
        let mut f = report();
        f.goodput_gbps = 0.32;
        assert!((retention(&h, &f) - 0.5).abs() < 1e-12);
        let mut dead = report();
        dead.goodput_gbps = 0.0;
        assert_eq!(retention(&dead, &f), 0.0);
    }

    #[test]
    fn delivery_ratio_handles_empty() {
        let mut r = report();
        assert!((r.delivery_ratio() - 0.8).abs() < 1e-12);
        r.bytes_offered = 0;
        assert_eq!(r.delivery_ratio(), 1.0);
    }
}
