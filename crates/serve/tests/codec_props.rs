//! Property tests pinning the wire codec: round-trips are lossless and
//! every malformed input — truncated, oversized, wrong version, lying
//! count, trailing garbage, random bytes — yields a typed [`WireError`],
//! never a panic.

use dcn_serve::wire::{
    split_frame, RejectReason, Reply, Request, WireError, WireOutcome, WireRouteError,
    DEFAULT_MAX_FRAME, HEADER_BYTES, LEN_BYTES, WIRE_VERSION,
};
use proptest::prelude::*;

/// Draws a pseudo-random request from a seed (the vendored proptest
/// stand-in has no collection strategies, so composite shapes come from a
/// seeded stream).
fn sample_request(seed: u64) -> Request {
    use rand::{Rng, RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let id = rng.next_u64();
    match rng.gen_range(0..5u64) {
        0 => Request::Query {
            id,
            src: rng.next_u32(),
            dst: rng.next_u32(),
        },
        1 => Request::QueryBatch {
            id,
            pairs: (0..rng.gen_range(0..40u64))
                .map(|_| (rng.next_u32(), rng.next_u32()))
                .collect(),
        },
        2 => Request::QueryVlb {
            id,
            seed: rng.next_u64(),
            src: rng.next_u32(),
            dst: rng.next_u32(),
        },
        3 => Request::MaskPush {
            id,
            clear: rng.gen_range(0..2u64) == 1,
            nodes: (0..rng.gen_range(0..20u64))
                .map(|_| rng.next_u32())
                .collect(),
            links: (0..rng.gen_range(0..20u64))
                .map(|_| rng.next_u32())
                .collect(),
        },
        _ => Request::Info { id },
    }
}

/// Draws a pseudo-random reply from a seed.
fn sample_reply(seed: u64) -> Reply {
    use rand::{Rng, RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let id = rng.next_u64();
    let outcome = |rng: &mut rand::rngs::StdRng| WireOutcome {
        tier: rng.gen_range(0..5u64) as u8,
        attempts: rng.next_u32(),
        backoff_units: rng.next_u64(),
        nodes: (0..rng.gen_range(0..12u64))
            .map(|_| rng.next_u32())
            .collect(),
    };
    let route_error = |rng: &mut rand::rngs::StdRng| match rng.gen_range(0..4u64) {
        0 => WireRouteError::NotAServer(rng.next_u32()),
        1 => WireRouteError::Unreachable {
            src: rng.next_u32(),
            dst: rng.next_u32(),
        },
        2 => WireRouteError::GaveUp {
            src: rng.next_u32(),
            dst: rng.next_u32(),
            attempts: rng.next_u32(),
        },
        _ => WireRouteError::Internal,
    };
    match rng.gen_range(0..6u64) {
        0 => Reply::Route {
            id,
            outcome: outcome(&mut rng),
        },
        1 => Reply::Batch {
            id,
            items: (0..rng.gen_range(0..16u64))
                .map(|_| {
                    if rng.gen_range(0..2u64) == 0 {
                        Ok(outcome(&mut rng))
                    } else {
                        Err(route_error(&mut rng))
                    }
                })
                .collect(),
        },
        2 => Reply::Error {
            id,
            error: route_error(&mut rng),
        },
        3 => Reply::Reject {
            id,
            reason: [
                RejectReason::Saturated,
                RejectReason::BatchTooLarge,
                RejectReason::Draining,
                RejectReason::BadVersion,
                RejectReason::BadOpcode,
                RejectReason::Malformed,
            ][rng.gen_range(0..6u64) as usize],
        },
        4 => Reply::MaskAck {
            id,
            incremental: rng.gen_range(0..2u64) == 1,
            retained: rng.next_u64(),
            dropped: rng.next_u64(),
            epoch: rng.next_u64(),
        },
        _ => Reply::InfoAck {
            id,
            servers: rng.next_u64(),
            shards: rng.next_u32(),
            epoch: rng.next_u64(),
            max_inflight: rng.next_u32(),
        },
    }
}

/// Encodes and splits one frame, returning the payload bytes.
fn payload_of_req(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    req.encode(&mut buf);
    let (range, consumed) = split_frame(&buf, DEFAULT_MAX_FRAME)
        .expect("valid prefix")
        .expect("complete frame");
    assert_eq!(consumed, buf.len(), "encode produced exactly one frame");
    buf[range].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requests survive encode → split → decode bit-exactly.
    #[test]
    fn request_roundtrip(seed in any::<u64>()) {
        let req = sample_request(seed);
        let payload = payload_of_req(&req);
        prop_assert_eq!(Request::decode(&payload), Ok(req));
    }

    /// Replies survive encode → split → decode bit-exactly.
    #[test]
    fn reply_roundtrip(seed in any::<u64>()) {
        let reply = sample_reply(seed);
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        let (range, consumed) = split_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(Reply::decode(&buf[range]), Ok(reply));
    }

    /// Every strict prefix of a valid frame is `Ok(None)` from the
    /// splitter (read more) — truncation is never an error at the stream
    /// layer and never a decode attempt on partial bytes.
    #[test]
    fn truncated_frames_wait_for_more(seed in any::<u64>(), cut_seed in any::<u64>()) {
        let req = sample_request(seed);
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let cut = (cut_seed as usize) % buf.len();
        prop_assert_eq!(split_frame(&buf[..cut], DEFAULT_MAX_FRAME), Ok(None));
    }

    /// Every strict prefix of a frame *payload* (header + body) fails
    /// decoding with a typed error, never a panic.
    #[test]
    fn truncated_payloads_decode_to_errors(seed in any::<u64>(), cut_seed in any::<u64>()) {
        let payload = payload_of_req(&sample_request(seed));
        let cut = (cut_seed as usize) % payload.len();
        prop_assert!(Request::decode(&payload[..cut]).is_err());
    }

    /// Payloads with trailing garbage are rejected: decoding is total.
    /// (Most shapes report "trailing bytes"; MaskPush catches the size
    /// mismatch earlier via its count-sum check — either way, Malformed.)
    #[test]
    fn trailing_bytes_are_rejected(seed in any::<u64>(), junk in any::<u8>()) {
        let mut payload = payload_of_req(&sample_request(seed));
        payload.push(junk);
        prop_assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    /// A frame whose version byte is anything but [`WIRE_VERSION`] is
    /// refused before the opcode is even looked at.
    #[test]
    fn wrong_version_is_rejected(seed in any::<u64>(), version in any::<u8>()) {
        prop_assume!(version != WIRE_VERSION);
        let mut payload = payload_of_req(&sample_request(seed));
        payload[0] = version;
        prop_assert_eq!(Request::decode(&payload), Err(WireError::BadVersion(version)));
        prop_assert_eq!(Reply::decode(&payload), Err(WireError::BadVersion(version)));
    }

    /// A length prefix beyond the configured cap is [`WireError::Oversized`]
    /// no matter what follows; below the header floor it is `Undersized`.
    #[test]
    fn bad_length_prefixes_are_fatal(len in any::<u32>()) {
        let max = 4096usize;
        let mut buf = (len as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        match split_frame(&buf, max) {
            Ok(_) => prop_assert!(
                (len as usize) >= HEADER_BYTES && (len as usize) <= max,
                "accepted len {len}"
            ),
            Err(WireError::Undersized { len: l }) => {
                prop_assert!(l < HEADER_BYTES);
            }
            Err(WireError::Oversized { len: l, max: m }) => {
                prop_assert!(l > m);
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// Arbitrary bytes never panic the decoders — worst case is a typed
    /// error. (The interesting shapes are header-valid with garbage
    /// bodies, so force the version byte on half the cases.)
    #[test]
    fn random_bytes_never_panic(seed in any::<u64>(), force_version in any::<bool>()) {
        use rand::{Rng, RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..64u64) as usize;
        let mut bytes: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
        if force_version && !bytes.is_empty() {
            bytes[0] = WIRE_VERSION;
        }
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
        let _ = split_frame(&bytes, DEFAULT_MAX_FRAME);
    }

    /// A lying count field (more elements promised than bytes present)
    /// is refused without a proportional allocation.
    #[test]
    fn lying_counts_are_rejected(count in any::<u32>()) {
        prop_assume!(count as usize > 0);
        // Hand-build a BATCH frame claiming `count` pairs but carrying none.
        let mut payload = vec![WIRE_VERSION, 0x02];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&count.to_le_bytes());
        prop_assert!(Request::decode(&payload).is_err());
    }
}

/// Back-to-back frames in one buffer split cleanly, in order.
#[test]
fn split_walks_concatenated_frames() {
    let reqs = [sample_request(11), sample_request(22), sample_request(33)];
    let mut buf = Vec::new();
    for r in &reqs {
        r.encode(&mut buf);
    }
    let mut at = 0usize;
    for want in &reqs {
        let (range, used) = split_frame(&buf[at..], DEFAULT_MAX_FRAME)
            .unwrap()
            .expect("frame present");
        let got = Request::decode(&buf[at..][range]).unwrap();
        assert_eq!(&got, want);
        at += used;
    }
    assert_eq!(at, buf.len());
    assert_eq!(split_frame(&buf[at..], DEFAULT_MAX_FRAME), Ok(None));
}

/// The splitter hands out exactly the `len`-counted payload.
#[test]
fn split_range_is_len_counted() {
    let req = Request::Info { id: 9 };
    let mut buf = Vec::new();
    req.encode(&mut buf);
    let (range, used) = split_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert_eq!(range.start, LEN_BYTES);
    assert_eq!(used, buf.len());
    assert_eq!(range.end - range.start, HEADER_BYTES); // INFO has no body
}
