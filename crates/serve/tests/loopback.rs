//! Loopback integration tests: the determinism contract, graceful
//! shutdown, typed backpressure, and the mask-epoch consistency
//! regression pinned to the on-demand routers.

use abccc::{Abccc, AbcccParams, DigitRouter, ResilientRouter, RetryBudget, Router};
use dcn_fib::RouteService;
use dcn_serve::loadgen::{run_loopback, LoadgenConfig};
use dcn_serve::wire::{RejectReason, Reply, Request};
use dcn_serve::{RouteServer, ServeClient, ServeConfig};
use netgraph::{FaultMask, NodeId, Topology};
use std::time::Duration;

fn topo(n: u32, k: u32, h: u32) -> Abccc {
    Abccc::new(AbcccParams::new(n, k, h).expect("params")).expect("topology")
}

fn service(shards: usize) -> RouteService {
    RouteService::compile(topo(3, 2, 2), shards).expect("service")
}

/// The harness config: `window × batch ≤ max_inflight`, so backpressure
/// never fires and the digest is schedule-independent.
fn harness_cfg(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        connections: 3,
        frames: 64,
        batch: 8,
        window: 4,
        seed,
    }
}

/// The determinism contract: a fixed-seed loadgen run produces a
/// byte-identical reply digest on every run and at every shard count —
/// server thread interleavings, frame coalescing, and the sharded batch
/// path are all invisible in the reply bytes.
#[test]
fn digest_is_identical_across_runs_and_shards() {
    let mut digests = Vec::new();
    for shards in [1usize, 1, 4, 8] {
        let (report, drain) =
            run_loopback(service(shards), ServeConfig::default(), &harness_cfg(42))
                .expect("loopback run");
        assert_eq!(report.rejects, 0, "harness must never saturate");
        assert_eq!(
            report.ok + report.route_errors,
            report.requests,
            "every item answered"
        );
        assert_eq!(drain.connections, report.connections);
        digests.push(report.digest);
    }
    assert_eq!(digests[0], digests[1], "same seed, same shards");
    assert_eq!(digests[0], digests[2], "1 shard vs 4 shards");
    assert_eq!(digests[0], digests[3], "1 shard vs 8 shards");
}

/// Different seeds exercise different pair streams — the digest must
/// move, or it is not hashing anything meaningful.
#[test]
fn digest_tracks_the_seed() {
    let (a, _) = run_loopback(service(2), ServeConfig::default(), &harness_cfg(1)).unwrap();
    let (b, _) = run_loopback(service(2), ServeConfig::default(), &harness_cfg(2)).unwrap();
    assert_ne!(a.digest, b.digest);
}

/// Graceful shutdown joins every connection thread and reports the
/// count; a second server can immediately rebind an ephemeral port.
#[test]
fn shutdown_drains_all_connections() {
    let server = RouteServer::spawn(service(2), ServeConfig::default()).expect("spawn");
    let addr = server.addr();
    let mut clients: Vec<ServeClient> = (0..5)
        .map(|_| ServeClient::connect(addr).expect("connect"))
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        match c.query(i as u32, (i + 1) as u32).expect("reply") {
            Reply::Route { .. } | Reply::Error { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let drain = server.shutdown();
    assert_eq!(drain.connections, 5);
    assert_eq!(drain.epoch, 0);
}

/// Backpressure is typed, not silent: a frame pushing a group past
/// `max_inflight` gets `Saturated`, a single over-sized batch frame gets
/// `BatchTooLarge`, and the connection stays usable afterwards.
#[test]
fn saturation_rejects_are_typed_and_survivable() {
    let cfg = ServeConfig {
        max_inflight: 8,
        max_batch: 8,
        ..ServeConfig::default()
    };
    let server = RouteServer::spawn(service(2), cfg).expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // One frame whose batch alone exceeds the per-frame cap.
    match client.query_batch(vec![(0, 1); 9]).expect("reply") {
        Reply::Reject { reason, .. } => assert_eq!(reason, RejectReason::BatchTooLarge),
        other => panic!("expected BatchTooLarge, got {other:?}"),
    }

    // A pipelined burst of 3 × 4-item frames against a budget of 8: the
    // first two frames are admitted whole, the third is rejected whole.
    let ids: Vec<u64> = (0..3).map(|_| client.next_id()).collect();
    for &id in &ids {
        client
            .send_frame(&Request::QueryBatch {
                id,
                pairs: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            })
            .expect("send");
    }
    let mut rejected = 0;
    let mut answered = 0;
    for _ in 0..3 {
        match client.recv_reply().expect("reply").0 {
            Reply::Batch { items, .. } => {
                assert_eq!(items.len(), 4);
                answered += 1;
            }
            Reply::Reject { reason, .. } => {
                assert_eq!(reason, RejectReason::Saturated);
                rejected += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    // Coalescing is timing-dependent (the server may see 1, 2 or 3 frames
    // per group), but a group can never admit more than 8 items — so at
    // most two of the three frames land in one group, and any group that
    // sees all three must reject the third.
    assert_eq!(rejected + answered, 3);

    // The connection survives rejection: a plain query still answers.
    match client.query(0, 5).expect("reply") {
        Reply::Route { .. } => {}
        other => panic!("unexpected reply {other:?}"),
    }
    server.shutdown();
}

/// A wrong-version frame draws a typed `BadVersion` reject and closes
/// the connection (nothing else the peer sends is safe to interpret).
#[test]
fn wrong_version_rejects_then_closes() {
    use dcn_serve::wire::{split_frame, DEFAULT_MAX_FRAME};
    use std::io::{Read, Write};
    let server = RouteServer::spawn(service(1), ServeConfig::default()).expect("spawn");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");

    // Hand-build a frame with version 9: [len][ver][op][id][src][dst].
    let mut body = vec![9u8, 0x01];
    body.extend_from_slice(&7u64.to_le_bytes());
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&1u32.to_le_bytes());
    let mut raw = (body.len() as u32).to_le_bytes().to_vec();
    raw.extend_from_slice(&body);
    stream.write_all(&raw).expect("send raw");

    // Read to EOF: the server answers with one Reject frame then closes.
    let mut rbuf = Vec::new();
    stream.read_to_end(&mut rbuf).expect("read reply");
    let (range, used) = split_frame(&rbuf, DEFAULT_MAX_FRAME)
        .expect("valid prefix")
        .expect("one reply frame");
    assert_eq!(used, rbuf.len(), "exactly one reply before close");
    match Reply::decode(&rbuf[range]).expect("decode") {
        Reply::Reject { id, reason } => {
            assert_eq!(id, 7, "id recovered from the malformed frame");
            assert_eq!(reason, RejectReason::BadVersion);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    server.shutdown();
}

/// The epoch-consistency regression (the bug class this server must not
/// have): a batch admitted before a mask push answers **entirely** from
/// the pre-mask epoch, and every frame after the ack answers entirely
/// from the post-mask epoch — never a mix. Pinned to the on-demand
/// routers: healthy answers equal `DigitRouter::shortest()`, faulted
/// answers equal `ResilientRouter::route_explained` under the same mask.
#[test]
fn batch_before_mask_push_answers_from_one_epoch() {
    let t = topo(3, 2, 2);
    let servers = t.params().server_count() as u32;
    // Fail one server that detours many routes.
    let failed = NodeId(1);
    let mut mask = FaultMask::new(t.network());
    mask.fail_node(failed);

    let digit = DigitRouter::shortest();
    let resilient = ResilientRouter::new(RetryBudget::default());
    let pairs: Vec<(u32, u32)> = (0..servers)
        .map(|s| (s, (s + servers / 2) % servers))
        .collect();
    let healthy: Vec<_> = pairs
        .iter()
        .map(|&(s, d)| digit.route(&t, NodeId(s), NodeId(d), None))
        .collect();
    let faulted: Vec<_> = pairs
        .iter()
        .map(|&(s, d)| resilient.route_explained(&t, NodeId(s), NodeId(d), Some(&mask)))
        .collect();
    assert_ne!(healthy, faulted, "mask must actually change answers");

    let matches =
        |items: &[Result<dcn_serve::wire::WireOutcome, dcn_serve::wire::WireRouteError>],
         plane: &[Result<abccc::RouteOutcome, netgraph::RouteError>]|
         -> bool {
            items
                .iter()
                .zip(plane)
                .all(|(got, want)| match (got, want) {
                    (Ok(g), Ok(w)) => g == &dcn_serve::wire::WireOutcome::from_outcome(w),
                    (Err(g), Err(w)) => g == &dcn_serve::wire::WireRouteError::from_error(w),
                    _ => false,
                })
        };

    for round in 0..6u64 {
        let server = RouteServer::spawn(
            RouteService::compile(topo(3, 2, 2), 4).expect("service"),
            ServeConfig::default(),
        )
        .expect("spawn");
        let mut client = ServeClient::connect(server.addr()).expect("connect");

        // One pipelined write: batch, mask push, batch. The server may
        // coalesce these any way timing falls; the contract is that each
        // batch answers wholly from whichever epoch admitted it.
        let id_pre = client.next_id();
        let id_mask = client.next_id();
        let id_post = client.next_id();
        client
            .send_frame(&Request::QueryBatch {
                id: id_pre,
                pairs: pairs.clone(),
            })
            .expect("send");
        if round % 2 == 1 {
            // Let the first batch land alone on some rounds so both
            // coalescing shapes are exercised.
            std::thread::sleep(Duration::from_millis(2));
        }
        client
            .send_frame(&Request::MaskPush {
                id: id_mask,
                clear: false,
                nodes: vec![failed.0],
                links: vec![],
            })
            .expect("send");
        client
            .send_frame(&Request::QueryBatch {
                id: id_post,
                pairs: pairs.clone(),
            })
            .expect("send");

        let mut new_epoch = 0;
        for _ in 0..3 {
            let (reply, _) = client.recv_reply().expect("reply");
            match reply {
                Reply::Batch { id, items } if id == id_pre => {
                    assert!(
                        matches(&items, &healthy),
                        "round {round}: pre-mask batch must answer wholly healthy"
                    );
                }
                Reply::Batch { id, items } if id == id_post => {
                    assert!(
                        matches(&items, &faulted),
                        "round {round}: post-mask batch must answer wholly faulted"
                    );
                }
                Reply::MaskAck { id, epoch, .. } => {
                    assert_eq!(id, id_mask);
                    new_epoch = epoch;
                }
                other => panic!("round {round}: unexpected reply {other:?}"),
            }
        }
        assert_eq!(new_epoch, 1);
        let drain = server.shutdown();
        assert_eq!(drain.epoch, 1);
    }
}

/// Mask pushes round-trip the invalidation report and clear restores the
/// healthy plane; out-of-range ids draw a Malformed reject without
/// touching the installed mask.
#[test]
fn mask_push_acks_and_validates() {
    let t = topo(3, 2, 2);
    let server = RouteServer::spawn(service(2), ServeConfig::default()).expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    match client.push_mask(vec![0], vec![]).expect("reply") {
        Reply::MaskAck { epoch, .. } => assert_eq!(epoch, 1),
        other => panic!("unexpected reply {other:?}"),
    }
    // Out-of-range node id: rejected, epoch unmoved.
    let bad = t.network().node_count() as u32;
    match client.push_mask(vec![bad], vec![]).expect("reply") {
        Reply::Reject { reason, .. } => assert_eq!(reason, RejectReason::Malformed),
        other => panic!("unexpected reply {other:?}"),
    }
    match client.info().expect("reply") {
        Reply::InfoAck { epoch, shards, .. } => {
            assert_eq!(epoch, 1);
            assert_eq!(shards, 2);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match client.clear_mask().expect("reply") {
        Reply::MaskAck { epoch, .. } => assert_eq!(epoch, 2),
        other => panic!("unexpected reply {other:?}"),
    }
    server.shutdown();
}

/// VLB queries flow through the server and match the healthy plane's
/// obliviousness: same seed, same pair, same route every time.
#[test]
fn vlb_queries_are_seed_deterministic() {
    let server = RouteServer::spawn(service(2), ServeConfig::default()).expect("spawn");
    let mut a = ServeClient::connect(server.addr()).expect("connect");
    let mut b = ServeClient::connect(server.addr()).expect("connect");
    for (s, d) in [(0u32, 9u32), (3, 14), (7, 2)] {
        let id_a = a.next_id();
        let ra = a
            .call(&Request::QueryVlb {
                id: id_a,
                seed: 77,
                src: s,
                dst: d,
            })
            .expect("reply");
        let id_b = b.next_id();
        let rb = b
            .call(&Request::QueryVlb {
                id: id_b,
                seed: 77,
                src: s,
                dst: d,
            })
            .expect("reply");
        match (ra, rb) {
            (Reply::Route { outcome: oa, .. }, Reply::Route { outcome: ob, .. }) => {
                assert_eq!(oa, ob);
            }
            other => panic!("unexpected replies {other:?}"),
        }
    }
    server.shutdown();
}
