//! # dcn-serve — serving the compiled FIB over the network
//!
//! `dcn-fib`'s [`RouteService`](dcn_fib::RouteService) answers a route
//! query in tens of nanoseconds, but only in-process. This crate puts a
//! real server in front of it, dependency-free:
//!
//! * [`wire`] — a compact, versioned, length-prefixed binary protocol:
//!   single, batched and VLB query ops, a fault-mask push op that drives
//!   the service's incremental invalidation, and an info op. Decoding is
//!   strict and total (typed [`WireError`](wire::WireError)s, never a
//!   panic) — pinned by property tests.
//! * [`RouteServer`] — a TCP front end: per-connection framing threads,
//!   opportunistic coalescing of pipelined frames into **one**
//!   [`query_batch`](dcn_fib::RouteService::query_batch) execution (the
//!   sharded thread-per-core path), per-connection in-flight budgets
//!   with typed `REJECT` replies, and graceful drain on shutdown. A
//!   batch executes under one mask epoch even while a mask push is
//!   waiting.
//! * [`ServeClient`] — a small blocking client with pipelining
//!   primitives.
//! * [`loadgen`] — the built-in loopback load generator: fixed seed ⇒
//!   byte-identical reply digest at any shard, connection or thread
//!   count. The CI determinism gate and the `route_server` saturation
//!   experiment share this one code path.
//!
//! Telemetry: `serve.connections`, `serve.requests`, `serve.rejects`,
//! `serve.mask_pushes` counters; `serve.batch_size` and `serve.rtt_ns`
//! (HDR, p50/p99/p999) histograms; `serve.group_ns` execution timer.
//!
//! ## Example
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use dcn_fib::RouteService;
//! use dcn_serve::{RouteServer, ServeClient, ServeConfig};
//!
//! let topo = Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap();
//! let svc = RouteService::compile(topo, 4).unwrap();
//! let server = RouteServer::spawn(svc, ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(server.addr()).unwrap();
//! match client.query(0, 7).unwrap() {
//!     dcn_serve::wire::Reply::Route { outcome, .. } => {
//!         assert_eq!(outcome.nodes.first(), Some(&0));
//!         assert_eq!(outcome.nodes.last(), Some(&7));
//!     }
//!     other => panic!("unexpected reply {other:?}"),
//! }
//! let drained = server.shutdown();
//! assert_eq!(drained.connections, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod loadgen;
mod server;
pub mod wire;

pub use client::{ServeClient, ServeError};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{DrainReport, RouteServer, ServeConfig};
