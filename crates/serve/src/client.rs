//! A small blocking client for the `dcn-serve` wire protocol.
//!
//! [`ServeClient`] offers one-shot request/reply calls plus the raw
//! `send_frame`/`recv_reply` primitives the load generator uses for
//! windowed pipelining.

use crate::wire::{split_frame, Reply, Request, WireError, DEFAULT_MAX_FRAME};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Anything that can go wrong talking to a route server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Wire(WireError),
    /// The peer closed the connection mid-reply.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// A blocking connection to a route server.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_id: u64,
    max_frame: usize,
}

impl ServeClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            rbuf: Vec::with_capacity(16 * 1024),
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// A fresh monotonically increasing frame id.
    pub fn next_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Encodes and sends one request frame.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_frame(&mut self, req: &Request) -> Result<(), ServeError> {
        let mut buf = Vec::with_capacity(64);
        req.encode(&mut buf);
        self.stream.write_all(&buf)?;
        Ok(())
    }

    /// Reads the next reply frame, returning its decoded form plus the
    /// raw payload bytes (version through body — what the deterministic
    /// loadgen digest hashes).
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] on EOF between frames, [`WireError`] on
    /// malformed or truncated bytes.
    pub fn recv_reply(&mut self) -> Result<(Reply, Vec<u8>), ServeError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match split_frame(&self.rbuf, self.max_frame)? {
                Some((range, consumed)) => {
                    let payload = self.rbuf[range].to_vec();
                    self.rbuf.drain(..consumed);
                    let reply = Reply::decode(&payload)?;
                    return Ok((reply, payload));
                }
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return if self.rbuf.is_empty() {
                            Err(ServeError::Closed)
                        } else {
                            Err(ServeError::Wire(WireError::Truncated {
                                promised: self.rbuf.len() + 1,
                                have: self.rbuf.len(),
                            }))
                        };
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// One request, one reply.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::send_frame`] / [`Self::recv_reply`] failures.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ServeError> {
        self.send_frame(req)?;
        Ok(self.recv_reply()?.0)
    }

    /// Routes one src→dst pair.
    ///
    /// # Errors
    ///
    /// Transport failures; a routing failure or reject comes back as a
    /// normal [`Reply`].
    pub fn query(&mut self, src: u32, dst: u32) -> Result<Reply, ServeError> {
        let id = self.next_id();
        self.call(&Request::Query { id, src, dst })
    }

    /// Routes a batch of pairs in one frame.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn query_batch(&mut self, pairs: Vec<(u32, u32)>) -> Result<Reply, ServeError> {
        let id = self.next_id();
        self.call(&Request::QueryBatch { id, pairs })
    }

    /// Pushes a fault mask (failed node + link id lists).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn push_mask(&mut self, nodes: Vec<u32>, links: Vec<u32>) -> Result<Reply, ServeError> {
        let id = self.next_id();
        self.call(&Request::MaskPush {
            id,
            clear: false,
            nodes,
            links,
        })
    }

    /// Clears all faults on the server.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn clear_mask(&mut self) -> Result<Reply, ServeError> {
        let id = self.next_id();
        self.call(&Request::MaskPush {
            id,
            clear: true,
            nodes: Vec::new(),
            links: Vec::new(),
        })
    }

    /// Asks for server facts.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn info(&mut self) -> Result<Reply, ServeError> {
        let id = self.next_id();
        self.call(&Request::Info { id })
    }
}
