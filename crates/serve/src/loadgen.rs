//! The built-in loopback load generator.
//!
//! One code path serves two masters: the deterministic CI harness (fixed
//! seed ⇒ byte-identical reply digest, at any shard count) and the
//! `route_server` saturation experiment (same generator, bigger knobs,
//! wall-clock throughput and RTT quantiles on top). Each connection is
//! one client thread running a windowed pipeline of query frames whose
//! pairs come from a per-connection SplitMix64-derived RNG stream — the
//! digest folds per-connection FNV hashes in connection-index order, so
//! the result is independent of scheduling, shard count, and how the
//! server happened to coalesce frames.

use crate::client::{ServeClient, ServeError};
use crate::server::{DrainReport, RouteServer, ServeConfig};
use crate::wire::{Reply, Request};
use dcn_fib::RouteService;
use dcn_telemetry::HdrHistogram;
use serde::Serialize;
use std::net::SocketAddr;
use std::time::Instant;

/// Shape of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Query frames each connection sends.
    pub frames: usize,
    /// Pairs per frame (1 sends single-query frames, >1 batch frames).
    pub batch: usize,
    /// Outstanding frames per connection. Keep `window × batch` within
    /// the server's `max_inflight` and no request is ever rejected —
    /// which is what the deterministic harness relies on.
    pub window: usize,
    /// Base seed; connection `c` draws from `mix(seed, c)`.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 4,
            frames: 256,
            batch: 16,
            window: 8,
            seed: 1,
        }
    }
}

/// What a load-generation run measured.
///
/// `digest`, the counts and the config echo are deterministic for a
/// fixed seed; the throughput and RTT figures are wall-clock and belong
/// in stdout reports only.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Frames sent per connection.
    pub frames: usize,
    /// Pairs per frame.
    pub batch: usize,
    /// Pipeline window (frames).
    pub window: usize,
    /// Base seed.
    pub seed: u64,
    /// Route-query items sent in total.
    pub requests: u64,
    /// Items answered with a route.
    pub ok: u64,
    /// Items answered with a typed route error.
    pub route_errors: u64,
    /// Frames refused by backpressure.
    pub rejects: u64,
    /// FNV-1a digest over every reply payload, folded per connection in
    /// index order — byte-identical across runs, shard counts and thread
    /// interleavings for a fixed seed.
    pub digest: String,
    /// Wall-clock duration of the generation phase, nanoseconds.
    pub elapsed_ns: u64,
    /// Items per second ([`LoadgenReport::requests`] ÷ elapsed).
    pub lookups_per_sec: f64,
    /// Client-measured per-frame round trip, p50, nanoseconds.
    pub rtt_p50_ns: u64,
    /// Client-measured per-frame round trip, p99, nanoseconds.
    pub rtt_p99_ns: u64,
    /// Client-measured per-frame round trip, p999, nanoseconds.
    pub rtt_p999_ns: u64,
}

/// Per-connection tallies folded into the report.
struct ConnResult {
    ok: u64,
    route_errors: u64,
    rejects: u64,
    digest: u64,
    rtt: HdrHistogram,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// SplitMix64 — same mixer the experiment registry uses for per-point
/// seeds, reused here for per-connection streams.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives `cfg` against an already-running server at `addr` whose FIB
/// covers `servers` servers.
///
/// # Errors
///
/// Propagates the first connection's transport failure.
pub fn run_against(
    addr: SocketAddr,
    servers: u64,
    cfg: &LoadgenConfig,
) -> Result<LoadgenReport, ServeError> {
    let _span = dcn_telemetry::span!("serve.loadgen");
    let connections = cfg.connections.max(1);
    let window = cfg.window.max(1);
    let t0 = Instant::now();
    let results: Vec<Result<ConnResult, ServeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| scope.spawn(move || drive_connection(addr, servers, cfg, window, c as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let mut ok = 0u64;
    let mut route_errors = 0u64;
    let mut rejects = 0u64;
    let mut digest = FNV_OFFSET;
    let mut rtt = HdrHistogram::new();
    for r in results {
        let r = r?;
        ok += r.ok;
        route_errors += r.route_errors;
        rejects += r.rejects;
        fnv(&mut digest, &r.digest.to_le_bytes());
        rtt.merge(&r.rtt);
    }
    let requests = (connections * cfg.frames * cfg.batch.max(1)) as u64;
    Ok(LoadgenReport {
        connections,
        frames: cfg.frames,
        batch: cfg.batch.max(1),
        window,
        seed: cfg.seed,
        requests,
        ok,
        route_errors,
        rejects,
        digest: format!("{digest:#018x}"),
        elapsed_ns,
        lookups_per_sec: if elapsed_ns == 0 {
            0.0
        } else {
            requests as f64 / (elapsed_ns as f64 / 1e9)
        },
        rtt_p50_ns: rtt.percentile(0.50),
        rtt_p99_ns: rtt.percentile(0.99),
        rtt_p999_ns: rtt.percentile(0.999),
    })
}

/// Spawns a loopback server over `service`, runs the generator against
/// it, then drains the server. The one-call entry point shared by the CI
/// harness, `abccc-cli loadgen`, and the `route_server` experiment.
///
/// # Errors
///
/// Bind failures and client transport failures.
pub fn run_loopback(
    service: RouteService,
    serve_cfg: ServeConfig,
    cfg: &LoadgenConfig,
) -> Result<(LoadgenReport, DrainReport), ServeError> {
    let servers = u64::from(service.table().servers());
    let server = RouteServer::spawn(service, serve_cfg)?;
    let report = run_against(server.addr(), servers, cfg);
    let drain = server.shutdown();
    Ok((report?, drain))
}

/// One connection's windowed pipeline.
fn drive_connection(
    addr: SocketAddr,
    servers: u64,
    cfg: &LoadgenConfig,
    window: usize,
    conn_index: u64,
) -> Result<ConnResult, ServeError> {
    use rand::{Rng, SeedableRng};
    let mut client = ServeClient::connect(addr)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(mix(cfg.seed, conn_index));
    let batch = cfg.batch.max(1);
    let mut res = ConnResult {
        ok: 0,
        route_errors: 0,
        rejects: 0,
        digest: FNV_OFFSET,
        rtt: HdrHistogram::new(),
    };
    let mut sent = 0usize;
    let mut received = 0usize;
    // Send timestamps for outstanding frames, in send order (replies come
    // back in order per connection).
    let mut sent_at: std::collections::VecDeque<Instant> =
        std::collections::VecDeque::with_capacity(window);
    while received < cfg.frames {
        while sent < cfg.frames && sent - received < window {
            let id = client.next_id();
            let req = if batch == 1 {
                Request::Query {
                    id,
                    src: rng.gen_range(0..servers) as u32,
                    dst: rng.gen_range(0..servers) as u32,
                }
            } else {
                Request::QueryBatch {
                    id,
                    pairs: (0..batch)
                        .map(|_| {
                            (
                                rng.gen_range(0..servers) as u32,
                                rng.gen_range(0..servers) as u32,
                            )
                        })
                        .collect(),
                }
            };
            sent_at.push_back(Instant::now());
            client.send_frame(&req)?;
            sent += 1;
        }
        let (reply, payload) = client.recv_reply()?;
        let rtt_ns = sent_at
            .pop_front()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        res.rtt.record(rtt_ns);
        dcn_telemetry::histogram!("serve.rtt_ns").record(rtt_ns);
        fnv(&mut res.digest, &payload);
        match reply {
            Reply::Route { .. } => res.ok += 1,
            Reply::Error { .. } => res.route_errors += 1,
            Reply::Batch { items, .. } => {
                for item in &items {
                    match item {
                        Ok(_) => res.ok += 1,
                        Err(_) => res.route_errors += 1,
                    }
                }
            }
            Reply::Reject { .. } => res.rejects += 1,
            Reply::MaskAck { .. } | Reply::InfoAck { .. } => {}
        }
        received += 1;
    }
    Ok(res)
}
