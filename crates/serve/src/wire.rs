//! The `dcn-serve` wire protocol: compact length-prefixed binary frames.
//!
//! Every frame on the socket is
//!
//! ```text
//! [len: u32 LE] [version: u8] [opcode: u8] [id: u64 LE] [body …]
//! ```
//!
//! where `len` counts everything after itself (so `len ≥ 10`, the header
//! bytes) and is bounded by the peer's configured maximum frame size.
//! Requests and replies share the framing; opcodes with the high bit set
//! are replies. The `id` is chosen by the client and echoed verbatim in
//! the reply, which is what makes pipelining work: a client may have many
//! frames outstanding and match replies by id (the server answers each
//! frame in arrival order, so ids also come back in order per
//! connection).
//!
//! Decoding is strict and total: every byte of a frame body must be
//! consumed, every count field is bounded by the bytes that actually
//! follow it, and malformed input of any shape yields a typed
//! [`WireError`] — never a panic and never an allocation proportional to
//! a lying length field. The property tests in `tests/codec_props.rs`
//! pin round-tripping and the rejection behavior.

/// Protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of the fixed header after the length prefix (version + opcode +
/// id).
pub const HEADER_BYTES: usize = 10;

/// Bytes of the length prefix itself.
pub const LEN_BYTES: usize = 4;

/// Default cap on `len` (one frame's post-prefix bytes): 1 MiB.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Request opcodes (high bit clear).
mod op {
    pub const QUERY: u8 = 0x01;
    pub const BATCH: u8 = 0x02;
    pub const VLB: u8 = 0x03;
    pub const MASK: u8 = 0x04;
    pub const INFO: u8 = 0x05;
    pub const ROUTE_OK: u8 = 0x81;
    pub const BATCH_OK: u8 = 0x82;
    pub const ERROR: u8 = 0x83;
    pub const REJECT: u8 = 0x84;
    pub const MASK_ACK: u8 = 0x85;
    pub const INFO_ACK: u8 = 0x86;
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does (streaming: read more).
    Incomplete {
        /// Total bytes the frame needs (prefix included).
        need: usize,
    },
    /// The peer closed mid-frame: the length prefix promised more bytes
    /// than ever arrived.
    Truncated {
        /// Bytes the length prefix promised.
        promised: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length prefix exceeds the configured maximum frame size.
    Oversized {
        /// The declared post-prefix length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The length prefix is smaller than the fixed header.
    Undersized {
        /// The declared post-prefix length.
        len: usize,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown opcode.
    BadOpcode(u8),
    /// The body does not parse: wrong size, lying count field, trailing
    /// bytes, or an out-of-range tag.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Incomplete { need } => write!(f, "incomplete frame (need {need} bytes)"),
            WireError::Truncated { promised, have } => {
                write!(f, "truncated frame ({have} of {promised} promised bytes)")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame ({len} bytes, max {max})")
            }
            WireError::Undersized { len } => write!(f, "undersized frame ({len} bytes)"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A route answer on the wire (the serializable core of
/// [`RouteOutcome`](abccc::RouteOutcome)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOutcome {
    /// Escalation tier, `0 = primary … 4 = bfs`
    /// ([`RouteTier`](abccc::RouteTier) order).
    pub tier: u8,
    /// Candidate routes examined.
    pub attempts: u32,
    /// Deterministic backoff units accrued.
    pub backoff_units: u64,
    /// The route's node ids, endpoints included.
    pub nodes: Vec<u32>,
}

impl WireOutcome {
    /// Lowers a router outcome onto the wire.
    pub fn from_outcome(o: &abccc::RouteOutcome) -> WireOutcome {
        WireOutcome {
            tier: match o.tier {
                abccc::RouteTier::Primary => 0,
                abccc::RouteTier::Deterministic => 1,
                abccc::RouteTier::RandomPerm => 2,
                abccc::RouteTier::Proxy => 3,
                abccc::RouteTier::Bfs => 4,
            },
            attempts: o.attempts,
            backoff_units: o.backoff_units,
            nodes: o.route.nodes().iter().map(|n| n.0).collect(),
        }
    }
}

/// A route failure on the wire (the serializable core of
/// [`RouteError`](netgraph::RouteError)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireRouteError {
    /// An endpoint id does not name a server.
    NotAServer(u32),
    /// No path exists between the endpoints under the installed mask.
    Unreachable {
        /// Source server.
        src: u32,
        /// Destination server.
        dst: u32,
    },
    /// The fallback ladder gave up.
    GaveUp {
        /// Source server.
        src: u32,
        /// Destination server.
        dst: u32,
        /// Detour attempts made.
        attempts: u32,
    },
    /// A server-side failure that does not map to the routing contract.
    Internal,
}

impl WireRouteError {
    /// Lowers a router error onto the wire.
    pub fn from_error(e: &netgraph::RouteError) -> WireRouteError {
        match e {
            netgraph::RouteError::NotAServer(n) => WireRouteError::NotAServer(n.0),
            netgraph::RouteError::Unreachable { src, dst } => WireRouteError::Unreachable {
                src: src.0,
                dst: dst.0,
            },
            netgraph::RouteError::GaveUp { src, dst, attempts } => WireRouteError::GaveUp {
                src: src.0,
                dst: dst.0,
                attempts: *attempts as u32,
            },
            _ => WireRouteError::Internal,
        }
    }
}

/// Why the server refused to execute a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The connection's in-flight budget is exhausted; retry later.
    Saturated,
    /// A single frame's batch exceeds the server's per-frame item cap.
    BatchTooLarge,
    /// The server is draining for shutdown.
    Draining,
    /// The frame's version byte is unsupported (connection-fatal).
    BadVersion,
    /// The frame's opcode is unknown.
    BadOpcode,
    /// The frame body did not decode.
    Malformed,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::Saturated => 1,
            RejectReason::BatchTooLarge => 2,
            RejectReason::Draining => 3,
            RejectReason::BadVersion => 4,
            RejectReason::BadOpcode => 5,
            RejectReason::Malformed => 6,
        }
    }

    fn parse(code: u8) -> Option<RejectReason> {
        Some(match code {
            1 => RejectReason::Saturated,
            2 => RejectReason::BatchTooLarge,
            3 => RejectReason::Draining,
            4 => RejectReason::BadVersion,
            5 => RejectReason::BadOpcode,
            6 => RejectReason::Malformed,
            _ => return None,
        })
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Saturated => "saturated",
            RejectReason::BatchTooLarge => "batch_too_large",
            RejectReason::Draining => "draining",
            RejectReason::BadVersion => "bad_version",
            RejectReason::BadOpcode => "bad_opcode",
            RejectReason::Malformed => "malformed",
        }
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// One src→dst route query.
    Query {
        /// Client-chosen id, echoed in the reply.
        id: u64,
        /// Source server id.
        src: u32,
        /// Destination server id.
        dst: u32,
    },
    /// Many queries in one frame, answered by one [`Reply::Batch`].
    QueryBatch {
        /// Client-chosen id, echoed in the reply.
        id: u64,
        /// The (src, dst) pairs, answered in order.
        pairs: Vec<(u32, u32)>,
    },
    /// A Valiant-load-balanced two-stage query.
    QueryVlb {
        /// Client-chosen id, echoed in the reply.
        id: u64,
        /// VLB seed (per-pair RNG stream derives from it).
        seed: u64,
        /// Source server id.
        src: u32,
        /// Destination server id.
        dst: u32,
    },
    /// Install (or clear) a fault mask, driving the service's incremental
    /// invalidation.
    MaskPush {
        /// Client-chosen id, echoed in the reply.
        id: u64,
        /// `true` clears all faults; the id lists are then ignored.
        clear: bool,
        /// Failed node ids.
        nodes: Vec<u32>,
        /// Failed link ids.
        links: Vec<u32>,
    },
    /// Ask for server facts (servers, shards, epoch, budget).
    Info {
        /// Client-chosen id, echoed in the reply.
        id: u64,
    },
}

impl Request {
    /// The client-chosen frame id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::QueryBatch { id, .. }
            | Request::QueryVlb { id, .. }
            | Request::MaskPush { id, .. }
            | Request::Info { id } => *id,
        }
    }

    /// Route-query items this request admits against the in-flight budget.
    pub fn items(&self) -> usize {
        match self {
            Request::Query { .. } | Request::QueryVlb { .. } => 1,
            Request::QueryBatch { pairs, .. } => pairs.len(),
            Request::MaskPush { .. } | Request::Info { .. } => 0,
        }
    }

    /// Appends the full frame (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Query { id, src, dst } => {
                let mut f = Framer::new(out, op::QUERY, *id);
                f.u32(*src);
                f.u32(*dst);
                f.finish();
            }
            Request::QueryBatch { id, pairs } => {
                let mut f = Framer::new(out, op::BATCH, *id);
                f.u32(pairs.len() as u32);
                for &(s, d) in pairs {
                    f.u32(s);
                    f.u32(d);
                }
                f.finish();
            }
            Request::QueryVlb { id, seed, src, dst } => {
                let mut f = Framer::new(out, op::VLB, *id);
                f.u64(*seed);
                f.u32(*src);
                f.u32(*dst);
                f.finish();
            }
            Request::MaskPush {
                id,
                clear,
                nodes,
                links,
            } => {
                let mut f = Framer::new(out, op::MASK, *id);
                f.u8(u8::from(*clear));
                f.u32(nodes.len() as u32);
                f.u32(links.len() as u32);
                for &n in nodes {
                    f.u32(n);
                }
                for &l in links {
                    f.u32(l);
                }
                f.finish();
            }
            Request::Info { id } => Framer::new(out, op::INFO, *id).finish(),
        }
    }

    /// Decodes a frame payload (the `len`-counted bytes: version through
    /// body).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] variant except `Incomplete`/`Oversized` (those
    /// belong to the stream splitter, [`split_frame`]).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let (opcode, id, mut b) = header(payload)?;
        let req = match opcode {
            op::QUERY => Request::Query {
                id,
                src: b.u32()?,
                dst: b.u32()?,
            },
            op::BATCH => {
                let count = b.counted(8)?;
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    pairs.push((b.u32()?, b.u32()?));
                }
                Request::QueryBatch { id, pairs }
            }
            op::VLB => Request::QueryVlb {
                id,
                seed: b.u64()?,
                src: b.u32()?,
                dst: b.u32()?,
            },
            op::MASK => {
                let clear = match b.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("mask clear flag")),
                };
                let nodes_n = b.counted(4)?;
                let links_n = b.counted(4)?;
                if nodes_n.saturating_add(links_n) * 4 != b.remaining() {
                    return Err(WireError::Malformed("mask id counts"));
                }
                let mut nodes = Vec::with_capacity(nodes_n);
                for _ in 0..nodes_n {
                    nodes.push(b.u32()?);
                }
                let mut links = Vec::with_capacity(links_n);
                for _ in 0..links_n {
                    links.push(b.u32()?);
                }
                Request::MaskPush {
                    id,
                    clear,
                    nodes,
                    links,
                }
            }
            op::INFO => Request::Info { id },
            other => return Err(WireError::BadOpcode(other)),
        };
        b.done()?;
        Ok(req)
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Answer to [`Request::Query`] / [`Request::QueryVlb`].
    Route {
        /// Echoed request id.
        id: u64,
        /// The route.
        outcome: WireOutcome,
    },
    /// Answer to [`Request::QueryBatch`]: one item per pair, in order.
    Batch {
        /// Echoed request id.
        id: u64,
        /// Per-pair outcomes.
        items: Vec<Result<WireOutcome, WireRouteError>>,
    },
    /// A route-level failure for a single-query request.
    Error {
        /// Echoed request id.
        id: u64,
        /// What went wrong.
        error: WireRouteError,
    },
    /// The server refused to execute the request (backpressure or a
    /// protocol violation).
    Reject {
        /// Echoed request id (0 when the id could not be parsed).
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Answer to [`Request::MaskPush`].
    MaskAck {
        /// Echoed request id.
        id: u64,
        /// Whether invalidation was incremental (mask covered the old one).
        incremental: bool,
        /// Patches kept.
        retained: u64,
        /// Patches dropped.
        dropped: u64,
        /// The new mask epoch.
        epoch: u64,
    },
    /// Answer to [`Request::Info`].
    InfoAck {
        /// Echoed request id.
        id: u64,
        /// Servers the FIB covers.
        servers: u64,
        /// Service shard count.
        shards: u32,
        /// Current mask epoch.
        epoch: u64,
        /// Per-connection in-flight item budget.
        max_inflight: u32,
    },
}

impl Reply {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Reply::Route { id, .. }
            | Reply::Batch { id, .. }
            | Reply::Error { id, .. }
            | Reply::Reject { id, .. }
            | Reply::MaskAck { id, .. }
            | Reply::InfoAck { id, .. } => *id,
        }
    }

    /// Appends the full frame (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Route { id, outcome } => {
                let mut f = Framer::new(out, op::ROUTE_OK, *id);
                f.outcome(outcome);
                f.finish();
            }
            Reply::Batch { id, items } => {
                let mut f = Framer::new(out, op::BATCH_OK, *id);
                f.u32(items.len() as u32);
                for item in items {
                    match item {
                        Ok(o) => {
                            f.u8(0);
                            f.outcome(o);
                        }
                        Err(e) => {
                            f.u8(1);
                            f.route_error(e);
                        }
                    }
                }
                f.finish();
            }
            Reply::Error { id, error } => {
                let mut f = Framer::new(out, op::ERROR, *id);
                f.route_error(error);
                f.finish();
            }
            Reply::Reject { id, reason } => {
                let mut f = Framer::new(out, op::REJECT, *id);
                f.u8(reason.code());
                f.finish();
            }
            Reply::MaskAck {
                id,
                incremental,
                retained,
                dropped,
                epoch,
            } => {
                let mut f = Framer::new(out, op::MASK_ACK, *id);
                f.u8(u8::from(*incremental));
                f.u64(*retained);
                f.u64(*dropped);
                f.u64(*epoch);
                f.finish();
            }
            Reply::InfoAck {
                id,
                servers,
                shards,
                epoch,
                max_inflight,
            } => {
                let mut f = Framer::new(out, op::INFO_ACK, *id);
                f.u64(*servers);
                f.u32(*shards);
                f.u64(*epoch);
                f.u32(*max_inflight);
                f.finish();
            }
        }
    }

    /// Decodes a frame payload (the `len`-counted bytes).
    ///
    /// # Errors
    ///
    /// Same contract as [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Reply, WireError> {
        let (opcode, id, mut b) = header(payload)?;
        let reply = match opcode {
            op::ROUTE_OK => Reply::Route {
                id,
                outcome: b.outcome()?,
            },
            op::BATCH_OK => {
                let count = b.counted(1)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(match b.u8()? {
                        0 => Ok(b.outcome()?),
                        1 => Err(b.route_error()?),
                        _ => return Err(WireError::Malformed("batch item tag")),
                    });
                }
                Reply::Batch { id, items }
            }
            op::ERROR => Reply::Error {
                id,
                error: b.route_error()?,
            },
            op::REJECT => Reply::Reject {
                id,
                reason: RejectReason::parse(b.u8()?)
                    .ok_or(WireError::Malformed("reject reason"))?,
            },
            op::MASK_ACK => Reply::MaskAck {
                id,
                incremental: match b.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("mask ack flag")),
                },
                retained: b.u64()?,
                dropped: b.u64()?,
                epoch: b.u64()?,
            },
            op::INFO_ACK => Reply::InfoAck {
                id,
                servers: b.u64()?,
                shards: b.u32()?,
                epoch: b.u64()?,
                max_inflight: b.u32()?,
            },
            other => return Err(WireError::BadOpcode(other)),
        };
        b.done()?;
        Ok(reply)
    }
}

/// Splits one frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds a prefix of a frame (read
/// more), or `Ok(Some((payload_range, consumed)))` where the payload is
/// `buf[LEN_BYTES..consumed]`.
///
/// # Errors
///
/// [`WireError::Oversized`] / [`WireError::Undersized`] when the length
/// prefix itself is invalid — the stream cannot be resynchronized and the
/// connection should be closed.
pub fn split_frame(
    buf: &[u8],
    max: usize,
) -> Result<Option<(std::ops::Range<usize>, usize)>, WireError> {
    if buf.len() < LEN_BYTES {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len < HEADER_BYTES {
        return Err(WireError::Undersized { len });
    }
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let total = LEN_BYTES + len;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((LEN_BYTES..total, total)))
}

/// Parses the fixed header of a frame payload, returning the opcode, id
/// and a cursor over the body.
fn header(payload: &[u8]) -> Result<(u8, u64, Cursor<'_>), WireError> {
    if payload.len() < HEADER_BYTES {
        return Err(WireError::Truncated {
            promised: HEADER_BYTES,
            have: payload.len(),
        });
    }
    if payload[0] != WIRE_VERSION {
        return Err(WireError::BadVersion(payload[0]));
    }
    let opcode = payload[1];
    let id = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    Ok((opcode, id, Cursor(&payload[HEADER_BYTES..])))
}

/// Best-effort id extraction from a frame payload whose body may be
/// garbage — used to address typed rejects for malformed frames. Returns
/// 0 when even the header is short.
pub fn peek_id(payload: &[u8]) -> u64 {
    if payload.len() < HEADER_BYTES {
        return 0;
    }
    u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"))
}

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.0.len() < n {
            return Err(WireError::Truncated {
                promised: n,
                have: self.0.len(),
            });
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a count field and bounds it by the bytes remaining, assuming
    /// each counted element needs at least `min_elem_bytes` — a lying
    /// count can therefore never drive an allocation past the frame size.
    fn counted(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_elem_bytes) > self.0.len() {
            return Err(WireError::Malformed("count exceeds body"));
        }
        Ok(count)
    }

    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn outcome(&mut self) -> Result<WireOutcome, WireError> {
        let tier = self.u8()?;
        if tier > 4 {
            return Err(WireError::Malformed("route tier"));
        }
        let attempts = self.u32()?;
        let backoff_units = self.u64()?;
        let n = self.counted(4)?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(self.u32()?);
        }
        Ok(WireOutcome {
            tier,
            attempts,
            backoff_units,
            nodes,
        })
    }

    fn route_error(&mut self) -> Result<WireRouteError, WireError> {
        let code = self.u8()?;
        let a = self.u32()?;
        let b = self.u32()?;
        let attempts = self.u32()?;
        Ok(match code {
            1 => WireRouteError::NotAServer(a),
            2 => WireRouteError::Unreachable { src: a, dst: b },
            3 => WireRouteError::GaveUp {
                src: a,
                dst: b,
                attempts,
            },
            4 => WireRouteError::Internal,
            _ => return Err(WireError::Malformed("error code")),
        })
    }

    fn done(self) -> Result<(), WireError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

/// Little-endian frame writer: reserves the length prefix, appends the
/// header and body, then back-patches the prefix.
struct Framer<'a> {
    out: &'a mut Vec<u8>,
    start: usize,
}

impl<'a> Framer<'a> {
    fn new(out: &'a mut Vec<u8>, opcode: u8, id: u64) -> Framer<'a> {
        let start = out.len();
        out.extend_from_slice(&[0; LEN_BYTES]);
        out.push(WIRE_VERSION);
        out.push(opcode);
        out.extend_from_slice(&id.to_le_bytes());
        Framer { out, start }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn outcome(&mut self, o: &WireOutcome) {
        self.u8(o.tier);
        self.u32(o.attempts);
        self.u64(o.backoff_units);
        self.u32(o.nodes.len() as u32);
        for &n in &o.nodes {
            self.u32(n);
        }
    }

    fn route_error(&mut self, e: &WireRouteError) {
        let (code, a, b, attempts) = match e {
            WireRouteError::NotAServer(n) => (1, *n, 0, 0),
            WireRouteError::Unreachable { src, dst } => (2, *src, *dst, 0),
            WireRouteError::GaveUp { src, dst, attempts } => (3, *src, *dst, *attempts),
            WireRouteError::Internal => (4, 0, 0, 0),
        };
        self.u8(code);
        self.u32(a);
        self.u32(b);
        self.u32(attempts);
    }

    fn finish(self) {
        let len = (self.out.len() - self.start - LEN_BYTES) as u32;
        self.out[self.start..self.start + LEN_BYTES].copy_from_slice(&len.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: &Request) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let (range, consumed) = split_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(&Request::decode(&buf[range]).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(&Request::Query {
            id: 7,
            src: 1,
            dst: 2,
        });
        roundtrip_req(&Request::QueryBatch {
            id: u64::MAX,
            pairs: vec![(0, 0), (9, 4)],
        });
        roundtrip_req(&Request::QueryVlb {
            id: 1,
            seed: 99,
            src: 3,
            dst: 5,
        });
        roundtrip_req(&Request::MaskPush {
            id: 2,
            clear: false,
            nodes: vec![1, 2, 3],
            links: vec![9],
        });
        roundtrip_req(&Request::Info { id: 0 });
    }

    #[test]
    fn split_rejects_bad_lengths() {
        assert_eq!(split_frame(&[1, 2], DEFAULT_MAX_FRAME).unwrap(), None);
        let undersized = 3u32.to_le_bytes();
        assert!(matches!(
            split_frame(&undersized, DEFAULT_MAX_FRAME),
            Err(WireError::Undersized { len: 3 })
        ));
        let oversized = u32::MAX.to_le_bytes();
        assert!(matches!(
            split_frame(&oversized, 1024),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn decode_rejects_wrong_version_and_trailing_bytes() {
        let mut buf = Vec::new();
        Request::Query {
            id: 1,
            src: 2,
            dst: 3,
        }
        .encode(&mut buf);
        let (range, _) = split_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        let mut payload = buf[range].to_vec();
        payload[0] = 9;
        assert_eq!(Request::decode(&payload), Err(WireError::BadVersion(9)));
        payload[0] = WIRE_VERSION;
        payload.push(0xFF);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::Malformed("trailing bytes"))
        );
    }
}
