//! The TCP front end over [`RouteService`]: framed requests in,
//! coalesced batches through the sharded query path, framed replies out.
//!
//! # Threading model
//!
//! One accept loop plus one thread per accepted connection; the
//! *execution* underneath is thread-per-core — every coalesced batch
//! funnels into [`RouteService::query_batch`], which fans the pairs out
//! across the service's shards on scoped worker threads. Connection
//! threads do only framing, admission and socket I/O.
//!
//! # Batching
//!
//! A connection reads one frame (blocking, with a short timeout so the
//! drain flag is noticed), then opportunistically drains every further
//! frame the client has already pipelined. All consecutive query-type
//! frames coalesce into **one** `query_batch` call; replies are written
//! per frame, in arrival order. A mask push or info request is a
//! barrier: the pending group executes first, then the barrier op.
//!
//! # Backpressure
//!
//! Admission is per connection and typed: a coalesced group admits
//! frames while the running item count stays within
//! [`ServeConfig::max_inflight`]; frames beyond it receive
//! [`RejectReason::Saturated`] replies (never silent drops), and a
//! single frame whose batch exceeds [`ServeConfig::max_batch`] receives
//! `BatchTooLarge`. Because rejection is a reply, a well-behaved client
//! (the load generator) bounds its pipeline window to the budget and
//! never triggers it — which is what keeps the CI harness digest
//! deterministic.
//!
//! # Epoch consistency
//!
//! The service sits behind an `RwLock`. A coalesced batch executes under
//! **one** read guard, and a mask push takes the write guard and bumps
//! the epoch counter — so a batch that started before a mask install
//! answers entirely from one epoch, never a mix (pinned by the
//! regression test in `tests/loopback.rs`).

use crate::wire::{
    peek_id, split_frame, RejectReason, Reply, Request, WireError, WireOutcome, WireRouteError,
    DEFAULT_MAX_FRAME,
};
use dcn_fib::RouteService;
use netgraph::{FaultMask, LinkId, NodeId, Topology};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Tuning knobs of a [`RouteServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Cap on one frame's post-prefix bytes, both directions.
    pub max_frame_bytes: usize,
    /// Per-connection in-flight route-query budget: the largest number of
    /// items one coalesced group may admit before typed rejects.
    pub max_inflight: usize,
    /// Cap on a single `QueryBatch` frame's pair count.
    pub max_batch: usize,
    /// Blocking-read timeout; bounds how long a drain waits on an idle
    /// connection.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            max_inflight: 4096,
            max_batch: 4096,
            read_timeout: Duration::from_millis(20),
        }
    }
}

/// What a graceful [`RouteServer::shutdown`] drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Connection threads joined.
    pub connections: usize,
    /// Mask epoch at shutdown.
    pub epoch: u64,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    service: RwLock<RouteService>,
    epoch: AtomicU64,
    draining: AtomicBool,
    cfg: ServeConfig,
}

/// A running route-query server; dropping it without
/// [`RouteServer::shutdown`] detaches the connection threads (they exit
/// on the drain flag set by `Drop`).
pub struct RouteServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for RouteServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteServer")
            .field("addr", &self.addr)
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl RouteServer {
    /// Binds `127.0.0.1:port` and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(service: RouteService, cfg: ServeConfig) -> std::io::Result<RouteServer> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: RwLock::new(service),
            epoch: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            cfg,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns))
        };
        Ok(RouteServer {
            addr,
            shared,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (`127.0.0.1` with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The current fault-mask epoch (bumped by every mask push).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Drains and joins every thread: stops accepting, lets connection
    /// threads answer what they already buffered, then joins them all.
    /// Returns only once no server thread remains.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conns.lock().expect("conn registry"));
        let connections = handles.len();
        for h in handles {
            let _ = h.join();
        }
        DrainReport {
            connections,
            epoch: self.epoch(),
        }
    }
}

impl Drop for RouteServer {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                dcn_telemetry::counter!("serve.connections").inc();
                let shared = Arc::clone(shared);
                let h = std::thread::spawn(move || serve_conn(&shared, stream));
                conns.lock().expect("conn registry").push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// A query-type frame waiting in the current coalesced group.
enum Pending {
    Query {
        id: u64,
        src: u32,
        dst: u32,
    },
    Vlb {
        id: u64,
        seed: u64,
        src: u32,
        dst: u32,
    },
    Batch {
        id: u64,
        pairs: Vec<(u32, u32)>,
    },
    Reject {
        id: u64,
        reason: RejectReason,
    },
}

impl Pending {
    fn items(&self) -> usize {
        match self {
            Pending::Query { .. } | Pending::Vlb { .. } => 1,
            Pending::Batch { pairs, .. } => pairs.len(),
            Pending::Reject { .. } => 0,
        }
    }
}

fn serve_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let mut rbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut wbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
    loop {
        // One blocking read (timeout-bounded so the drain flag is seen).
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // Opportunistic drain: pull every byte the client already sent,
        // so pipelined frames coalesce into one execution batch.
        if stream.set_nonblocking(true).is_ok() {
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                    Err(_) => break,
                }
            }
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
        }
        if !process_buffer(shared, &mut rbuf, &mut wbuf, &mut stream) {
            return;
        }
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Decodes every complete frame in `rbuf`, executes them (coalescing
/// query groups), and writes the replies. Returns `false` when the
/// connection must close.
fn process_buffer(
    shared: &Shared,
    rbuf: &mut Vec<u8>,
    wbuf: &mut Vec<u8>,
    stream: &mut TcpStream,
) -> bool {
    let mut consumed = 0usize;
    let mut group: Vec<Pending> = Vec::new();
    let mut fatal = false;
    loop {
        let rest = &rbuf[consumed..];
        let frame = match split_frame(rest, shared.cfg.max_frame_bytes) {
            Ok(None) => break,
            Ok(Some((range, used))) => {
                let payload = &rest[range];
                consumed += used;
                payload
            }
            Err(_) => {
                // Length-prefix violation: the stream cannot be
                // resynchronized. Reject what we can address and close.
                flush_group(shared, &mut group, wbuf);
                Reply::Reject {
                    id: 0,
                    reason: RejectReason::Malformed,
                }
                .encode(wbuf);
                fatal = true;
                consumed = rbuf.len();
                break;
            }
        };
        match Request::decode(frame) {
            Ok(Request::Query { id, src, dst }) => group.push(Pending::Query { id, src, dst }),
            Ok(Request::QueryVlb { id, seed, src, dst }) => {
                group.push(Pending::Vlb { id, seed, src, dst });
            }
            Ok(Request::QueryBatch { id, pairs }) => {
                if pairs.len() > shared.cfg.max_batch {
                    group.push(Pending::Reject {
                        id,
                        reason: RejectReason::BatchTooLarge,
                    });
                } else {
                    group.push(Pending::Batch { id, pairs });
                }
            }
            Ok(Request::MaskPush {
                id,
                clear,
                nodes,
                links,
            }) => {
                // Barrier: the in-flight group answers from the old
                // epoch, then the mask installs under the write lock.
                flush_group(shared, &mut group, wbuf);
                wbuf_mask(shared, id, clear, &nodes, &links, wbuf);
            }
            Ok(Request::Info { id }) => {
                flush_group(shared, &mut group, wbuf);
                wbuf_info(shared, id, wbuf);
            }
            Err(WireError::BadVersion(_)) => {
                // Version mismatch is connection-fatal: the peer speaks a
                // different dialect and nothing else it sends is safe to
                // interpret.
                flush_group(shared, &mut group, wbuf);
                Reply::Reject {
                    id: peek_id(frame),
                    reason: RejectReason::BadVersion,
                }
                .encode(wbuf);
                fatal = true;
                break;
            }
            Err(WireError::BadOpcode(_)) => {
                dcn_telemetry::counter!("serve.rejects").inc();
                group.push(Pending::Reject {
                    id: peek_id(frame),
                    reason: RejectReason::BadOpcode,
                });
            }
            Err(_) => {
                dcn_telemetry::counter!("serve.rejects").inc();
                group.push(Pending::Reject {
                    id: peek_id(frame),
                    reason: RejectReason::Malformed,
                });
            }
        }
    }
    rbuf.drain(..consumed);
    flush_group(shared, &mut group, wbuf);
    let ok = wbuf.is_empty() || stream.write_all(wbuf).and_then(|()| stream.flush()).is_ok();
    wbuf.clear();
    !fatal && ok
}

/// Executes a coalesced group of query-type frames under one read guard
/// (= one mask epoch) and appends the replies in frame order.
fn flush_group(shared: &Shared, group: &mut Vec<Pending>, wbuf: &mut Vec<u8>) {
    if group.is_empty() {
        return;
    }
    let _t = dcn_telemetry::histogram!("serve.group_ns").start_timer();
    // Admission: frames stay whole; the running item count is the
    // connection's in-flight budget.
    let mut admitted = 0usize;
    let budget = shared.cfg.max_inflight;
    let decisions: Vec<bool> = group
        .iter()
        .map(|p| {
            let items = p.items();
            if matches!(p, Pending::Reject { .. }) {
                false
            } else if admitted + items <= budget {
                admitted += items;
                true
            } else {
                false
            }
        })
        .collect();
    dcn_telemetry::counter!("serve.requests").add(
        decisions
            .iter()
            .zip(group.iter())
            .filter(|(ok, p)| **ok && !matches!(p, Pending::Reject { .. }))
            .count() as u64,
    );
    dcn_telemetry::histogram!("serve.batch_size").record(admitted as u64);

    // One read guard for the whole group: every answer in it comes from
    // one mask epoch, even if a writer is already waiting.
    let svc = shared.service.read().expect("route service");
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(admitted);
    for (p, ok) in group.iter().zip(&decisions) {
        if !ok {
            continue;
        }
        match p {
            Pending::Query { src, dst, .. } => pairs.push((NodeId(*src), NodeId(*dst))),
            Pending::Batch { pairs: ps, .. } => {
                pairs.extend(ps.iter().map(|&(s, d)| (NodeId(s), NodeId(d))));
            }
            Pending::Vlb { .. } | Pending::Reject { .. } => {}
        }
    }
    let answers = svc.query_batch(&pairs);
    let mut next = 0usize;
    for (p, ok) in group.iter().zip(&decisions) {
        match (p, ok) {
            (Pending::Reject { id, reason }, _) => {
                Reply::Reject {
                    id: *id,
                    reason: *reason,
                }
                .encode(wbuf);
            }
            (p, false) => {
                dcn_telemetry::counter!("serve.rejects").inc();
                let id = match p {
                    Pending::Query { id, .. }
                    | Pending::Vlb { id, .. }
                    | Pending::Batch { id, .. } => *id,
                    Pending::Reject { id, .. } => *id,
                };
                Reply::Reject {
                    id,
                    reason: RejectReason::Saturated,
                }
                .encode(wbuf);
            }
            (Pending::Query { id, .. }, true) => {
                let r = &answers[next];
                next += 1;
                encode_single(*id, r, wbuf);
            }
            (Pending::Batch { id, pairs: ps, .. }, true) => {
                let items = answers[next..next + ps.len()]
                    .iter()
                    .map(|r| match r {
                        Ok(o) => Ok(WireOutcome::from_outcome(o)),
                        Err(e) => Err(WireRouteError::from_error(e)),
                    })
                    .collect();
                next += ps.len();
                Reply::Batch { id: *id, items }.encode(wbuf);
            }
            (Pending::Vlb { id, seed, src, dst }, true) => {
                let r = svc.query_vlb(*seed, NodeId(*src), NodeId(*dst));
                encode_single(*id, &r, wbuf);
            }
        }
    }
    group.clear();
}

fn encode_single(
    id: u64,
    r: &Result<abccc::RouteOutcome, netgraph::RouteError>,
    wbuf: &mut Vec<u8>,
) {
    match r {
        Ok(o) => Reply::Route {
            id,
            outcome: WireOutcome::from_outcome(o),
        }
        .encode(wbuf),
        Err(e) => Reply::Error {
            id,
            error: WireRouteError::from_error(e),
        }
        .encode(wbuf),
    }
}

/// Installs or clears a mask under the write lock and bumps the epoch.
fn wbuf_mask(
    shared: &Shared,
    id: u64,
    clear: bool,
    nodes: &[u32],
    links: &[u32],
    wbuf: &mut Vec<u8>,
) {
    let mut svc = shared.service.write().expect("route service");
    let reply = if clear {
        svc.clear_faults();
        let epoch = shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        Reply::MaskAck {
            id,
            incremental: false,
            retained: 0,
            dropped: 0,
            epoch,
        }
    } else {
        let net_nodes = svc.topo().network().node_count();
        let net_links = svc.topo().network().link_count();
        if nodes.iter().any(|&n| n as usize >= net_nodes)
            || links.iter().any(|&l| l as usize >= net_links)
        {
            dcn_telemetry::counter!("serve.rejects").inc();
            Reply::Reject {
                id,
                reason: RejectReason::Malformed,
            }
            .encode(wbuf);
            return;
        }
        let mut mask = FaultMask::new(svc.topo().network());
        for &n in nodes {
            mask.fail_node(NodeId(n));
        }
        for &l in links {
            mask.fail_link(LinkId(l));
        }
        let report = svc.apply_mask(mask);
        let epoch = shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        dcn_telemetry::counter!("serve.mask_pushes").inc();
        Reply::MaskAck {
            id,
            incremental: report.incremental,
            retained: report.retained as u64,
            dropped: report.dropped as u64,
            epoch,
        }
    };
    reply.encode(wbuf);
}

fn wbuf_info(shared: &Shared, id: u64, wbuf: &mut Vec<u8>) {
    let svc = shared.service.read().expect("route service");
    Reply::InfoAck {
        id,
        servers: u64::from(svc.table().servers()),
        shards: svc.shard_count() as u32,
        epoch: shared.epoch.load(Ordering::SeqCst),
        max_inflight: shared.cfg.max_inflight as u32,
    }
    .encode(wbuf);
}
