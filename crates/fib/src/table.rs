//! Layout-polymorphic forwarding tables.
//!
//! [`RouteService`](crate::RouteService) and the CLI accept either FIB
//! layout; [`FibTable`] is the enum that lets them hold one without
//! generics leaking into every signature. Both variants honour the same
//! lookup contract — identical ports, walks and routes for the same
//! strategy — so callers choose purely on the memory/compile-time
//! trade-off [`FibLayout`] names.

use crate::compile::{Fib, FibCompiler, FibError};
use crate::hier::HierFib;
use abccc::{Abccc, PermStrategy};
use netgraph::{FaultMask, Network, NodeId, Route};

/// Which physical encoding a forwarding table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FibLayout {
    /// One packed entry per `(source, destination)` pair: `4·N²` bytes,
    /// O(1) lookups with no arithmetic. The right choice up to a few
    /// thousand servers.
    Dense,
    /// Per-level digit sub-tables exploiting the suffix property:
    /// `O(V·levels + E)` bytes, O(levels) integer work per lookup. The
    /// only choice at 10⁵+ servers, where dense tables need gigabytes.
    Hier,
}

impl FibLayout {
    /// Stable lowercase label (CLI flag value, JSON field).
    pub fn label(self) -> &'static str {
        match self {
            FibLayout::Dense => "dense",
            FibLayout::Hier => "hier",
        }
    }

    /// Parses a [`label`](FibLayout::label).
    pub fn parse(s: &str) -> Option<FibLayout> {
        match s {
            "dense" => Some(FibLayout::Dense),
            "hier" => Some(FibLayout::Hier),
            _ => None,
        }
    }
}

impl std::fmt::Display for FibLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A compiled forwarding table in either layout, with a uniform lookup
/// surface delegating to [`Fib`] or [`HierFib`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FibTable {
    /// The dense `(source, destination)`-indexed table.
    Dense(Fib),
    /// The hierarchical digit-structured table.
    Hier(HierFib),
}

impl FibTable {
    /// Compiles `topo` with `strategy` into the requested layout.
    ///
    /// # Errors
    ///
    /// Same as [`FibCompiler::compile`] / [`FibCompiler::compile_hier`].
    pub fn compile(
        strategy: PermStrategy,
        layout: FibLayout,
        topo: &Abccc,
    ) -> Result<FibTable, FibError> {
        let compiler = FibCompiler::new(strategy);
        Ok(match layout {
            FibLayout::Dense => FibTable::Dense(compiler.compile(topo)?),
            FibLayout::Hier => FibTable::Hier(compiler.compile_hier(topo)?),
        })
    }

    /// The layout this table is stored in.
    pub fn layout(&self) -> FibLayout {
        match self {
            FibTable::Dense(_) => FibLayout::Dense,
            FibTable::Hier(_) => FibLayout::Hier,
        }
    }

    /// The strategy the table was compiled from.
    pub fn strategy(&self) -> PermStrategy {
        match self {
            FibTable::Dense(f) => f.strategy(),
            FibTable::Hier(f) => f.strategy(),
        }
    }

    /// Number of servers the table covers.
    pub fn servers(&self) -> u32 {
        match self {
            FibTable::Dense(f) => f.servers(),
            FibTable::Hier(f) => f.servers(),
        }
    }

    /// Table size in bytes (entries only).
    pub fn bytes(&self) -> usize {
        match self {
            FibTable::Dense(f) => f.bytes(),
            FibTable::Hier(f) => f.bytes(),
        }
    }

    /// The `(server port, switch port)` pair for a hop, or `None` on the
    /// diagonal.
    pub fn ports(&self, at: NodeId, toward: NodeId) -> Option<(u16, u16)> {
        match self {
            FibTable::Dense(f) => f.ports(at, toward),
            FibTable::Hier(f) => f.ports(at, toward),
        }
    }

    /// Walks the table from `src` to `dst`, appending the full node
    /// sequence to `nodes`. See [`Fib::walk_into`].
    pub fn walk_into(&self, net: &Network, src: NodeId, dst: NodeId, nodes: &mut Vec<NodeId>) {
        match self {
            FibTable::Dense(f) => f.walk_into(net, src, dst, nodes),
            FibTable::Hier(f) => f.walk_into(net, src, dst, nodes),
        }
    }

    /// The compiled route `src → dst` as a [`Route`].
    pub fn route(&self, net: &Network, src: NodeId, dst: NodeId) -> Route {
        match self {
            FibTable::Dense(f) => f.route(net, src, dst),
            FibTable::Hier(f) => f.route(net, src, dst),
        }
    }

    /// Walks `src → dst` under a fault mask, reporting whether every
    /// traversed element is alive. See [`Fib::walk_live_into`].
    pub fn walk_live_into(
        &self,
        net: &Network,
        mask: &FaultMask,
        src: NodeId,
        dst: NodeId,
        nodes: &mut Vec<NodeId>,
    ) -> bool {
        match self {
            FibTable::Dense(f) => f.walk_live_into(net, mask, src, dst, nodes),
            FibTable::Hier(f) => f.walk_live_into(net, mask, src, dst, nodes),
        }
    }
}

impl From<Fib> for FibTable {
    fn from(f: Fib) -> FibTable {
        FibTable::Dense(f)
    }
}

impl From<HierFib> for FibTable {
    fn from(f: HierFib) -> FibTable {
        FibTable::Hier(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::AbcccParams;
    use netgraph::Topology;

    #[test]
    fn layout_labels_roundtrip() {
        for layout in [FibLayout::Dense, FibLayout::Hier] {
            assert_eq!(FibLayout::parse(layout.label()), Some(layout));
            assert_eq!(layout.to_string(), layout.label());
        }
        assert_eq!(FibLayout::parse("sparse"), None);
    }

    #[test]
    fn table_delegates_match_across_layouts() {
        let t = Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap();
        let dense =
            FibTable::compile(PermStrategy::DestinationAware, FibLayout::Dense, &t).unwrap();
        let hier = FibTable::compile(PermStrategy::DestinationAware, FibLayout::Hier, &t).unwrap();
        assert_eq!(dense.layout(), FibLayout::Dense);
        assert_eq!(hier.layout(), FibLayout::Hier);
        assert_eq!(dense.servers(), hier.servers());
        assert_eq!(dense.strategy(), hier.strategy());
        assert!(dense.bytes() > hier.bytes());
        let servers = dense.servers();
        for s in 0..servers {
            for d in 0..servers {
                assert_eq!(
                    dense.ports(NodeId(s), NodeId(d)),
                    hier.ports(NodeId(s), NodeId(d))
                );
                assert_eq!(
                    dense.route(t.network(), NodeId(s), NodeId(d)),
                    hier.route(t.network(), NodeId(s), NodeId(d))
                );
            }
        }
    }
}
