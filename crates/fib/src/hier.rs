//! The hierarchical digit-structured FIB layout.
//!
//! The dense [`Fib`](crate::Fib) stores one packed entry per
//! `(source, destination)` pair — `4·N²` bytes, which hits an O(V²) wall
//! long before the million-server instances the ABCCC paper is about
//! (10⁵ servers ⇒ 40 GB of table). But the entries are massively
//! redundant: by the suffix property, the next hop out of a server depends
//! only on (a) the *first* level its strategy would correct and (b) which
//! digit the destination holds at that level — never on the full
//! destination identity. [`HierFib`] stores exactly that factorization:
//!
//! * per server, the egress port toward each *owned level switch* and
//!   toward its group crossbar (`O(V·levels)` entries);
//! * per level switch, the egress port toward the member holding each
//!   digit (`O(level-switch ports)` = one entry per level cable);
//! * per crossbar, the egress port toward each group position (one entry
//!   per crossbar cable).
//!
//! Total: `O(V·levels + E)` 16-bit entries — megabytes where the dense
//! layout needs tens of gigabytes — while every lookup reproduces the
//! dense table's answer bit for bit (the equivalence proptests pin
//! hier-vs-dense under healthy *and* accumulated-fault queries). The
//! first-level decision itself comes from the allocation-free
//! [`PermStrategy::first`], so a lookup does O(levels) integer work and
//! touches two `u16` cells.
//!
//! Port tables are filled by decoding the network's actual adjacency
//! lists (O(E) compile), not by assuming the generator's emission order —
//! if the builder ever reordered cables, compilation would still be
//! correct and the bit-equivalence tests would still pass.

use crate::compile::FibError;
use abccc::{Abccc, AbcccParams, PermStrategy, ServerAddr, SwitchAddr};
use netgraph::{FaultMask, Network, NodeId, Route, Topology};

/// Sentinel for port cells no valid lookup dereferences (e.g. the
/// level-switch slot of a level the server does not own).
const NO_PORT: u16 = u16::MAX;

/// A compiled forwarding table in the hierarchical digit-structured
/// layout: same lookup contract as the dense [`Fib`](crate::Fib), at
/// `O(V·levels + E)` memory instead of `O(V²)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierFib {
    strategy: PermStrategy,
    params: AbcccParams,
    servers: u32,
    max_nodes: u32,
    /// Egress port of server `u` toward its group crossbar; empty when
    /// `m == 1` (the BCube endpoint has no crossbars).
    crossbar_sport: Vec<u16>,
    /// Egress port of server `u` toward the switch of level `i`:
    /// `[u · levels + i]`, [`NO_PORT`] where `u`'s position does not own
    /// level `i`.
    level_sport: Vec<u16>,
    /// Egress port of crossbar `x` toward group member `j`:
    /// `[x · m + j]`; empty when `m == 1`.
    crossbar_wport: Vec<u16>,
    /// Egress port of the level switch with compact index `s` toward the
    /// member whose level digit is `d`: `[s · n + d]` (the compact index
    /// is `level · rest_space + rest`, i.e. the switch's node id minus
    /// servers and crossbars).
    level_wport: Vec<u16>,
}

/// Compiles the hierarchical table for `topo` by decoding its adjacency
/// lists — O(E) work, no per-destination sweep.
pub(crate) fn compile(strategy: PermStrategy, topo: &Abccc) -> Result<HierFib, FibError> {
    if let PermStrategy::Random(_) = strategy {
        return Err(FibError::UnsupportedStrategy {
            strategy: strategy.label(),
        });
    }
    let net = topo.network();
    for node in net.node_ids() {
        if net.degree(node) > usize::from(NO_PORT) {
            return Err(FibError::PortOverflow {
                node,
                degree: net.degree(node),
            });
        }
    }

    let _span = dcn_telemetry::span!("fib.compile_hier");
    let p = *topo.params();
    let servers = p.server_count() as usize;
    let levels = p.levels() as usize;
    let m = p.group_size() as usize;
    let n = p.n() as usize;
    let crossbars = p.crossbar_count() as usize;
    let has_crossbars = m > 1;

    let mut crossbar_sport = vec![NO_PORT; if has_crossbars { servers } else { 0 }];
    let mut level_sport = vec![NO_PORT; servers * levels];
    let mut crossbar_wport = vec![NO_PORT; if has_crossbars { crossbars * m } else { 0 }];
    let mut level_wport = vec![NO_PORT; (p.level_switch_count() as usize) * n];

    // Server side: which port leads to the crossbar / each owned level.
    for u in 0..servers {
        let id = NodeId(u as u32);
        for (port, &(nb, _)) in net.neighbors(id).iter().enumerate() {
            match SwitchAddr::from_node_id(&p, nb) {
                SwitchAddr::Crossbar(_) => crossbar_sport[u] = port as u16,
                SwitchAddr::Level { level, .. } => {
                    level_sport[u * levels + level as usize] = port as u16;
                }
            }
        }
    }
    // Switch side: which port leads to each member / digit.
    for sw in 0..net.switch_count() {
        let id = NodeId((servers + sw) as u32);
        match SwitchAddr::from_node_id(&p, id) {
            SwitchAddr::Crossbar(label) => {
                let base = label.0 as usize * m;
                for (port, &(nb, _)) in net.neighbors(id).iter().enumerate() {
                    let member = ServerAddr::from_node_id(&p, nb);
                    debug_assert_eq!(member.label, label, "crossbar member label");
                    crossbar_wport[base + member.pos as usize] = port as u16;
                }
            }
            SwitchAddr::Level { level, .. } => {
                let base = (sw - crossbars) * n;
                for (port, &(nb, _)) in net.neighbors(id).iter().enumerate() {
                    let member = ServerAddr::from_node_id(&p, nb);
                    let d = member.label.digit(&p, level) as usize;
                    level_wport[base + d] = port as u16;
                }
            }
        }
    }

    let fib = HierFib {
        strategy,
        params: p,
        servers: servers as u32,
        // Same worst-case route bound as the dense compiler.
        max_nodes: 4 * p.levels() + 3,
        crossbar_sport,
        level_sport,
        crossbar_wport,
        level_wport,
    };
    dcn_telemetry::counter!("fib.compiles").inc();
    dcn_telemetry::gauge!("fib.table_bytes").set(fib.bytes() as i64);
    Ok(fib)
}

impl HierFib {
    /// The strategy the table was compiled from.
    pub fn strategy(&self) -> PermStrategy {
        self.strategy
    }

    /// Number of servers the table covers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Table size in bytes (port cells only).
    pub fn bytes(&self) -> usize {
        (self.crossbar_sport.len()
            + self.level_sport.len()
            + self.crossbar_wport.len()
            + self.level_wport.len())
            * std::mem::size_of::<u16>()
    }

    /// The `(server port, switch port)` pair for a hop, or `None` on the
    /// diagonal — bit-identical to the dense [`Fib::ports`](crate::Fib::ports)
    /// for the same strategy.
    pub fn ports(&self, at: NodeId, toward: NodeId) -> Option<(u16, u16)> {
        if at == toward {
            return None;
        }
        let p = &self.params;
        let su = ServerAddr::from_node_id(p, at);
        let sd = ServerAddr::from_node_id(p, toward);
        let levels = p.levels() as usize;
        let n = p.n() as usize;
        let m = p.group_size() as usize;
        Some(match self.strategy.first(p, su, sd) {
            Some(level) => {
                let owner = p.owner(level);
                if su.pos == owner {
                    // Correct the first digit through the owned level
                    // switch, exiting toward the destination's digit.
                    let sport = self.level_sport[at.index() * levels + level as usize];
                    let compact = u64::from(level) * p.rest_space() + su.label.rest_index(p, level);
                    let wport =
                        self.level_wport[compact as usize * n + sd.label.digit(p, level) as usize];
                    (sport, wport)
                } else {
                    // Reach the owner through the group crossbar first.
                    (
                        self.crossbar_sport[at.index()],
                        self.crossbar_wport[su.label.0 as usize * m + owner as usize],
                    )
                }
            }
            // Same label, different position: one crossbar hop finishes.
            None => (
                self.crossbar_sport[at.index()],
                self.crossbar_wport[su.label.0 as usize * m + sd.pos as usize],
            ),
        })
    }

    /// Walks the table from `src` to `dst`, appending the full node
    /// sequence to `nodes` — the hierarchical counterpart of
    /// [`Fib::walk_into`](crate::Fib::walk_into).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, or — the corruption guard —
    /// if the walk exceeds the worst-case route length of any strategy.
    pub fn walk_into(&self, net: &Network, src: NodeId, dst: NodeId, nodes: &mut Vec<NodeId>) {
        let cap = self.max_nodes as usize;
        nodes.push(src);
        let mut cur = src;
        while cur != dst {
            assert!(
                nodes.len() < cap,
                "fib walk {src}->{dst} exceeded the route-length bound — corrupt table"
            );
            let (sport, wport) = self.ports(cur, dst).expect("cur != dst");
            let (via, _) = net.neighbors(cur)[sport as usize];
            let (next, _) = net.neighbors(via)[wport as usize];
            nodes.push(via);
            nodes.push(next);
            cur = next;
        }
    }

    /// The compiled route `src → dst` as a [`Route`].
    pub fn route(&self, net: &Network, src: NodeId, dst: NodeId) -> Route {
        let mut nodes = Vec::with_capacity(self.max_nodes as usize);
        self.walk_into(net, src, dst, &mut nodes);
        Route::new(nodes)
    }

    /// Walks `src → dst` under a fault mask, reporting whether every
    /// traversed element is alive — the hierarchical counterpart of
    /// [`Fib::walk_live_into`](crate::Fib::walk_live_into).
    pub fn walk_live_into(
        &self,
        net: &Network,
        mask: &FaultMask,
        src: NodeId,
        dst: NodeId,
        nodes: &mut Vec<NodeId>,
    ) -> bool {
        let cap = self.max_nodes as usize;
        nodes.push(src);
        let mut alive = mask.node_alive(src);
        let mut cur = src;
        while cur != dst {
            assert!(
                nodes.len() < cap,
                "fib walk {src}->{dst} exceeded the route-length bound — corrupt table"
            );
            let (sport, wport) = self.ports(cur, dst).expect("cur != dst");
            let (via, l1) = net.neighbors(cur)[sport as usize];
            let (next, l2) = net.neighbors(via)[wport as usize];
            alive = alive
                && mask.link_alive(l1)
                && mask.node_alive(via)
                && mask.link_alive(l2)
                && mask.node_alive(next);
            nodes.push(via);
            nodes.push(next);
            cur = next;
        }
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::FibCompiler;
    use abccc::AbcccParams;

    fn topo(n: u32, k: u32, h: u32) -> Abccc {
        Abccc::new(AbcccParams::new(n, k, h).unwrap()).unwrap()
    }

    #[test]
    fn rejects_random_strategy() {
        let t = topo(2, 1, 2);
        assert!(matches!(
            FibCompiler::new(PermStrategy::Random(7)).compile_hier(&t),
            Err(FibError::UnsupportedStrategy { .. })
        ));
    }

    #[test]
    fn hier_ports_match_dense_ports_exhaustively() {
        for (n, k, h) in [(2, 2, 2), (3, 1, 2), (2, 3, 3), (3, 1, 3)] {
            let t = topo(n, k, h);
            let servers = t.params().server_count() as u32;
            for strategy in [
                PermStrategy::DestinationAware,
                PermStrategy::CyclicFromSource,
                PermStrategy::Ascending,
                PermStrategy::Descending,
                PermStrategy::Greedy,
            ] {
                let dense = FibCompiler::new(strategy).compile(&t).unwrap();
                let hier = FibCompiler::new(strategy).compile_hier(&t).unwrap();
                for s in 0..servers {
                    for d in 0..servers {
                        assert_eq!(
                            hier.ports(NodeId(s), NodeId(d)),
                            dense.ports(NodeId(s), NodeId(d)),
                            "ABCCC({n},{k},{h}) {} {s}->{d}",
                            strategy.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hier_routes_match_dense_routes() {
        let t = topo(2, 3, 3);
        let net = t.network();
        let dense = FibCompiler::shortest().compile(&t).unwrap();
        let hier = FibCompiler::shortest().compile_hier(&t).unwrap();
        let servers = t.params().server_count() as u32;
        for s in 0..servers {
            for d in 0..servers {
                assert_eq!(
                    hier.route(net, NodeId(s), NodeId(d)),
                    dense.route(net, NodeId(s), NodeId(d)),
                    "{s}->{d}"
                );
            }
        }
    }

    #[test]
    fn hier_is_at_least_10x_smaller_beyond_a_thousand_servers() {
        let t = topo(4, 2, 2); // m=3, 192 servers
        let dense = FibCompiler::shortest().compile(&t).unwrap();
        let hier = FibCompiler::shortest().compile_hier(&t).unwrap();
        assert!(
            dense.bytes() >= 10 * hier.bytes(),
            "dense {} vs hier {}",
            dense.bytes(),
            hier.bytes()
        );
    }

    #[test]
    fn bcube_endpoint_compiles_without_crossbar_tables() {
        let t = topo(3, 1, 3); // m = 1
        let hier = FibCompiler::shortest().compile_hier(&t).unwrap();
        let dense = FibCompiler::shortest().compile(&t).unwrap();
        let servers = t.params().server_count() as u32;
        for s in 0..servers {
            for d in 0..servers {
                assert_eq!(
                    hier.ports(NodeId(s), NodeId(d)),
                    dense.ports(NodeId(s), NodeId(d))
                );
            }
        }
    }
}
