//! The sharded concurrent route-query service.
//!
//! [`RouteService`] answers src→dst queries from a compiled [`Fib`]. The
//! healthy hot path is lock-free: a table walk over an immutable slab,
//! nothing shared but reads. Under an installed fault mask the walk
//! additionally checks liveness per hop; only when the compiled route is
//! actually broken does the query fall back to a full
//! [`ResilientRouter`] recomputation, whose outcome is memoized in a
//! per-shard patch cache so each broken pair pays the escalation ladder
//! once.
//!
//! # Equivalence contract (pinned by the property tests)
//!
//! For every pair and mask, [`RouteService::query`] returns bit for bit
//! what `ResilientRouter::new(budget).route_explained(topo, src, dst,
//! mask)` returns — and on the healthy path that is also exactly
//! `DigitRouter::shortest()`'s route. This holds because the table is
//! compiled from the ladder's first rung
//! ([`PermStrategy::DestinationAware`], enforced at construction): a live
//! walk *is* the rung-0 hit (`Primary`, 1 attempt, no backoff), and a dead
//! walk means rung 0 fails, which is where the recomputation ladder starts.
//!
//! # Incremental invalidation contract
//!
//! Applying a new mask that [`FaultMask::covers`] the installed one (fault
//! accumulation, the common case during an outage) keeps every patch whose
//! cached route is still fully alive, and every cached error: under a
//! superset mask, ladder candidates rejected earlier stay rejected
//! (failure is monotone), so a cached outcome whose route survives is
//! exactly what recomputation would return, and `Unreachable`/`GaveUp`
//! can only stay that way. Any *repair* (non-superset mask) clears all
//! patches — cheap, because the compiled table itself never recompiles.

use crate::compile::{Fib, FibCompiler, FibError};
use crate::table::{FibLayout, FibTable};
use abccc::router::{check_endpoints, pair_seed};
use abccc::vlb::route_two_stage_with;
use abccc::{Abccc, PermStrategy, ResilientRouter, RetryBudget, RouteOutcome, ServerAddr};
use netgraph::{FaultMask, FaultScenario, NodeId, Route, RouteError, Topology};
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What [`RouteService::apply_mask`] did to the patch caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidationReport {
    /// `true` when the new mask covered the installed one and patches were
    /// revalidated individually; `false` when a repair forced a full clear.
    pub incremental: bool,
    /// Patches kept (cached route still fully alive, or a cached error).
    pub retained: usize,
    /// Patches dropped for on-demand recomputation.
    pub dropped: usize,
}

/// One shard: a mutex-guarded memo of fallback outcomes for the pairs
/// hashed to it. Shards only serialize queries *within* a shard, and only
/// on the (already expensive) fallback path.
#[derive(Debug, Default)]
struct Shard {
    patches: Mutex<HashMap<(u32, u32), Result<RouteOutcome, RouteError>>>,
}

/// A sharded, concurrently-queryable forwarding plane over a compiled
/// [`Fib`] (see the module docs for the equivalence and invalidation
/// contracts).
#[derive(Debug)]
pub struct RouteService {
    topo: Abccc,
    table: FibTable,
    budget: RetryBudget,
    mask: Option<FaultMask>,
    shards: Vec<Shard>,
}

impl RouteService {
    /// Builds a service over an already-compiled dense table. `shards` is
    /// rounded up to a power of two and clamped to `[1, 1024]`.
    ///
    /// # Errors
    ///
    /// * [`FibError::ServiceRequiresShortest`] — the table is not
    ///   destination-aware (see the equivalence contract);
    /// * [`FibError::TopologyMismatch`] — the table covers a different
    ///   server count than `topo`.
    pub fn new(topo: Abccc, fib: Fib, shards: usize) -> Result<Self, FibError> {
        RouteService::with_table(topo, FibTable::Dense(fib), shards)
    }

    /// Builds a service over an already-compiled table in either layout.
    /// Every contract (equivalence, invalidation, batch ordering) is
    /// layout-independent: both layouts answer lookups bit-identically.
    ///
    /// # Errors
    ///
    /// Same as [`RouteService::new`].
    pub fn with_table(topo: Abccc, table: FibTable, shards: usize) -> Result<Self, FibError> {
        if table.strategy() != PermStrategy::DestinationAware {
            return Err(FibError::ServiceRequiresShortest {
                strategy: table.strategy().label(),
            });
        }
        if u64::from(table.servers()) != topo.params().server_count() {
            return Err(FibError::TopologyMismatch {
                fib_servers: table.servers(),
                topo_servers: topo.params().server_count(),
            });
        }
        let shard_count = shards.clamp(1, 1024).next_power_of_two();
        Ok(RouteService {
            topo,
            table,
            budget: RetryBudget::default(),
            mask: None,
            shards: (0..shard_count).map(|_| Shard::default()).collect(),
        })
    }

    /// Compiles the destination-aware table for `topo` in the dense layout
    /// and wraps it in a service — the one-call entry point.
    ///
    /// # Errors
    ///
    /// Propagates [`FibCompiler::compile`] and [`RouteService::new`]
    /// failures.
    pub fn compile(topo: Abccc, shards: usize) -> Result<Self, FibError> {
        let fib = FibCompiler::shortest().compile(&topo)?;
        RouteService::new(topo, fib, shards)
    }

    /// Compiles the destination-aware table for `topo` in the requested
    /// layout and wraps it in a service. At 10⁵+ servers, only
    /// [`FibLayout::Hier`] is practical — the dense table is `4·N²` bytes.
    ///
    /// # Errors
    ///
    /// Propagates compile and [`RouteService::with_table`] failures.
    pub fn compile_with_layout(
        topo: Abccc,
        layout: FibLayout,
        shards: usize,
    ) -> Result<Self, FibError> {
        let table = FibTable::compile(PermStrategy::DestinationAware, layout, &topo)?;
        RouteService::with_table(topo, table, shards)
    }

    /// Replaces the [`RetryBudget`] the faulted fallback escalates under.
    /// Clears the patch caches (cached outcomes embed the old budget's
    /// accounting).
    #[must_use]
    pub fn budget(mut self, budget: RetryBudget) -> Self {
        self.budget = budget;
        self.clear_patches();
        self
    }

    /// The topology the service routes over.
    pub fn topo(&self) -> &Abccc {
        &self.topo
    }

    /// The compiled table the service answers from.
    pub fn table(&self) -> &FibTable {
        &self.table
    }

    /// The currently installed fault mask, if any.
    pub fn mask(&self) -> Option<&FaultMask> {
        self.mask.as_ref()
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cached fallback outcomes across all shards.
    pub fn patch_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.patches.lock().expect("patch cache").len())
            .sum()
    }

    #[inline]
    fn shard_of(&self, src: NodeId, dst: NodeId) -> &Shard {
        // SplitMix64 finalizer over the pair — decorrelates shard choice
        // from id locality so batches spread evenly.
        let mut z = pair_seed(0x5A_4D17, src, dst).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        &self.shards[(z >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Routes `src → dst` from the compiled table (see the module docs for
    /// the exact equivalence to on-demand routing).
    ///
    /// # Errors
    ///
    /// Exactly [`ResilientRouter`]'s contract: [`RouteError::NotAServer`],
    /// [`RouteError::Unreachable`], or [`RouteError::GaveUp`] when the
    /// budget disables the BFS fallback.
    pub fn query(&self, src: NodeId, dst: NodeId) -> Result<RouteOutcome, RouteError> {
        let _t = dcn_telemetry::histogram!("fib.lookup_ns").start_timer();
        dcn_telemetry::counter!("fib.lookups").inc();
        check_endpoints(&self.topo, src, dst, self.mask.as_ref())?;
        let net = self.topo.network();
        let mut nodes = Vec::new();
        match &self.mask {
            None => {
                self.table.walk_into(net, src, dst, &mut nodes);
                Ok(RouteOutcome::primary(Route::new(nodes)))
            }
            Some(mask) => {
                if self.table.walk_live_into(net, mask, src, dst, &mut nodes) {
                    Ok(RouteOutcome::primary(Route::new(nodes)))
                } else {
                    self.fallback(src, dst, mask)
                }
            }
        }
    }

    /// The compiled-table-is-broken path: memoized full ladder.
    fn fallback(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: &FaultMask,
    ) -> Result<RouteOutcome, RouteError> {
        let shard = self.shard_of(src, dst);
        if let Some(hit) = shard
            .patches
            .lock()
            .expect("patch cache")
            .get(&(src.0, dst.0))
        {
            dcn_telemetry::counter!("fib.patch_hits").inc();
            return hit.clone();
        }
        dcn_telemetry::counter!("fib.fallbacks").inc();
        let outcome =
            ResilientRouter::new(self.budget).route_explained(&self.topo, src, dst, Some(mask));
        shard
            .patches
            .lock()
            .expect("patch cache")
            .insert((src.0, dst.0), outcome.clone());
        dcn_telemetry::gauge!("fib.patch_entries").set(self.patch_count() as i64);
        outcome
    }

    /// Answers a batch of queries, partitioned across shards and executed
    /// on one scoped thread per (occupied) shard. Results come back in
    /// input order and are bit-identical to calling [`RouteService::query`]
    /// sequentially — per-pair answers are pure given the installed mask,
    /// so the shard count and scheduling never show in the output.
    pub fn query_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<RouteOutcome, RouteError>> {
        let _span = dcn_telemetry::span!("fib.query_batch");
        dcn_telemetry::counter!("fib.batches").inc();
        let mut by_shard: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let mut z = pair_seed(0x5A_4D17, s, d).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            by_shard[(z >> 32) as usize & (self.shards.len() - 1)].push(i);
        }
        let slots: Mutex<Vec<Option<Result<RouteOutcome, RouteError>>>> =
            Mutex::new(vec![None; pairs.len()]);
        let occupied: Vec<&Vec<usize>> = by_shard.iter().filter(|ix| !ix.is_empty()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..occupied.len() {
                scope.spawn(|| loop {
                    let w = next.fetch_add(1, Ordering::Relaxed);
                    let Some(indices) = occupied.get(w) else {
                        break;
                    };
                    for &i in *indices {
                        let (s, d) = pairs[i];
                        let r = self.query(s, d);
                        slots.lock().expect("batch slots")[i] = Some(r);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("batch slots")
            .into_iter()
            .map(|r| r.expect("every pair answered"))
            .collect()
    }

    /// Valiant load balancing from the compiled table: same per-pair RNG
    /// stream and stage semantics as `VlbRouter::new(seed)`, with both
    /// stages served by table walks instead of on-demand routing —
    /// bit-identical routes (the table is destination-aware, exactly the
    /// stage router VLB uses).
    ///
    /// # Errors
    ///
    /// `VlbRouter`'s contract: [`RouteError::NotAServer`],
    /// [`RouteError::Unreachable`] (dead endpoint), or
    /// [`RouteError::GaveUp`] when the produced route crosses a failed
    /// element (VLB is fault-oblivious).
    pub fn query_vlb(
        &self,
        seed: u64,
        src: NodeId,
        dst: NodeId,
    ) -> Result<RouteOutcome, RouteError> {
        dcn_telemetry::counter!("fib.vlb_lookups").inc();
        check_endpoints(&self.topo, src, dst, self.mask.as_ref())?;
        let p = self.topo.params();
        let net = self.topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(pair_seed(seed, src, dst));
        let (route, attempts) = route_two_stage_with(
            p,
            ServerAddr::from_node_id(p, src),
            ServerAddr::from_node_id(p, dst),
            &mut rng,
            |a, b| self.table.route(net, a.node_id(p), b.node_id(p)),
        );
        if let Some(m) = &self.mask {
            if route.validate(net, Some(m)).is_err() {
                return Err(RouteError::GaveUp {
                    src,
                    dst,
                    attempts: attempts as usize,
                });
            }
        }
        Ok(RouteOutcome {
            route,
            tier: abccc::RouteTier::Primary,
            attempts,
            backoff_units: 0,
        })
    }

    /// Installs a fault mask, patching incrementally when it covers the
    /// previous one (see the invalidation contract in the module docs).
    pub fn apply_mask(&mut self, mask: FaultMask) -> InvalidationReport {
        let incremental = match &self.mask {
            None => true, // no mask = no faults: anything covers it
            Some(old) => mask.covers(old),
        };
        let (mut retained, mut dropped) = (0usize, 0usize);
        if incremental {
            let net = self.topo.network();
            for shard in &self.shards {
                let mut patches = shard.patches.lock().expect("patch cache");
                patches.retain(|_, cached| {
                    let keep = match cached {
                        // Monotone: more faults cannot un-fail an error.
                        Err(_) => true,
                        // Still fully alive ⇒ recomputation would return
                        // the identical outcome (earlier ladder candidates
                        // stay rejected under a superset mask).
                        Ok(out) => out.route.validate(net, Some(&mask)).is_ok(),
                    };
                    if keep {
                        retained += 1;
                    } else {
                        dropped += 1;
                    }
                    keep
                });
            }
        } else {
            dropped = self.clear_patches();
        }
        dcn_telemetry::counter!("fib.invalidations").inc();
        dcn_telemetry::gauge!("fib.patch_entries").set(self.patch_count() as i64);
        self.mask = Some(mask);
        InvalidationReport {
            incremental,
            retained,
            dropped,
        }
    }

    /// Builds `scenario`'s mask for this topology and installs it via
    /// [`RouteService::apply_mask`].
    pub fn apply_scenario(&mut self, scenario: &FaultScenario) -> InvalidationReport {
        let mask = scenario.build(self.topo.network());
        self.apply_mask(mask)
    }

    /// Removes the fault mask and all patches: back to the lock-free
    /// healthy path.
    pub fn clear_faults(&mut self) {
        self.mask = None;
        self.clear_patches();
        dcn_telemetry::gauge!("fib.patch_entries").set(0);
    }

    fn clear_patches(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut p = s.patches.lock().expect("patch cache");
                let n = p.len();
                p.clear();
                n
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::AbcccParams;

    fn service(n: u32, k: u32, h: u32, shards: usize) -> RouteService {
        let topo = Abccc::new(AbcccParams::new(n, k, h).unwrap()).unwrap();
        RouteService::compile(topo, shards).unwrap()
    }

    #[test]
    fn rejects_non_shortest_tables_and_size_mismatches() {
        let topo = Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap();
        let ascending = FibCompiler::new(PermStrategy::Ascending)
            .compile(&topo)
            .unwrap();
        let topo2 = Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap();
        assert!(matches!(
            RouteService::new(topo2, ascending, 4),
            Err(FibError::ServiceRequiresShortest { .. })
        ));

        let small = Abccc::new(AbcccParams::new(3, 1, 2).unwrap()).unwrap();
        let small_fib = FibCompiler::shortest().compile(&small).unwrap();
        let topo3 = Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap();
        assert!(matches!(
            RouteService::new(topo3, small_fib, 4),
            Err(FibError::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(service(2, 1, 2, 0).shard_count(), 1);
        assert_eq!(service(2, 1, 2, 3).shard_count(), 4);
        assert_eq!(service(2, 1, 2, 8).shard_count(), 8);
    }

    #[test]
    fn healthy_queries_are_primary_and_batch_preserves_order() {
        let svc = service(2, 2, 2, 4);
        let n = svc.topo().params().server_count() as u32;
        let pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|s| (0..n).map(move |d| (NodeId(s), NodeId(d))))
            .collect();
        let batch = svc.query_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (&(s, d), out) in pairs.iter().zip(&batch) {
            let out = out.as_ref().unwrap();
            assert_eq!(out.route.src(), s);
            assert_eq!(out.route.dst(), d);
            assert_eq!(out.tier, abccc::RouteTier::Primary);
            assert_eq!((out.attempts, out.backoff_units), (1, 0));
            assert_eq!(*out, svc.query(s, d).unwrap());
        }
    }

    #[test]
    fn rejects_switch_and_dead_endpoints_like_routers_do() {
        let mut svc = service(2, 2, 2, 2);
        let servers = svc.topo().params().server_count() as u32;
        let sw = NodeId(servers);
        assert!(matches!(
            svc.query(sw, NodeId(0)),
            Err(RouteError::NotAServer(_))
        ));
        svc.apply_scenario(&FaultScenario::seeded(0).fail_nodes([NodeId(3)]));
        assert!(matches!(
            svc.query(NodeId(3), NodeId(0)),
            Err(RouteError::Unreachable { .. })
        ));
    }

    #[test]
    fn fallback_is_memoized_and_superset_masks_keep_valid_patches() {
        let mut svc = service(3, 2, 2, 2);
        let (a, b) = (NodeId(0), NodeId(80));
        let primary = svc.query(a, b).unwrap().route;
        // Fail the primary route's interior: the pair needs a fallback.
        let interior: Vec<NodeId> = primary.nodes()[1..primary.nodes().len() - 1].to_vec();
        let report = svc.apply_scenario(&FaultScenario::seeded(0).fail_nodes(interior.clone()));
        assert!(report.incremental);
        let out = svc.query(a, b).unwrap();
        assert!(out.tier > abccc::RouteTier::Primary);
        assert_eq!(svc.patch_count(), 1);
        assert_eq!(svc.query(a, b).unwrap(), out); // served from the patch

        // Accumulate one more unrelated fault: the patch survives iff its
        // route is untouched.
        let mut more = svc.mask().unwrap().clone();
        let spare = svc
            .topo()
            .network()
            .server_ids()
            .find(|s| !out.route.nodes().contains(s) && *s != a && *s != b)
            .unwrap();
        more.fail_node(spare);
        let report = svc.apply_mask(more);
        assert!(report.incremental);
        assert_eq!((report.retained, report.dropped), (1, 0));
        assert_eq!(svc.query(a, b).unwrap(), out);

        // A repair clears everything.
        let report = svc.apply_scenario(&FaultScenario::seeded(1).fail_nodes([NodeId(7)]));
        assert!(!report.incremental);
        assert_eq!(svc.patch_count(), 0);

        svc.clear_faults();
        assert_eq!(svc.query(a, b).unwrap().route, primary);
    }
}
