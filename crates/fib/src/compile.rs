//! The FIB compiler: lowering digit-correction routing decisions into
//! per-server next-hop tables.
//!
//! # Why per-server, not per-switch
//!
//! The correct next hop out of a *crossbar* depends on which group member
//! the packet arrived from: two servers of the same group heading for the
//! same destination can need different exit members (their remaining
//! correction orders start at different owners). Per-switch
//! destination-indexed tables are therefore ill-defined for this family.
//! Servers, on the other hand, fully determine the next two hops — which
//! matches the server-centric design ABCCC inherits from BCube, where
//! switches are dumb crossbars and all forwarding intelligence lives in
//! the servers. Each table entry packs the pair of egress *ports* (server
//! port, then via-switch port) into one `u32` over the stable
//! link-insertion port order of [`netgraph::Network::neighbors`].
//!
//! # Why one entry per `(server, destination)` suffices
//!
//! Every deterministic [`PermStrategy`] has the *suffix property*: at any
//! intermediate server of a route, recomputing the correction order from
//! the current address yields exactly the unconsumed remainder of the
//! original order. (Blocks of levels grouped by owner keep their cyclic
//! order when the reference position advances with the walk, and the
//! destination-block-last rotation is stable at every intermediate.) So a
//! hop-by-hop table walk reproduces the end-to-end
//! [`DigitRouter::route_addrs`] path bit for bit — the equivalence the
//! property tests pin. [`PermStrategy::Random`] salts its RNG with the
//! *original* source and is the one strategy without the property; the
//! compiler rejects it.

use abccc::{Abccc, PermStrategy, ServerAddr, SwitchAddr};
use netgraph::{Network, NodeId, Route, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel for the diagonal entries (`src == dst`): never dereferenced,
/// a walk terminates before reading it.
const SELF: u32 = u32::MAX;

/// Why a FIB could not be compiled or installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FibError {
    /// The strategy recomputes differently at intermediate hops (only
    /// [`PermStrategy::Random`]): its routes cannot be expressed as
    /// per-server tables.
    UnsupportedStrategy {
        /// Label of the rejected strategy.
        strategy: &'static str,
    },
    /// A node's degree does not fit the 16-bit port field of a packed
    /// table entry.
    PortOverflow {
        /// The offending node.
        node: NodeId,
        /// Its degree.
        degree: usize,
    },
    /// [`RouteService`](crate::RouteService) requires a
    /// [`PermStrategy::DestinationAware`] table: its faulted fallback is
    /// the `ResilientRouter`, whose first ladder rung is exactly that
    /// strategy — any other table would break the bit-equivalence
    /// contract.
    ServiceRequiresShortest {
        /// Label of the strategy the table was compiled with.
        strategy: &'static str,
    },
    /// The table was compiled for a different topology size.
    TopologyMismatch {
        /// Servers the table covers.
        fib_servers: u32,
        /// Servers of the topology the service was given.
        topo_servers: u64,
    },
}

impl std::fmt::Display for FibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FibError::UnsupportedStrategy { strategy } => write!(
                f,
                "strategy `{strategy}` cannot be compiled: its orders are not \
                 suffix-stable at intermediate hops"
            ),
            FibError::PortOverflow { node, degree } => {
                write!(f, "degree {degree} of {node} exceeds the 16-bit port field")
            }
            FibError::ServiceRequiresShortest { strategy } => write!(
                f,
                "RouteService needs a destination-aware table for its resilient \
                 fallback contract, got `{strategy}`"
            ),
            FibError::TopologyMismatch {
                fib_servers,
                topo_servers,
            } => write!(
                f,
                "table compiled for {fib_servers} servers, topology has {topo_servers}"
            ),
        }
    }
}

impl std::error::Error for FibError {}

/// Compiles [`DigitRouter`] decisions into a [`Fib`].
///
/// The sweep parallelizes over destinations with the same work-stealing
/// pattern as `netgraph::DistanceEngine`: an atomic cursor hands
/// destination slabs to scoped worker threads; each slab is an
/// independent, disjoint slice of the flat table, so assembly needs no
/// reordering.
#[derive(Debug, Clone, Copy)]
pub struct FibCompiler {
    strategy: PermStrategy,
    threads: usize,
}

impl FibCompiler {
    /// A compiler lowering `strategy`'s correction orders.
    pub fn new(strategy: PermStrategy) -> Self {
        FibCompiler {
            strategy,
            threads: 0,
        }
    }

    /// The default compiler: [`PermStrategy::DestinationAware`], the
    /// shortest-path strategy and the one [`RouteService`](crate::RouteService)
    /// accepts.
    pub fn shortest() -> Self {
        FibCompiler::new(PermStrategy::DestinationAware)
    }

    /// Sets the worker-thread count (`0` = all available cores). Never
    /// changes the produced table, only how fast it compiles.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Compiles the full `(server, destination)` next-hop table for `topo`.
    ///
    /// # Errors
    ///
    /// * [`FibError::UnsupportedStrategy`] — [`PermStrategy::Random`] has no
    ///   suffix-stable orders;
    /// * [`FibError::PortOverflow`] — a node degree exceeds the 16-bit port
    ///   field (not reachable for valid ABCCC parameters, checked anyway).
    pub fn compile(&self, topo: &Abccc) -> Result<Fib, FibError> {
        if let PermStrategy::Random(_) = self.strategy {
            return Err(FibError::UnsupportedStrategy {
                strategy: self.strategy.label(),
            });
        }
        let net = topo.network();
        for node in net.node_ids() {
            if net.degree(node) > usize::from(u16::MAX) {
                return Err(FibError::PortOverflow {
                    node,
                    degree: net.degree(node),
                });
            }
        }

        let _span = dcn_telemetry::span!("fib.compile");
        let p = *topo.params();
        let servers = p.server_count() as usize;
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
        .min(servers)
        .max(1);

        let strategy = self.strategy;
        let mut entries = vec![SELF; servers * servers];
        {
            // Hand each destination's slab (a disjoint &mut slice of the
            // flat table) to whichever worker steals it.
            let slabs: Mutex<Vec<Option<&mut [u32]>>> =
                Mutex::new(entries.chunks_mut(servers).map(Some).collect());
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let d = next.fetch_add(1, Ordering::Relaxed);
                        if d >= servers {
                            break;
                        }
                        let slab = slabs.lock().expect("slab list")[d]
                            .take()
                            .expect("each slab taken once");
                        fill_slab(&p, net, strategy, d as u32, slab);
                    });
                }
            });
        }

        let fib = Fib {
            strategy,
            servers: servers as u32,
            // Worst-case node count of any strategy's route: 4 nodes per
            // corrected level plus the final crossbar pair plus the source.
            max_nodes: 4 * p.levels() + 3,
            entries,
        };
        dcn_telemetry::counter!("fib.compiles").inc();
        dcn_telemetry::gauge!("fib.table_bytes").set(fib.bytes() as i64);
        Ok(fib)
    }

    /// Compiles the hierarchical digit-structured table for `topo` —
    /// the same lookups as [`FibCompiler::compile`] at
    /// `O(V·levels + E)` memory instead of `O(V²)`. O(E) single-threaded
    /// (the [`threads`](FibCompiler::threads) knob is irrelevant at that
    /// cost).
    ///
    /// # Errors
    ///
    /// Same as [`FibCompiler::compile`].
    pub fn compile_hier(&self, topo: &Abccc) -> Result<crate::HierFib, FibError> {
        crate::hier::compile(self.strategy, topo)
    }
}

/// Fills the next-hop slab of destination `d`: for every source server,
/// the first two hops of the strategy's route, packed as ports.
fn fill_slab(
    p: &abccc::AbcccParams,
    net: &Network,
    strategy: PermStrategy,
    d: u32,
    slab: &mut [u32],
) {
    let sd = ServerAddr::from_node_id(p, NodeId(d));
    for (u, entry) in slab.iter_mut().enumerate() {
        let u = u as u32;
        if u == d {
            *entry = SELF;
            continue;
        }
        let su = ServerAddr::from_node_id(p, NodeId(u));
        let order = strategy.order(p, su, sd);
        let (via, next) = if let Some(&level) = order.first() {
            let owner = p.owner(level);
            if su.pos == owner {
                // Correct the first digit through the owned level switch.
                let sw = SwitchAddr::Level {
                    level,
                    rest: su.label.rest_index(p, level),
                };
                let corrected = su.label.with_digit(p, level, sd.label.digit(p, level));
                (
                    sw.node_id(p),
                    ServerAddr::new(p, corrected, owner).node_id(p),
                )
            } else {
                // Reach the owner through the group crossbar first.
                (
                    SwitchAddr::Crossbar(su.label).node_id(p),
                    ServerAddr::new(p, su.label, owner).node_id(p),
                )
            }
        } else {
            // Same label, different position: one crossbar hop finishes.
            (SwitchAddr::Crossbar(su.label).node_id(p), NodeId(d))
        };
        let sport = net
            .port_of(NodeId(u), via)
            .expect("fib: server adjacent to its next-hop switch");
        let wport = net
            .port_of(via, next)
            .expect("fib: switch adjacent to the next server");
        *entry = (sport as u32) << 16 | wport as u32;
    }
}

/// A compiled forwarding table: for every `(server, destination)` pair the
/// next two hops (via switch, next server) of the strategy's route, packed
/// as two 16-bit egress ports in one `u32`. Lookups are pure reads of an
/// immutable slab — shareable across any number of query threads without
/// locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fib {
    strategy: PermStrategy,
    servers: u32,
    max_nodes: u32,
    /// `entries[dst * servers + src]`, destination-major so one walk stays
    /// inside one slab.
    entries: Vec<u32>,
}

impl Fib {
    /// The strategy the table was compiled from.
    pub fn strategy(&self) -> PermStrategy {
        self.strategy
    }

    /// Number of servers the table covers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Table size in bytes (entries only).
    pub fn bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<u32>()
    }

    /// The packed `(server port, switch port)` entry for a hop, or `None`
    /// on the diagonal.
    pub fn ports(&self, at: NodeId, toward: NodeId) -> Option<(u16, u16)> {
        let e = self.entries[toward.index() * self.servers as usize + at.index()];
        (e != SELF).then_some(((e >> 16) as u16, (e & 0xFFFF) as u16))
    }

    /// Walks the table from `src` to `dst`, appending the full node
    /// sequence (servers and switches, `src` included) to `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range for the table, or — the
    /// corruption guard — if the walk exceeds the worst-case route length
    /// of any strategy (every level paying a crossbar and a switch hop).
    pub fn walk_into(&self, net: &Network, src: NodeId, dst: NodeId, nodes: &mut Vec<NodeId>) {
        let cap = self.max_nodes as usize;
        nodes.push(src);
        let mut cur = src;
        while cur != dst {
            assert!(
                nodes.len() < cap,
                "fib walk {src}->{dst} exceeded the route-length bound — corrupt table"
            );
            let e = self.entries[dst.index() * self.servers as usize + cur.index()];
            let (via, _) = net.neighbors(cur)[(e >> 16) as usize];
            let (next, _) = net.neighbors(via)[(e & 0xFFFF) as usize];
            nodes.push(via);
            nodes.push(next);
            cur = next;
        }
    }

    /// The compiled route `src → dst` as a [`Route`].
    pub fn route(&self, net: &Network, src: NodeId, dst: NodeId) -> Route {
        let mut nodes = Vec::with_capacity(self.max_nodes as usize);
        self.walk_into(net, src, dst, &mut nodes);
        Route::new(nodes)
    }

    /// Walks `src → dst` under a fault mask, appending to `nodes` and
    /// reporting whether every traversed node and link is alive — the
    /// hot-path equivalent of `Route::validate(net, Some(mask))` for a
    /// structurally valid table walk.
    pub fn walk_live_into(
        &self,
        net: &Network,
        mask: &netgraph::FaultMask,
        src: NodeId,
        dst: NodeId,
        nodes: &mut Vec<NodeId>,
    ) -> bool {
        let cap = self.max_nodes as usize;
        nodes.push(src);
        let mut alive = mask.node_alive(src);
        let mut cur = src;
        while cur != dst {
            assert!(
                nodes.len() < cap,
                "fib walk {src}->{dst} exceeded the route-length bound — corrupt table"
            );
            let e = self.entries[dst.index() * self.servers as usize + cur.index()];
            let (via, l1) = net.neighbors(cur)[(e >> 16) as usize];
            let (next, l2) = net.neighbors(via)[(e & 0xFFFF) as usize];
            alive = alive
                && mask.link_alive(l1)
                && mask.node_alive(via)
                && mask.link_alive(l2)
                && mask.node_alive(next);
            nodes.push(via);
            nodes.push(next);
            cur = next;
        }
        alive
    }
}

/// Convenience: compiles the shortest-path table with default threading —
/// what [`DigitRouter::shortest`] computes per query, amortized once.
///
/// # Errors
///
/// Propagates [`FibCompiler::compile`] failures (not reachable for valid
/// ABCCC parameters with the destination-aware strategy).
pub fn compile_shortest(topo: &Abccc) -> Result<Fib, FibError> {
    FibCompiler::shortest().compile(topo)
}

/// Convenience: compiles the shortest-path table in the hierarchical
/// layout — same answers as [`compile_shortest`] at `O(V·levels + E)`
/// memory.
///
/// # Errors
///
/// Propagates [`FibCompiler::compile_hier`] failures (not reachable for
/// valid ABCCC parameters with the destination-aware strategy).
pub fn compile_shortest_hier(topo: &Abccc) -> Result<crate::HierFib, FibError> {
    FibCompiler::shortest().compile_hier(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{AbcccParams, DigitRouter};
    use netgraph::Topology;

    fn topo(n: u32, k: u32, h: u32) -> Abccc {
        Abccc::new(AbcccParams::new(n, k, h).unwrap()).unwrap()
    }

    #[test]
    fn rejects_random_strategy() {
        let t = topo(2, 1, 2);
        let err = FibCompiler::new(PermStrategy::Random(7)).compile(&t);
        assert!(matches!(err, Err(FibError::UnsupportedStrategy { .. })));
        assert!(err.unwrap_err().to_string().contains("random"));
    }

    #[test]
    fn walks_match_on_demand_routes_for_every_deterministic_strategy() {
        for (n, k, h) in [(2, 2, 2), (3, 1, 2), (2, 3, 3), (3, 1, 3)] {
            let t = topo(n, k, h);
            let p = *t.params();
            let net = t.network();
            for strategy in [
                PermStrategy::DestinationAware,
                PermStrategy::CyclicFromSource,
                PermStrategy::Ascending,
                PermStrategy::Descending,
                PermStrategy::Greedy,
            ] {
                let fib = FibCompiler::new(strategy).compile(&t).unwrap();
                let router = DigitRouter::new(strategy);
                for s in 0..p.server_count() as u32 {
                    for d in 0..p.server_count() as u32 {
                        let walked = fib.route(net, NodeId(s), NodeId(d));
                        let direct = router.route_addrs(
                            &p,
                            ServerAddr::from_node_id(&p, NodeId(s)),
                            ServerAddr::from_node_id(&p, NodeId(d)),
                        );
                        assert_eq!(
                            walked,
                            direct,
                            "ABCCC({n},{k},{h}) {} {s}->{d}",
                            strategy.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_count_never_changes_the_table() {
        let t = topo(2, 2, 2);
        let one = FibCompiler::shortest().threads(1).compile(&t).unwrap();
        let many = FibCompiler::shortest().threads(7).compile(&t).unwrap();
        assert_eq!(one, many);
    }

    #[test]
    fn table_size_is_quadratic_and_compact() {
        let t = topo(3, 1, 2); // 18 servers
        let fib = compile_shortest(&t).unwrap();
        assert_eq!(fib.servers(), 18);
        assert_eq!(fib.bytes(), 18 * 18 * 4);
        assert!(fib.ports(NodeId(0), NodeId(0)).is_none());
        assert!(fib.ports(NodeId(0), NodeId(17)).is_some());
    }

    #[test]
    fn bcube_endpoint_has_no_crossbars_and_still_compiles() {
        let t = topo(3, 1, 3); // m = 1: no crossbars materialized
        let p = *t.params();
        let fib = compile_shortest(&t).unwrap();
        let r = fib.route(t.network(), NodeId(0), NodeId(8));
        r.validate(t.network(), None).unwrap();
        assert_eq!(
            r,
            DigitRouter::shortest().route_addrs(
                &p,
                ServerAddr::from_node_id(&p, NodeId(0)),
                ServerAddr::from_node_id(&p, NodeId(8)),
            )
        );
    }
}
