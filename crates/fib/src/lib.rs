//! # dcn-fib — compiled forwarding tables for the ABCCC data plane
//!
//! Real data-center forwarding does not run a routing algorithm per
//! packet: the control plane compiles routing decisions into per-node
//! next-hop tables once, and the data plane answers from those tables.
//! This crate does the same for the ABCCC stack:
//!
//! * [`FibCompiler`] lowers a deterministic
//!   [`PermStrategy`](abccc::PermStrategy) into a flat, destination-major
//!   table of packed `u32` port pairs — one entry per
//!   `(source server, destination server)` — compiled in parallel with
//!   the same work-stealing pattern as `netgraph`'s distance engine.
//!   The correctness of per-server tables rests on the **suffix
//!   property** of the deterministic digit-correction strategies (see
//!   the module docs of the compiler); the seeded `Random` strategy
//!   lacks it and is rejected at compile time.
//! * [`Fib`] is the immutable compiled artifact in the **dense** layout:
//!   O(1) per-hop lookups, `4·N²` bytes for `N` servers, safely shareable
//!   across threads. [`HierFib`] is the same contract in the
//!   **hierarchical digit-structured** layout — per-level sub-tables
//!   keyed by address digits at `O(N·levels + E)` bytes, the layout that
//!   breaks the O(V²) wall for 10⁵+-server instances (where a dense
//!   table would need tens of gigabytes). [`FibTable`] holds either;
//!   [`FibLayout`] names the choice.
//! * [`RouteService`] is the query front end: single and batched
//!   src→dst lookups, a lock-free healthy hot path, and per-shard patch
//!   caches that memoize [`ResilientRouter`](abccc::ResilientRouter)
//!   fallbacks under an installed
//!   [`FaultMask`](netgraph::FaultMask). Fault accumulation invalidates
//!   incrementally (only patches whose cached route died); repairs clear
//!   the patches but never recompile the table.
//!
//! Every lookup path is **bit-identical** to the on-demand routers in
//! `abccc` — healthy queries to `DigitRouter::shortest()`, faulted
//! queries to `ResilientRouter::route_explained`, and
//! [`RouteService::query_vlb`] to `VlbRouter` — a contract pinned by the
//! property tests in `tests/equivalence.rs`.
//!
//! ## Example
//!
//! ```
//! use abccc::AbcccParams;
//! use dcn_fib::RouteService;
//! use netgraph::NodeId;
//!
//! let topo = abccc::Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap();
//! let svc = RouteService::compile(topo, 4).unwrap();
//! let out = svc.query(NodeId(0), NodeId(17)).unwrap();
//! assert_eq!(out.route.src(), NodeId(0));
//! assert_eq!(out.route.dst(), NodeId(17));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod hier;
mod service;
mod table;

pub use compile::{compile_shortest, compile_shortest_hier, Fib, FibCompiler, FibError};
pub use hier::HierFib;
pub use service::{InvalidationReport, RouteService};
pub use table::{FibLayout, FibTable};
