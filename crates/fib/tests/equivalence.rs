//! The crate's load-bearing contract: compiled lookups are **bit-identical**
//! to the on-demand routers — healthy and faulted, single and batched, at
//! any shard count — and incremental invalidation never changes an answer.

use abccc::{Abccc, AbcccParams, DigitRouter, ResilientRouter, RetryBudget, Router, VlbRouter};
use dcn_fib::{FibLayout, RouteService};
use netgraph::{FaultScenario, NodeId, RouteError, Topology};
use proptest::prelude::*;
use std::sync::Mutex;

fn topo(n: u32, k: u32, h: u32) -> Abccc {
    Abccc::new(AbcccParams::new(n, k, h).expect("params")).expect("topology")
}

/// The grids the properties sweep: a crossbar topology (m = 2) and a
/// BCube-degenerate one (m = 1, no crossbars).
const GRIDS: [(u32, u32, u32); 2] = [(3, 2, 2), (2, 3, 3)];

/// Draws `count` (src, dst) server pairs from a seeded stream (the
/// vendored proptest stand-in has no collection strategies).
fn sample_pairs(servers: u64, seed: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..servers) as u32),
                NodeId(rng.gen_range(0..servers) as u32),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Healthy plane: every batched answer equals
    /// `DigitRouter::shortest()`'s primary outcome — route, tier, attempts
    /// and backoff — at any shard count, with batch order preserved.
    #[test]
    fn healthy_batches_match_digit_router(
        which in 0usize..GRIDS.len(),
        shards in 1usize..5,
        pair_seed in any::<u64>(),
        count in 1usize..40,
    ) {
        let (n, k, h) = GRIDS[which];
        let t = topo(n, k, h);
        let pairs = sample_pairs(t.params().server_count(), pair_seed, count);
        let svc = RouteService::compile(topo(n, k, h), shards).expect("service");
        let digit = DigitRouter::shortest();
        let got = svc.query_batch(&pairs);
        prop_assert_eq!(got.len(), pairs.len());
        for (&(s, d), out) in pairs.iter().zip(&got) {
            let want = digit.route(&t, s, d, None);
            prop_assert_eq!(out, &want, "pair {} -> {}", s, d);
        }
    }

    /// Faulted plane: with a scenario-built mask installed, every answer —
    /// including errors — equals `ResilientRouter::route_explained` under
    /// the same mask and budget, at any shard count, and repeated queries
    /// (patch-cache hits) never drift.
    #[test]
    fn faulted_batches_match_resilient_router(
        which in 0usize..GRIDS.len(),
        shards in 1usize..5,
        scen_seed in 0u64..500,
        frac_milli in 0u64..250,
        pair_seed in any::<u64>(),
        count in 1usize..30,
    ) {
        let (n, k, h) = GRIDS[which];
        let t = topo(n, k, h);
        let pairs = sample_pairs(t.params().server_count(), pair_seed, count);
        let frac = frac_milli as f64 / 1000.0;
        let scenario = FaultScenario::seeded(scen_seed)
            .fail_servers_frac(frac)
            .fail_switches_frac(frac);
        let mask = scenario.build(t.network());

        let mut svc = RouteService::compile(topo(n, k, h), shards).expect("service");
        svc.apply_mask(mask.clone());
        let resilient = ResilientRouter::new(RetryBudget::default());

        for round in 0..2 {
            let got = svc.query_batch(&pairs);
            for (&(s, d), out) in pairs.iter().zip(&got) {
                let want = resilient.route_explained(&t, s, d, Some(&mask));
                prop_assert_eq!(out, &want, "round {} pair {} -> {}", round, s, d);
            }
        }
    }

    /// Sharding is invisible: 1-shard and N-shard services give identical
    /// answers for identical inputs, healthy and faulted, batch == single.
    #[test]
    fn shard_count_never_changes_an_answer(
        shards in 2usize..9,
        scen_seed in 0u64..200,
        pair_seed in any::<u64>(),
        count in 1usize..25,
    ) {
        let t = topo(3, 2, 2);
        let pairs = sample_pairs(t.params().server_count(), pair_seed, count);
        let scenario = FaultScenario::seeded(scen_seed).fail_servers_frac(0.1);

        let mut one = RouteService::compile(topo(3, 2, 2), 1).expect("service");
        let mut many = RouteService::compile(topo(3, 2, 2), shards).expect("service");
        prop_assert_eq!(one.shard_count(), 1);
        one.apply_scenario(&scenario);
        many.apply_scenario(&scenario);

        let a = one.query_batch(&pairs);
        let b = many.query_batch(&pairs);
        prop_assert_eq!(&a, &b);
        for (&(s, d), out) in pairs.iter().zip(&a) {
            prop_assert_eq!(&many.query(s, d), out);
        }
    }

    /// VLB from the table: `query_vlb` reproduces `VlbRouter::new(seed)`
    /// bit for bit — same per-pair RNG streams, routes, attempt counts and
    /// fault-obliviousness.
    #[test]
    fn vlb_queries_match_vlb_router(
        which in 0usize..GRIDS.len(),
        vlb_seed in 0u64..1000,
        scen_seed in 0u64..200,
        faulted in any::<bool>(),
        pair_seed in any::<u64>(),
        count in 1usize..25,
    ) {
        let (n, k, h) = GRIDS[which];
        let t = topo(n, k, h);
        let pairs = sample_pairs(t.params().server_count(), pair_seed, count);
        let mut svc = RouteService::compile(topo(n, k, h), 2).expect("service");
        let mask = faulted.then(|| {
            let m = FaultScenario::seeded(scen_seed)
                .fail_servers_frac(0.08)
                .build(t.network());
            svc.apply_mask(m.clone());
            m
        });
        let vlb = VlbRouter::new(vlb_seed);
        for &(s, d) in &pairs {
            let want = vlb.route(&t, s, d, mask.as_ref());
            prop_assert_eq!(svc.query_vlb(vlb_seed, s, d), want, "pair {} -> {}", s, d);
        }
    }

    /// Incremental invalidation: a service that accumulates faults
    /// mask-by-mask (warming patch caches along the way) answers exactly
    /// like a fresh service built directly on the final mask.
    #[test]
    fn accumulated_masks_match_a_fresh_service(
        scen_seed in 0u64..300,
        pair_seed in any::<u64>(),
        count in 1usize..25,
    ) {
        let t = topo(3, 2, 2);
        let pairs = sample_pairs(t.params().server_count(), pair_seed, count);

        // Three nested masks: each extends the previous failure set.
        let scenarios = [
            FaultScenario::seeded(scen_seed).fail_servers_frac(0.04),
            FaultScenario::seeded(scen_seed)
                .fail_servers_frac(0.04)
                .fail_switches_frac(0.08),
            FaultScenario::seeded(scen_seed)
                .fail_servers_frac(0.04)
                .fail_switches_frac(0.08)
                .fail_links_frac(0.05),
        ];
        let masks: Vec<_> = scenarios.iter().map(|s| s.build(t.network())).collect();
        prop_assert!(masks[1].covers(&masks[0]));
        prop_assert!(masks[2].covers(&masks[1]));

        let mut grown = RouteService::compile(topo(3, 2, 2), 4).expect("service");
        for m in &masks {
            let report = grown.apply_mask(m.clone());
            prop_assert!(report.incremental, "superset masks must patch incrementally");
            grown.query_batch(&pairs); // warm the patch caches between steps
        }
        let mut fresh = RouteService::compile(topo(3, 2, 2), 4).expect("service");
        fresh.apply_mask(masks[2].clone());
        prop_assert_eq!(grown.query_batch(&pairs), fresh.query_batch(&pairs));

        // A repair (dropping back to the first mask) is a full clear — and
        // still answers like a fresh service on that mask.
        let report = grown.apply_mask(masks[0].clone());
        prop_assert!(!report.incremental || masks[0].covers(&masks[2]));
        let mut fresh0 = RouteService::compile(topo(3, 2, 2), 4).expect("service");
        fresh0.apply_mask(masks[0].clone());
        prop_assert_eq!(grown.query_batch(&pairs), fresh0.query_batch(&pairs));
    }

    /// Layout is invisible: a hierarchical-layout service accumulates the
    /// same fault-mask chain as a dense-layout one and answers every query
    /// — healthy, faulted, batched, VLB — bit-identically, at any shard
    /// count (the two services may even shard differently).
    #[test]
    fn hier_layout_matches_dense_under_accumulated_masks(
        which in 0usize..GRIDS.len(),
        dense_shards in 1usize..5,
        hier_shards in 1usize..5,
        scen_seed in 0u64..300,
        vlb_seed in 0u64..1000,
        pair_seed in any::<u64>(),
        count in 1usize..25,
    ) {
        let (n, k, h) = GRIDS[which];
        let t = topo(n, k, h);
        let pairs = sample_pairs(t.params().server_count(), pair_seed, count);

        let mut dense =
            RouteService::compile_with_layout(topo(n, k, h), FibLayout::Dense, dense_shards)
                .expect("dense service");
        let mut hier =
            RouteService::compile_with_layout(topo(n, k, h), FibLayout::Hier, hier_shards)
                .expect("hier service");
        prop_assert_eq!(dense.table().layout(), FibLayout::Dense);
        prop_assert_eq!(hier.table().layout(), FibLayout::Hier);
        prop_assert!(dense.table().bytes() > hier.table().bytes());

        // Healthy plane first.
        prop_assert_eq!(dense.query_batch(&pairs), hier.query_batch(&pairs));

        // Then a nested chain of masks, warming patch caches between steps.
        let scenarios = [
            FaultScenario::seeded(scen_seed).fail_servers_frac(0.05),
            FaultScenario::seeded(scen_seed)
                .fail_servers_frac(0.05)
                .fail_switches_frac(0.08),
            FaultScenario::seeded(scen_seed)
                .fail_servers_frac(0.05)
                .fail_switches_frac(0.08)
                .fail_links_frac(0.06),
        ];
        for scenario in &scenarios {
            let m = scenario.build(t.network());
            let rd = dense.apply_mask(m.clone());
            let rh = hier.apply_mask(m);
            prop_assert_eq!(rd.incremental, rh.incremental);
            prop_assert_eq!(dense.query_batch(&pairs), hier.query_batch(&pairs));
            for &(s, d) in &pairs {
                prop_assert_eq!(
                    dense.query_vlb(vlb_seed, s, d),
                    hier.query_vlb(vlb_seed, s, d),
                    "vlb pair {} -> {}", s, d
                );
            }
        }
    }
}

/// A `Router` adapter over the compiled service, used to drive the
/// resilience campaign engine through `run_with`.
struct FibRouter {
    svc: Mutex<RouteService>,
}

impl FibRouter {
    fn new(topo: Abccc) -> Self {
        FibRouter {
            svc: Mutex::new(RouteService::compile(topo, 4).expect("service")),
        }
    }
}

impl Router for FibRouter {
    fn name(&self) -> String {
        // Mirror the router the service falls back to, so campaign reports
        // (which embed the router name) compare equal byte for byte.
        "resilient".to_string()
    }

    fn route(
        &self,
        _topo: &Abccc,
        src: NodeId,
        dst: NodeId,
        mask: Option<&netgraph::FaultMask>,
    ) -> Result<abccc::RouteOutcome, RouteError> {
        let mut svc = self.svc.lock().expect("service");
        match mask {
            None => {
                if svc.mask().is_some() {
                    svc.clear_faults();
                }
            }
            Some(m) => {
                if svc.mask() != Some(m) {
                    svc.apply_mask(m.clone());
                }
            }
        }
        svc.query(src, dst)
    }
}

/// The whole campaign engine, swapped onto the compiled data plane via
/// `run_with`, produces a byte-identical report to the on-demand
/// `ResilientRouter` campaign — sampling, fault schedules, tier counts,
/// stretch and throughput accounting included.
#[test]
fn campaign_on_compiled_plane_matches_on_demand_report() {
    use dcn_resilience::{CampaignConfig, RouterSpec, ScenarioKind};

    let params = AbcccParams::new(3, 2, 2).expect("params");
    let config = CampaignConfig::new()
        .scenario(ScenarioKind::Uniform {
            server_rate: 0.06,
            switch_rate: 0.06,
            link_rate: 0.0,
        })
        .router(RouterSpec::Resilient(RetryBudget::default()))
        .trials(3)
        .pairs_per_trial(24)
        .seed(17);

    let t = Abccc::new(params).expect("topology");
    let on_demand = config.run_on(&t).expect("campaign");
    let compiled = config
        .run_with(&t, &|| {
            Box::new(FibRouter::new(Abccc::new(params).expect("topology")))
        })
        .expect("campaign");
    assert_eq!(on_demand, compiled);
    assert_eq!(
        serde_json::to_string_pretty(&on_demand).expect("serialize"),
        serde_json::to_string_pretty(&compiled).expect("serialize"),
    );
}
