//! Campaign-engine invariants: seed determinism and the zero-fault
//! oracle.

use abccc::{Abccc, AbcccParams, PermStrategy, RetryBudget, RouteTier};
use dcn_resilience::{CampaignConfig, PairSampling, RouterSpec, ScenarioKind};
use proptest::prelude::*;

fn cube() -> Abccc {
    Abccc::new(AbcccParams::new(3, 2, 2).expect("params")).expect("topology")
}

fn config(seed: u64, rate_milli: u64, router: RouterSpec) -> CampaignConfig {
    CampaignConfig::new()
        .scenario(ScenarioKind::Uniform {
            server_rate: rate_milli as f64 / 1000.0,
            switch_rate: rate_milli as f64 / 1000.0,
            link_rate: 0.0,
        })
        .trials(3)
        .pairs_per_trial(16)
        .seed(seed)
        .router(router)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical seeds yield bit-identical degradation reports — including
    /// the serialized form — regardless of worker-thread count; different
    /// seeds diverge in the failure draw.
    #[test]
    fn identical_seeds_yield_bit_identical_reports(
        seed in 0u64..1000,
        rate_milli in 0u64..200,
        threads in 1usize..5,
    ) {
        let a = config(seed, rate_milli, RouterSpec::Resilient(RetryBudget::default()))
            .threads(1)
            .run_on(&cube())
            .expect("campaign");
        let b = config(seed, rate_milli, RouterSpec::Resilient(RetryBudget::default()))
            .threads(threads)
            .run_on(&cube())
            .expect("campaign");
        prop_assert_eq!(&a, &b);
        let ja = serde_json::to_string_pretty(&a).expect("serialize");
        let jb = serde_json::to_string_pretty(&b).expect("serialize");
        prop_assert_eq!(ja, jb);
    }

    /// Every router spec is deterministic under the campaign engine, not
    /// just the default one.
    #[test]
    fn all_router_specs_are_deterministic(seed in 0u64..500, which in 0usize..3) {
        let router = [
            RouterSpec::Resilient(RetryBudget::default()),
            RouterSpec::Digit(PermStrategy::DestinationAware),
            RouterSpec::Vlb { seed: 5 },
        ][which];
        let a = config(seed, 80, router).measure_throughput(false).run_on(&cube()).expect("campaign");
        let b = config(seed, 80, router).measure_throughput(false).run_on(&cube()).expect("campaign");
        prop_assert_eq!(a, b);
    }
}

/// Oracle: at a 0% fault rate every trial must match the fault-free
/// baseline exactly — full connectivity, full completion, stretch 1, full
/// throughput retention, every pair answered by the primary tier with one
/// attempt and no backoff.
#[test]
fn zero_fault_rate_matches_fault_free_baseline_exactly() {
    let report = CampaignConfig::new()
        .scenario(ScenarioKind::Uniform {
            server_rate: 0.0,
            switch_rate: 0.0,
            link_rate: 0.0,
        })
        .trials(4)
        .pairs_per_trial(32)
        .seed(99)
        .run_on(&cube())
        .expect("campaign");
    for t in &report.trials {
        assert_eq!(t.failed_nodes, 0.0);
        assert_eq!(t.failed_links, 0.0);
        assert_eq!(t.connectivity_fraction, 1.0);
        assert_eq!(t.pairs_skipped_endpoint, 0);
        assert_eq!(t.unreachable, 0);
        assert_eq!(t.gave_up, 0);
        assert_eq!(t.route_completion, 1.0);
        assert_eq!(t.mean_stretch, 1.0, "trial {}", t.trial);
        assert_eq!(t.max_stretch, 1.0);
        assert_eq!(t.throughput_retention, 1.0);
        assert_eq!(t.tier_counts.total(), t.tier_counts.primary);
        assert_eq!(t.attempts_total, t.routed as u64);
        assert_eq!(t.backoff_units_total, 0);
    }
    assert_eq!(report.summary.route_completion, 1.0);
    assert_eq!(report.summary.mean_stretch, 1.0);
    assert_eq!(report.summary.throughput_retention, 1.0);
}

/// The adversarial convergent pattern survives the campaign plumbing: VLB
/// keeps completing routes under uniform faults while reporting only
/// primary-tier outcomes (it never escalates).
#[test]
fn convergent_vlb_campaign_reports_primary_only() {
    let report = CampaignConfig::new()
        .scenario(ScenarioKind::Uniform {
            server_rate: 0.05,
            switch_rate: 0.0,
            link_rate: 0.0,
        })
        .sampling(PairSampling::Convergent)
        .router(RouterSpec::Vlb { seed: 3 })
        .trials(2)
        .measure_throughput(false)
        .seed(4)
        .run_on(&cube())
        .expect("campaign");
    let tiers = &report.summary.tier_counts;
    assert_eq!(tiers.total(), tiers.primary);
    assert!(report.summary.routed > 0);
    // RouteTier labels stay stable for downstream JSON consumers.
    assert_eq!(RouteTier::Proxy.label(), "proxy");
}
