//! Degradation reports: per-trial measurements and campaign aggregates.

use abccc::RouteTier;
use serde::{Deserialize, Serialize};

/// How many routed pairs each escalation tier answered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierCounts {
    /// Primary shortest-path route survived the faults.
    pub primary: u64,
    /// Another deterministic permutation succeeded.
    pub deterministic: u64,
    /// A randomized digit-correction permutation succeeded.
    pub random_perm: u64,
    /// A proxy detour succeeded.
    pub proxy: u64,
    /// The omniscient BFS fallback succeeded.
    pub bfs: u64,
}

impl TierCounts {
    /// Records one outcome.
    pub fn record(&mut self, tier: RouteTier) {
        match tier {
            RouteTier::Primary => self.primary += 1,
            RouteTier::Deterministic => self.deterministic += 1,
            RouteTier::RandomPerm => self.random_perm += 1,
            RouteTier::Proxy => self.proxy += 1,
            RouteTier::Bfs => self.bfs += 1,
        }
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &TierCounts) {
        self.primary += other.primary;
        self.deterministic += other.deterministic;
        self.random_perm += other.random_perm;
        self.proxy += other.proxy;
        self.bfs += other.bfs;
    }

    /// Total routed pairs.
    pub fn total(&self) -> u64 {
        self.primary + self.deterministic + self.random_perm + self.proxy + self.bfs
    }
}

/// Everything one trial measured, aggregated over its time steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialReport {
    /// Trial index within the campaign.
    pub trial: usize,
    /// The seed this trial's streams derive from.
    pub seed: u64,
    /// Time steps evaluated (1 unless the scenario flaps).
    pub steps: usize,
    /// Failed nodes under the mask, averaged over steps.
    pub failed_nodes: f64,
    /// Failed links under the mask, averaged over steps.
    pub failed_links: f64,
    /// Server fraction of the largest surviving component, averaged over
    /// steps.
    pub connectivity_fraction: f64,
    /// Pairs sampled across all steps.
    pub pairs_total: usize,
    /// Pairs dropped because an endpoint was down.
    pub pairs_skipped_endpoint: usize,
    /// Pairs the router completed.
    pub routed: usize,
    /// Pairs the router proved disconnected.
    pub unreachable: usize,
    /// Pairs the router abandoned with budget left unreported (fault-
    /// oblivious routers or a disabled BFS fallback).
    pub gave_up: usize,
    /// `routed / (routed + unreachable + gave_up)`; 1.0 for an empty set.
    pub route_completion: f64,
    /// Mean hops / fault-free-distance over routed pairs (1.0 = no
    /// detour).
    pub mean_stretch: f64,
    /// Worst stretch over routed pairs.
    pub max_stretch: f64,
    /// Mean server hops over routed pairs.
    pub mean_hops: f64,
    /// Σ max-min rates of the surviving flows, averaged over steps.
    pub aggregate_rate: f64,
    /// Worst max-min rate among surviving flows, averaged over steps.
    pub min_rate: f64,
    /// Faulted aggregate over the fault-free aggregate of the same pairs
    /// (1.0 = no loss; 1.0 when throughput was not measured).
    pub throughput_retention: f64,
    /// Which escalation tier answered, per routed pair.
    pub tier_counts: TierCounts,
    /// Candidate routes examined across all pairs.
    pub attempts_total: u64,
    /// Deterministic backoff units accrued across all pairs.
    pub backoff_units_total: u64,
}

/// Campaign-level aggregates (means over trials, totals over counters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Trials aggregated.
    pub trials: usize,
    /// Mean connectivity fraction.
    pub connectivity_fraction: f64,
    /// Mean route-completion rate.
    pub route_completion: f64,
    /// Mean of the trials' mean stretches.
    pub mean_stretch: f64,
    /// Worst stretch seen in any trial.
    pub max_stretch: f64,
    /// Mean throughput retention.
    pub throughput_retention: f64,
    /// Total tier counts over all trials.
    pub tier_counts: TierCounts,
    /// Total attempts over all trials.
    pub attempts_total: u64,
    /// Total backoff units over all trials.
    pub backoff_units_total: u64,
    /// Total routed pairs.
    pub routed: u64,
    /// Total unreachable pairs.
    pub unreachable: u64,
    /// Total abandoned pairs.
    pub gave_up: u64,
}

/// The full outcome of a campaign: configuration echo, per-trial reports
/// and the aggregate summary. Serialization is byte-stable: identical
/// configuration (including seed) produces identical JSON regardless of
/// worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Topology the campaign ran on (display form).
    pub topology: String,
    /// Scenario label (see `ScenarioKind::label`).
    pub scenario: String,
    /// Router name (see `abccc::Router::name`).
    pub router: String,
    /// Campaign seed.
    pub seed: u64,
    /// Per-trial degradation reports, in trial order.
    pub trials: Vec<TrialReport>,
    /// Aggregates over the trials.
    pub summary: CampaignSummary,
}

impl CampaignReport {
    pub(crate) fn summarize(
        topology: String,
        scenario: String,
        router: String,
        seed: u64,
        trials: Vec<TrialReport>,
    ) -> Self {
        let n = trials.len().max(1) as f64;
        let mut summary = CampaignSummary {
            trials: trials.len(),
            connectivity_fraction: 0.0,
            route_completion: 0.0,
            mean_stretch: 0.0,
            max_stretch: 0.0,
            throughput_retention: 0.0,
            tier_counts: TierCounts::default(),
            attempts_total: 0,
            backoff_units_total: 0,
            routed: 0,
            unreachable: 0,
            gave_up: 0,
        };
        for t in &trials {
            summary.connectivity_fraction += t.connectivity_fraction / n;
            summary.route_completion += t.route_completion / n;
            summary.mean_stretch += t.mean_stretch / n;
            summary.max_stretch = summary.max_stretch.max(t.max_stretch);
            summary.throughput_retention += t.throughput_retention / n;
            summary.tier_counts.add(&t.tier_counts);
            summary.attempts_total += t.attempts_total;
            summary.backoff_units_total += t.backoff_units_total;
            summary.routed += t.routed as u64;
            summary.unreachable += t.unreachable as u64;
            summary.gave_up += t.gave_up as u64;
        }
        CampaignReport {
            topology,
            scenario,
            router,
            seed,
            trials,
            summary,
        }
    }
}
