//! The campaign engine: configuration, parallel trial execution.

use crate::report::{CampaignReport, TierCounts, TrialReport};
use crate::{mix_seed, ScenarioKind};
use abccc::{
    routing, Abccc, CubeLabel, DigitRouter, PermStrategy, ResilientRouter, RetryBudget, RouteTier,
    Router, ServerAddr, VlbRouter,
};
use dcn_sim::{max_min_allocation, DirectedLink};
use netgraph::{FaultMask, Network, NetworkError, NodeId, Route, RouteError, Topology};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which [`Router`] a campaign drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RouterSpec {
    /// The escalating fault-tolerant router under a [`RetryBudget`].
    Resilient(RetryBudget),
    /// Fault-oblivious deterministic digit correction.
    Digit(PermStrategy),
    /// Fault-oblivious Valiant load balancing (per-pair seed given).
    Vlb {
        /// Seed of the per-pair intermediate streams.
        seed: u64,
    },
}

impl RouterSpec {
    pub(crate) fn build(&self) -> Box<dyn Router> {
        match *self {
            RouterSpec::Resilient(budget) => Box::new(ResilientRouter::new(budget)),
            RouterSpec::Digit(strategy) => Box::new(DigitRouter::new(strategy)),
            RouterSpec::Vlb { seed } => Box::new(VlbRouter::new(seed)),
        }
    }
}

/// How each trial samples its source→destination pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairSampling {
    /// `pairs` uniform random ordered pairs per time step (self-pairs
    /// redrawn away by skipping, dead endpoints counted and skipped).
    UniformRandom {
        /// Pairs drawn per time step.
        pairs: usize,
    },
    /// A fresh random permutation over the surviving servers per step.
    Permutation,
    /// The adversarial convergent pattern (all `m` flows of every group
    /// correct the same digit), filtered to surviving endpoints.
    Convergent,
}

/// A configured, runnable fault campaign. Construct with
/// [`CampaignConfig::new`], chain the builder methods, then hand any
/// materialized [`Topology`] to [`run_on`].
///
/// The campaign is topology-agnostic: on an [`Abccc`] instance it drives
/// the configured [`RouterSpec`] control plane (escalation tiers, retry
/// accounting — exactly the historical behavior); on any other family it
/// drives the family's **native plane**, `Topology::route_avoiding`, so
/// Jellyfish, Space Shuffle and the rest degrade under the same seeded
/// scenarios without family-specific code here.
///
/// [`run_on`]: CampaignConfig::run_on
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// What breaks per trial.
    pub scenario: ScenarioKind,
    /// Which router carries the traffic.
    pub router: RouterSpec,
    /// How pairs are sampled.
    pub pairs: PairSampling,
    /// Independent trials.
    pub trials: usize,
    /// Campaign seed — the single source of all randomness.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Whether to run the max-min throughput simulation per step.
    pub measure_throughput: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl CampaignConfig {
    /// A default campaign: 5% uniform server+switch faults, the resilient
    /// router with its default budget, 64 random pairs per trial, 8
    /// trials, seed 0, throughput measured.
    pub fn new() -> Self {
        CampaignConfig {
            scenario: ScenarioKind::Uniform {
                server_rate: 0.05,
                switch_rate: 0.05,
                link_rate: 0.0,
            },
            router: RouterSpec::Resilient(RetryBudget::default()),
            pairs: PairSampling::UniformRandom { pairs: 64 },
            trials: 8,
            seed: 0,
            threads: 0,
            measure_throughput: true,
        }
    }

    /// Sets the fault scenario.
    #[must_use]
    pub fn scenario(mut self, scenario: ScenarioKind) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the router under test.
    #[must_use]
    pub fn router(mut self, router: RouterSpec) -> Self {
        self.router = router;
        self
    }

    /// Sets the pair-sampling policy.
    #[must_use]
    pub fn sampling(mut self, pairs: PairSampling) -> Self {
        self.pairs = pairs;
        self
    }

    /// Sets uniform-random sampling with `pairs` pairs per step.
    #[must_use]
    pub fn pairs_per_trial(self, pairs: usize) -> Self {
        self.sampling(PairSampling::UniformRandom { pairs })
    }

    /// Sets the number of independent trials.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the campaign seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (0 = all available cores). Never
    /// changes the report, only how fast it arrives.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the per-step max-min throughput simulation.
    #[must_use]
    pub fn measure_throughput(mut self, on: bool) -> Self {
        self.measure_throughput = on;
        self
    }

    /// Checks the configuration without running anything.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Network`] wrapping the
    /// [`NetworkError::InvalidParameter`] that describes the first
    /// malformed field.
    pub fn validate(&self) -> Result<(), RouteError> {
        if self.trials == 0 {
            return Err(NetworkError::InvalidParameter {
                name: "trials",
                reason: "a campaign needs at least one trial".into(),
            }
            .into());
        }
        if let PairSampling::UniformRandom { pairs } = self.pairs {
            if pairs == 0 {
                return Err(NetworkError::InvalidParameter {
                    name: "pairs",
                    reason: "uniform sampling needs at least one pair per step".into(),
                }
                .into());
            }
        }
        Ok(())
    }

    /// Runs the campaign over an already-materialized topology of any
    /// family. ABCCC instances get the configured [`RouterSpec`] control
    /// plane; every other family is driven through its native
    /// [`Topology::route_avoiding`] plane.
    ///
    /// # Errors
    ///
    /// * [`RouteError::Network`] — invalid configuration, a cube-only
    ///   scenario or convergent sampling on a non-ABCCC topology;
    /// * [`RouteError::NotAServer`] — cannot happen from campaign-sampled
    ///   pairs, but propagated defensively.
    pub fn run_on(&self, topo: &(dyn Topology + Sync)) -> Result<CampaignReport, RouteError> {
        if let Some(cube) = topo.as_any().downcast_ref::<Abccc>() {
            self.run_with(cube, &|| self.router.build())
        } else {
            self.run_campaign(&Plane::Native { topo })
        }
    }

    /// Runs the campaign with routers produced by an external factory
    /// instead of [`CampaignConfig::router`] — each worker thread builds
    /// its own router, so the factory must hand out equivalent instances.
    ///
    /// This is the hook for alternative data planes (e.g. `dcn-fib`'s
    /// compiled route service wrapped as a [`Router`]): the campaign's
    /// sampling, fault schedule and accounting stay byte-identical, only
    /// the per-pair routing call is swapped.
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignConfig::run_on`].
    pub fn run_with(
        &self,
        topo: &Abccc,
        router: &(dyn Fn() -> Box<dyn Router> + Sync),
    ) -> Result<CampaignReport, RouteError> {
        self.run_campaign(&Plane::Abccc { topo, router })
    }

    fn run_campaign(&self, plane: &Plane<'_>) -> Result<CampaignReport, RouteError> {
        self.validate()?;
        self.scenario.validate_for(plane.topology())?;
        if matches!(plane, Plane::Native { .. }) && self.pairs == PairSampling::Convergent {
            return Err(NetworkError::InvalidParameter {
                name: "pairs",
                reason: format!(
                    "convergent sampling needs ABCCC cube labels; {} has none",
                    plane.topology().name()
                ),
            }
            .into());
        }
        let _span = dcn_telemetry::span!("resilience.campaign");
        dcn_telemetry::counter!("resilience.campaigns").inc();
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
        .min(self.trials)
        .max(1);

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<TrialReport>>> = Mutex::new(vec![None; self.trials]);
        let first_err: Mutex<Option<RouteError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let router = match plane {
                        Plane::Abccc { router, .. } => Some(router()),
                        Plane::Native { .. } => None,
                    };
                    loop {
                        let trial = next.fetch_add(1, Ordering::Relaxed);
                        if trial >= self.trials {
                            break;
                        }
                        let result = match plane {
                            Plane::Abccc { topo, .. } => {
                                let router = router.as_deref().expect("abccc plane router");
                                run_trial(self, topo, router, trial)
                            }
                            Plane::Native { topo } => run_trial_native(self, *topo, trial),
                        };
                        match result {
                            Ok(report) => {
                                slots.lock().expect("trial slots")[trial] = Some(report);
                            }
                            Err(e) => {
                                first_err.lock().expect("err slot").get_or_insert(e);
                                break;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_err.into_inner().expect("err slot") {
            return Err(e);
        }
        let trials: Vec<TrialReport> = slots
            .into_inner()
            .expect("trial slots")
            .into_iter()
            .map(|t| t.expect("every trial completed"))
            .collect();
        dcn_telemetry::counter!("resilience.trials").add(trials.len() as u64);
        Ok(CampaignReport::summarize(
            plane.topology().name(),
            self.scenario.label().to_string(),
            plane.router_name(),
            self.seed,
            trials,
        ))
    }
}

/// Which routing plane a campaign drives over its topology.
enum Plane<'a> {
    /// The ABCCC control plane: a [`RouterSpec`]/factory-built [`Router`]
    /// with escalation tiers and retry accounting.
    Abccc {
        topo: &'a Abccc,
        router: &'a (dyn Fn() -> Box<dyn Router> + Sync),
    },
    /// Any other family: its native fault-avoiding routing,
    /// [`Topology::route_avoiding`].
    Native { topo: &'a (dyn Topology + Sync) },
}

impl Plane<'_> {
    fn topology(&self) -> &dyn Topology {
        match self {
            Plane::Abccc { topo, .. } => *topo,
            Plane::Native { topo } => *topo,
        }
    }

    fn router_name(&self) -> String {
        match self {
            Plane::Abccc { router, .. } => router().name(),
            Plane::Native { .. } => "native".to_string(),
        }
    }
}

/// Samples the pairs for one time step. Returns `(pairs, skipped)` where
/// `skipped` counts draws dropped because an endpoint was down.
fn sample_pairs(
    topo: &dyn Topology,
    mask: &FaultMask,
    sampling: PairSampling,
    seed: u64,
) -> (Vec<(NodeId, NodeId)>, usize) {
    let n = topo.server_count() as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut skipped = 0usize;
    let mut out = Vec::new();
    match sampling {
        PairSampling::UniformRandom { pairs } => {
            for _ in 0..pairs {
                let s = NodeId(rng.gen_range(0..n) as u32);
                let d = NodeId(rng.gen_range(0..n) as u32);
                if s == d {
                    continue;
                }
                if !mask.node_alive(s) || !mask.node_alive(d) {
                    skipped += 1;
                    continue;
                }
                out.push((s, d));
            }
        }
        PairSampling::Permutation => {
            use rand::seq::SliceRandom;
            let alive: Vec<NodeId> = topo
                .network()
                .server_ids()
                .filter(|&s| mask.node_alive(s))
                .collect();
            skipped = n as usize - alive.len();
            let mut dsts = alive.clone();
            dsts.shuffle(&mut rng);
            out.extend(
                alive
                    .iter()
                    .zip(&dsts)
                    .filter(|(s, d)| s != d)
                    .map(|(&s, &d)| (s, d)),
            );
        }
        PairSampling::Convergent => {
            let p = topo
                .as_any()
                .downcast_ref::<Abccc>()
                .expect("convergent sampling validated for an ABCCC topology")
                .params();
            for raw in 0..p.label_space() {
                let label = CubeLabel(raw);
                let d0 = label.digit(p, 0);
                let dst_label = label.with_digit(p, 0, (d0 + 1) % p.n());
                for j in 0..p.group_size() {
                    let s = ServerAddr::new(p, label, j).node_id(p);
                    let d = ServerAddr::new(p, dst_label, j).node_id(p);
                    if !mask.node_alive(s) || !mask.node_alive(d) {
                        skipped += 1;
                        continue;
                    }
                    out.push((s, d));
                }
            }
        }
    }
    (out, skipped)
}

/// Σ of the finite max-min rates of `routes`, plus the worst finite rate.
fn allocate(net: &Network, routes: &[Route]) -> (f64, f64) {
    if routes.is_empty() {
        return (0.0, 0.0);
    }
    let flows: Vec<Vec<DirectedLink>> = routes
        .iter()
        .map(|r| DirectedLink::of_route(net, r))
        .collect();
    let rates = max_min_allocation(net, &flows);
    let finite: Vec<f64> = rates.into_iter().filter(|r| r.is_finite()).collect();
    if finite.is_empty() {
        return (0.0, 0.0);
    }
    let aggregate = finite.iter().sum();
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    (aggregate, min)
}

fn run_trial(
    config: &CampaignConfig,
    topo: &Abccc,
    router: &dyn Router,
    trial: usize,
) -> Result<TrialReport, RouteError> {
    let _span = dcn_telemetry::span!("resilience.trial");
    let _trial_timer = dcn_telemetry::histogram!("resilience.trial_ns").start_timer();
    let p = topo.params();
    let net = topo.network();
    let trial_seed = mix_seed(config.seed, trial as u64);
    let steps = config.scenario.steps();

    let mut failed_nodes = 0.0;
    let mut failed_links = 0.0;
    let mut connectivity = 0.0;
    let mut pairs_total = 0usize;
    let mut skipped = 0usize;
    let mut routed = 0usize;
    let mut unreachable = 0usize;
    let mut gave_up = 0usize;
    let mut tiers = TierCounts::default();
    let mut attempts_total = 0u64;
    let mut backoff_total = 0u64;
    let mut stretch_sum = 0.0f64;
    let mut max_stretch = 0.0f64;
    let mut hops_sum = 0u64;
    let mut aggregate = 0.0f64;
    let mut min_rate = 0.0f64;
    let mut retention = 0.0f64;

    for step in 0..steps {
        let mask = config.scenario.mask_for(topo, trial_seed, step);
        failed_nodes += mask.failed_node_count() as f64 / steps as f64;
        failed_links += mask.failed_link_count() as f64 / steps as f64;
        connectivity += netgraph::connectivity::largest_component_server_fraction(net, Some(&mask))
            / steps as f64;

        let pair_seed = mix_seed(trial_seed, 0x5EED_0000 + step as u64);
        let (pairs, step_skipped) = sample_pairs(topo, &mask, config.pairs, pair_seed);
        pairs_total += pairs.len() + step_skipped;
        skipped += step_skipped;

        let mut survivors: Vec<Route> = Vec::with_capacity(pairs.len());
        let mut baseline: Vec<Route> = Vec::with_capacity(pairs.len());
        for &(s, d) in &pairs {
            match router.route(topo, s, d, Some(&mask)) {
                Ok(out) => {
                    routed += 1;
                    tiers.record(out.tier);
                    attempts_total += u64::from(out.attempts);
                    backoff_total += out.backoff_units;
                    let hops = routing::hops(&out.route) as u64;
                    hops_sum += hops;
                    let fault_free = routing::distance(p, topo.server_addr(s), topo.server_addr(d));
                    let stretch = if fault_free == 0 {
                        1.0
                    } else {
                        hops as f64 / fault_free as f64
                    };
                    stretch_sum += stretch;
                    max_stretch = max_stretch.max(stretch);
                    if config.measure_throughput {
                        survivors.push(out.route);
                        baseline.push(router.route_simple(topo, s, d)?);
                    }
                }
                Err(RouteError::Unreachable { .. }) => unreachable += 1,
                Err(RouteError::GaveUp { .. }) => gave_up += 1,
                Err(e) => return Err(e),
            }
        }
        if config.measure_throughput {
            let (agg, min) = allocate(net, &survivors);
            let (base_agg, _) = allocate(net, &baseline);
            aggregate += agg / steps as f64;
            min_rate += min / steps as f64;
            retention += if base_agg == 0.0 { 1.0 } else { agg / base_agg } / steps as f64;
        } else {
            retention += 1.0 / steps as f64;
        }
    }

    dcn_telemetry::counter!("resilience.pairs_routed").add(routed as u64);
    dcn_telemetry::counter!("resilience.pairs_unroutable").add((unreachable + gave_up) as u64);
    dcn_telemetry::histogram!("resilience.trial_attempts").record(attempts_total);

    let decided = routed + unreachable + gave_up;
    Ok(TrialReport {
        trial,
        seed: trial_seed,
        steps,
        failed_nodes,
        failed_links,
        connectivity_fraction: connectivity,
        pairs_total,
        pairs_skipped_endpoint: skipped,
        routed,
        unreachable,
        gave_up,
        route_completion: if decided == 0 {
            1.0
        } else {
            routed as f64 / decided as f64
        },
        mean_stretch: if routed == 0 {
            0.0
        } else {
            stretch_sum / routed as f64
        },
        max_stretch,
        mean_hops: if routed == 0 {
            0.0
        } else {
            hops_sum as f64 / routed as f64
        },
        aggregate_rate: aggregate,
        min_rate,
        throughput_retention: retention,
        tier_counts: tiers,
        attempts_total,
        backoff_units_total: backoff_total,
    })
}

/// One trial on the native plane: the family's own fault-avoiding routing,
/// one attempt per pair. Hops and stretch are measured in link hops against
/// the family's fault-free route (the closed-form distance the ABCCC plane
/// uses has no analogue here); every completed route counts as tier
/// `Primary` with one attempt and no backoff.
fn run_trial_native(
    config: &CampaignConfig,
    topo: &dyn Topology,
    trial: usize,
) -> Result<TrialReport, RouteError> {
    let _span = dcn_telemetry::span!("resilience.trial");
    let _trial_timer = dcn_telemetry::histogram!("resilience.trial_ns").start_timer();
    let net = topo.network();
    let trial_seed = mix_seed(config.seed, trial as u64);
    let steps = config.scenario.steps();

    let mut failed_nodes = 0.0;
    let mut failed_links = 0.0;
    let mut connectivity = 0.0;
    let mut pairs_total = 0usize;
    let mut skipped = 0usize;
    let mut routed = 0usize;
    let mut unreachable = 0usize;
    let mut gave_up = 0usize;
    let mut tiers = TierCounts::default();
    let mut attempts_total = 0u64;
    let mut stretch_sum = 0.0f64;
    let mut max_stretch = 0.0f64;
    let mut hops_sum = 0u64;
    let mut aggregate = 0.0f64;
    let mut min_rate = 0.0f64;
    let mut retention = 0.0f64;

    for step in 0..steps {
        let mask = config.scenario.mask_for(topo, trial_seed, step);
        failed_nodes += mask.failed_node_count() as f64 / steps as f64;
        failed_links += mask.failed_link_count() as f64 / steps as f64;
        connectivity += netgraph::connectivity::largest_component_server_fraction(net, Some(&mask))
            / steps as f64;

        let pair_seed = mix_seed(trial_seed, 0x5EED_0000 + step as u64);
        let (pairs, step_skipped) = sample_pairs(topo, &mask, config.pairs, pair_seed);
        pairs_total += pairs.len() + step_skipped;
        skipped += step_skipped;

        let mut survivors: Vec<Route> = Vec::with_capacity(pairs.len());
        let mut baseline: Vec<Route> = Vec::with_capacity(pairs.len());
        for &(s, d) in &pairs {
            match topo.route_avoiding(s, d, &mask) {
                Ok(route) => {
                    routed += 1;
                    tiers.record(RouteTier::Primary);
                    attempts_total += 1;
                    let hops = route.link_hops() as u64;
                    hops_sum += hops;
                    let fault_free = topo.route(s, d)?;
                    let free_hops = fault_free.link_hops();
                    let stretch = if free_hops == 0 {
                        1.0
                    } else {
                        hops as f64 / free_hops as f64
                    };
                    stretch_sum += stretch;
                    max_stretch = max_stretch.max(stretch);
                    if config.measure_throughput {
                        survivors.push(route);
                        baseline.push(fault_free);
                    }
                }
                Err(RouteError::Unreachable { .. }) => unreachable += 1,
                Err(RouteError::GaveUp { .. }) => gave_up += 1,
                Err(e) => return Err(e),
            }
        }
        if config.measure_throughput {
            let (agg, min) = allocate(net, &survivors);
            let (base_agg, _) = allocate(net, &baseline);
            aggregate += agg / steps as f64;
            min_rate += min / steps as f64;
            retention += if base_agg == 0.0 { 1.0 } else { agg / base_agg } / steps as f64;
        } else {
            retention += 1.0 / steps as f64;
        }
    }

    dcn_telemetry::counter!("resilience.pairs_routed").add(routed as u64);
    dcn_telemetry::counter!("resilience.pairs_unroutable").add((unreachable + gave_up) as u64);
    dcn_telemetry::histogram!("resilience.trial_attempts").record(attempts_total);

    let decided = routed + unreachable + gave_up;
    Ok(TrialReport {
        trial,
        seed: trial_seed,
        steps,
        failed_nodes,
        failed_links,
        connectivity_fraction: connectivity,
        pairs_total,
        pairs_skipped_endpoint: skipped,
        routed,
        unreachable,
        gave_up,
        route_completion: if decided == 0 {
            1.0
        } else {
            routed as f64 / decided as f64
        },
        mean_stretch: if routed == 0 {
            0.0
        } else {
            stretch_sum / routed as f64
        },
        max_stretch,
        mean_hops: if routed == 0 {
            0.0
        } else {
            hops_sum as f64 / routed as f64
        },
        aggregate_rate: aggregate,
        min_rate,
        throughput_retention: retention,
        tier_counts: tiers,
        attempts_total,
        backoff_units_total: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::AbcccParams;
    use dcn_baselines::prelude::*;

    fn cube() -> Abccc {
        Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap()
    }

    fn base() -> CampaignConfig {
        CampaignConfig::new().trials(3).pairs_per_trial(24).seed(11)
    }

    #[test]
    fn reports_are_thread_count_independent() {
        let t = cube();
        let serial = base().threads(1).run_on(&t).unwrap();
        let parallel = base().threads(4).run_on(&t).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_trials_is_invalid() {
        let e = base().trials(0).run_on(&cube()).unwrap_err();
        assert!(matches!(e, RouteError::Network(_)), "{e}");
    }

    #[test]
    fn digit_router_gives_up_instead_of_detourings() {
        let report = base()
            .router(RouterSpec::Digit(PermStrategy::DestinationAware))
            .measure_throughput(false)
            .run_on(&cube())
            .unwrap();
        // A fault-oblivious router never escalates.
        assert_eq!(report.summary.tier_counts.deterministic, 0);
        assert_eq!(report.summary.tier_counts.bfs, 0);
        assert_eq!(report.summary.unreachable, 0);
    }

    #[test]
    fn level_outage_caps_connectivity_at_one_over_n() {
        let report = CampaignConfig::new()
            .scenario(ScenarioKind::LevelSwitches { level: 0 })
            .trials(2)
            .pairs_per_trial(16)
            .measure_throughput(false)
            .run_on(&cube())
            .unwrap();
        let expect = 1.0 / 3.0;
        for t in &report.trials {
            assert!((t.connectivity_fraction - expect).abs() < 1e-12);
        }
        assert!(report.summary.route_completion < 1.0);
    }

    #[test]
    fn flapping_aggregates_over_steps() {
        let report = base()
            .scenario(ScenarioKind::FlappingLinks {
                rate: 0.05,
                steps: 3,
            })
            .measure_throughput(false)
            .run_on(&cube())
            .unwrap();
        for t in &report.trials {
            assert_eq!(t.steps, 3);
        }
        assert!(report.summary.route_completion > 0.9);
    }

    #[test]
    fn convergent_sampling_covers_every_group() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let mask = FaultMask::new(topo.network());
        let (pairs, skipped) = sample_pairs(&topo, &mask, PairSampling::Convergent, 1);
        assert_eq!(skipped, 0);
        assert_eq!(
            pairs.len() as u64,
            p.label_space() * u64::from(p.group_size())
        );
    }

    #[test]
    fn native_plane_reports_are_thread_count_independent() {
        let t = Jellyfish::new(JellyfishParams::new(10, 3, 1, 7).unwrap()).unwrap();
        let serial = base().threads(1).run_on(&t).unwrap();
        let parallel = base().threads(4).run_on(&t).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.router, "native");
        assert_eq!(serial.topology, t.name());
        assert!(serial.summary.routed > 0);
        // Every completed native route is a single primary attempt.
        assert_eq!(serial.summary.tier_counts.primary, serial.summary.routed);
        assert_eq!(serial.summary.attempts_total, serial.summary.routed);
    }

    #[test]
    fn native_plane_runs_space_shuffle_under_faults() {
        let t = SpaceShuffle::new(SpaceShuffleParams::new(8, 2, 1, 7).unwrap()).unwrap();
        let report = base().measure_throughput(false).run_on(&t).unwrap();
        assert!(report.summary.route_completion > 0.0);
        assert!(report.summary.mean_stretch >= 1.0 || report.summary.routed == 0);
    }

    #[test]
    fn native_plane_rejects_cube_only_configuration() {
        let t = Jellyfish::new(JellyfishParams::new(8, 3, 1, 7).unwrap()).unwrap();
        let cube_scenario = base()
            .scenario(ScenarioKind::CrossbarGroups { groups: 1 })
            .run_on(&t)
            .unwrap_err();
        assert!(matches!(cube_scenario, RouteError::Network(_)));
        let convergent = base()
            .sampling(PairSampling::Convergent)
            .run_on(&t)
            .unwrap_err();
        assert!(matches!(convergent, RouteError::Network(_)));
    }
}
