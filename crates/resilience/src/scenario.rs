//! Campaign fault scenarios: what breaks, per trial.

use crate::mix_seed;
use abccc::Abccc;
use netgraph::{FaultMask, FaultScenario, NetworkError, Topology};
use serde::{Deserialize, Serialize};

/// What a single campaign trial breaks. Every variant materializes through
/// the seeded [`FaultScenario`] builder (or the correlated generators of
/// `dcn-workloads`, which do the same), so a trial's mask is a pure
/// function of its derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Independent uniform failures: exactly `round(rate · population)`
    /// elements of each class, freshly drawn per trial.
    Uniform {
        /// Fraction of servers to fail (0.0–1.0).
        server_rate: f64,
        /// Fraction of switches to fail.
        switch_rate: f64,
        /// Fraction of links to fail.
        link_rate: f64,
    },
    /// Correlated rack loss: `groups` whole crossbar groups (all `m`
    /// servers of a cube label plus its crossbar switch), freshly chosen
    /// per trial.
    CrossbarGroups {
        /// How many groups go down together.
        groups: usize,
    },
    /// Correlated firmware loss: every switch of cube level `level`. The
    /// same deterministic outage in every trial — the cube partitions into
    /// `n` components (the failure ABCCC cannot absorb).
    LevelSwitches {
        /// The cube level whose switches all fail.
        level: u32,
    },
    /// Time-stepped flapping links: each of `steps` time steps draws a
    /// fresh uniform `rate` fraction of links down; per-trial metrics
    /// aggregate over the steps.
    FlappingLinks {
        /// Fraction of links down at any instant.
        rate: f64,
        /// Time steps per trial.
        steps: usize,
    },
}

impl ScenarioKind {
    /// Stable label for tables and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Uniform { .. } => "uniform",
            ScenarioKind::CrossbarGroups { .. } => "crossbar_groups",
            ScenarioKind::LevelSwitches { .. } => "level_switches",
            ScenarioKind::FlappingLinks { .. } => "flapping_links",
        }
    }

    /// Time steps a trial of this scenario evaluates (1 for everything but
    /// flapping).
    pub fn steps(&self) -> usize {
        match self {
            ScenarioKind::FlappingLinks { steps, .. } => (*steps).max(1),
            _ => 1,
        }
    }

    /// Whether the scenario needs ABCCC cube structure (crossbar groups,
    /// level switches) rather than plain element populations.
    pub fn needs_cube(&self) -> bool {
        matches!(
            self,
            ScenarioKind::CrossbarGroups { .. } | ScenarioKind::LevelSwitches { .. }
        )
    }

    /// Checks rates and ranges against the topology the campaign will run
    /// on. Element-population scenarios (uniform, flapping) accept any
    /// [`Topology`]; the cube-structured scenarios (crossbar groups, level
    /// switches) require an ABCCC instance.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] describing the first
    /// malformed field, or the scenario/topology mismatch.
    pub fn validate_for(&self, topo: &dyn Topology) -> Result<(), NetworkError> {
        let frac = |name: &'static str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(NetworkError::InvalidParameter {
                    name,
                    reason: format!("must be in [0,1], got {v}"),
                })
            }
        };
        let cube = || {
            topo.as_any()
                .downcast_ref::<Abccc>()
                .ok_or_else(|| NetworkError::InvalidParameter {
                    name: "scenario",
                    reason: format!(
                        "{} requires an ABCCC topology, got {}",
                        self.label(),
                        topo.name()
                    ),
                })
        };
        match *self {
            ScenarioKind::Uniform {
                server_rate,
                switch_rate,
                link_rate,
            } => {
                frac("server_rate", server_rate)?;
                frac("switch_rate", switch_rate)?;
                frac("link_rate", link_rate)
            }
            ScenarioKind::CrossbarGroups { groups } => {
                let p = cube()?.params();
                if groups as u64 > p.label_space() {
                    return Err(NetworkError::InvalidParameter {
                        name: "groups",
                        reason: format!(
                            "{} groups exceed the label space {}",
                            groups,
                            p.label_space()
                        ),
                    });
                }
                Ok(())
            }
            ScenarioKind::LevelSwitches { level } => {
                let p = cube()?.params();
                if level > p.k() {
                    return Err(NetworkError::InvalidParameter {
                        name: "level",
                        reason: format!("level {level} out of range (k = {})", p.k()),
                    });
                }
                Ok(())
            }
            ScenarioKind::FlappingLinks { rate, steps } => {
                frac("rate", rate)?;
                if steps == 0 {
                    return Err(NetworkError::InvalidParameter {
                        name: "steps",
                        reason: "flapping needs at least one time step".into(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Materializes the mask for time step `step` of the trial whose
    /// derived seed is `trial_seed`. Cube-structured scenarios must have
    /// passed [`ScenarioKind::validate_for`] first.
    pub(crate) fn mask_for(&self, topo: &dyn Topology, trial_seed: u64, step: usize) -> FaultMask {
        let net = topo.network();
        let seed = mix_seed(trial_seed, step as u64);
        let cube = || {
            topo.as_any()
                .downcast_ref::<Abccc>()
                .expect("cube scenario validated for an ABCCC topology")
        };
        match *self {
            ScenarioKind::Uniform {
                server_rate,
                switch_rate,
                link_rate,
            } => FaultScenario::seeded(seed)
                .fail_servers_frac(server_rate)
                .fail_switches_frac(switch_rate)
                .fail_links_frac(link_rate)
                .build(net),
            ScenarioKind::CrossbarGroups { groups } => {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                dcn_workloads::correlated::fail_abccc_groups(cube().params(), net, groups, &mut rng)
            }
            ScenarioKind::LevelSwitches { level } => {
                dcn_workloads::correlated::fail_abccc_level(cube().params(), net, level)
            }
            ScenarioKind::FlappingLinks { rate, .. } => {
                FaultScenario::seeded(seed).fail_links_frac(rate).build(net)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::AbcccParams;

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap()
    }

    #[test]
    fn masks_are_seed_deterministic() {
        let t = topo();
        let kinds = [
            ScenarioKind::Uniform {
                server_rate: 0.1,
                switch_rate: 0.1,
                link_rate: 0.1,
            },
            ScenarioKind::CrossbarGroups { groups: 2 },
            ScenarioKind::LevelSwitches { level: 1 },
            ScenarioKind::FlappingLinks {
                rate: 0.05,
                steps: 3,
            },
        ];
        for k in kinds {
            assert_eq!(k.mask_for(&t, 9, 0), k.mask_for(&t, 9, 0), "{}", k.label());
        }
        // Flapping re-draws per step.
        let flap = ScenarioKind::FlappingLinks {
            rate: 0.05,
            steps: 3,
        };
        assert_ne!(flap.mask_for(&t, 9, 0), flap.mask_for(&t, 9, 1));
    }

    #[test]
    fn validate_rejects_malformed_fields() {
        let t = topo();
        assert!(ScenarioKind::Uniform {
            server_rate: 1.5,
            switch_rate: 0.0,
            link_rate: 0.0,
        }
        .validate_for(&t)
        .is_err());
        assert!(ScenarioKind::LevelSwitches { level: 9 }
            .validate_for(&t)
            .is_err());
        assert!(ScenarioKind::FlappingLinks {
            rate: 0.1,
            steps: 0
        }
        .validate_for(&t)
        .is_err());
        assert!(ScenarioKind::CrossbarGroups { groups: 1_000_000 }
            .validate_for(&t)
            .is_err());
        assert!(ScenarioKind::CrossbarGroups { groups: 2 }
            .validate_for(&t)
            .is_ok());
    }

    #[test]
    fn cube_scenarios_reject_non_cube_topologies() {
        use dcn_baselines::prelude::*;
        let t = Jellyfish::new(JellyfishParams::new(8, 3, 1, 7).unwrap()).unwrap();
        assert!(ScenarioKind::CrossbarGroups { groups: 1 }
            .validate_for(&t)
            .is_err());
        assert!(ScenarioKind::LevelSwitches { level: 0 }
            .validate_for(&t)
            .is_err());
        assert!(ScenarioKind::Uniform {
            server_rate: 0.1,
            switch_rate: 0.1,
            link_rate: 0.0,
        }
        .validate_for(&t)
        .is_ok());
        assert!(!ScenarioKind::Uniform {
            server_rate: 0.1,
            switch_rate: 0.1,
            link_rate: 0.0,
        }
        .needs_cube());
        assert!(ScenarioKind::LevelSwitches { level: 0 }.needs_cube());
    }
}
