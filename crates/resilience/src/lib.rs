//! # dcn-resilience — seeded fault campaigns over ABCCC
//!
//! The resilience layer answers the operational question the topology
//! papers leave open: *how gracefully does the structure degrade?* It runs
//! **campaigns** — many independent, seeded trials of a fault scenario —
//! and aggregates per-trial **degradation reports**:
//!
//! * connectivity fraction (largest surviving component),
//! * route-completion rate of the configured [`Router`](abccc::Router),
//! * mean/max path stretch versus the fault-free closed-form distance,
//! * throughput retention under max-min fair allocation ([`dcn_sim`]),
//! * escalation-tier counts, attempt totals and deterministic backoff.
//!
//! Scenarios cover uniform element failures ([`ScenarioKind::Uniform`]),
//! correlated rack/level outages ([`ScenarioKind::CrossbarGroups`],
//! [`ScenarioKind::LevelSwitches`]) and time-stepped link flapping
//! ([`ScenarioKind::FlappingLinks`]). Trials run in parallel with a
//! work-stealing worker pool, yet every number in the report depends only
//! on the campaign seed — per-trial RNG streams are derived by index, so
//! reports are byte-identical across runs and thread counts.
//!
//! Campaigns are topology-agnostic: hand [`CampaignConfig::run_on`] any
//! materialized [`Topology`](netgraph::Topology). An ABCCC instance is
//! driven through the configured router control plane (escalation tiers,
//! retry accounting); any other family — Jellyfish, Space Shuffle, the
//! trees and cubes of `dcn-baselines` — is driven through its native
//! fault-avoiding `route_avoiding` plane under the same seeded scenarios.
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use dcn_resilience::{CampaignConfig, ScenarioKind};
//!
//! # fn main() -> Result<(), netgraph::RouteError> {
//! let topo = Abccc::new(AbcccParams::new(3, 2, 2)?)?;
//! let report = CampaignConfig::new()
//!     .scenario(ScenarioKind::Uniform {
//!         server_rate: 0.05,
//!         switch_rate: 0.05,
//!         link_rate: 0.0,
//!     })
//!     .trials(4)
//!     .pairs_per_trial(32)
//!     .seed(7)
//!     .run_on(&topo)?;
//! assert_eq!(report.trials.len(), 4);
//! assert!(report.summary.route_completion > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod report;
mod scenario;

pub use campaign::{CampaignConfig, PairSampling, RouterSpec};
pub use report::{CampaignReport, CampaignSummary, TierCounts, TrialReport};
pub use scenario::ScenarioKind;

/// SplitMix64 finalizer — decorrelates derived seeds so that trial `i`'s
/// stream shares nothing with trial `i+1`'s even though the inputs differ
/// by one bit.
pub(crate) fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
