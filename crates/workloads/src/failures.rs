//! Failure-scenario generators.

use netgraph::{FaultMask, FaultScenario, Network};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Independent failure rates for each element class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Fraction of servers to fail (0.0–1.0).
    pub server_rate: f64,
    /// Fraction of switches to fail.
    pub switch_rate: f64,
    /// Fraction of links to fail.
    pub link_rate: f64,
}

impl FailureScenario {
    /// Only servers fail.
    pub fn servers(rate: f64) -> Self {
        FailureScenario {
            server_rate: rate,
            switch_rate: 0.0,
            link_rate: 0.0,
        }
    }

    /// Only switches fail.
    pub fn switches(rate: f64) -> Self {
        FailureScenario {
            server_rate: 0.0,
            switch_rate: rate,
            link_rate: 0.0,
        }
    }

    /// Only links fail.
    pub fn links(rate: f64) -> Self {
        FailureScenario {
            server_rate: 0.0,
            switch_rate: 0.0,
            link_rate: rate,
        }
    }

    /// The equivalent [`FaultScenario`] recipe (classes sampled in
    /// server → switch → link order), ready to [`FaultScenario::build`]
    /// from `seed` or to compose with further correlated operations.
    pub fn scenario(&self, seed: u64) -> FaultScenario {
        FaultScenario::seeded(seed)
            .fail_servers_frac(self.server_rate)
            .fail_switches_frac(self.switch_rate)
            .fail_links_frac(self.link_rate)
    }

    /// Samples a concrete fault mask: exactly `round(rate · population)`
    /// elements of each class, chosen uniformly from the caller's RNG
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn sample(&self, net: &Network, rng: &mut impl Rng) -> FaultMask {
        self.scenario(0).build_with(net, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn star(n: usize) -> Network {
        let mut net = Network::new();
        let servers: Vec<_> = (0..n).map(|_| net.add_server()).collect();
        let sw = net.add_switch();
        for s in servers {
            net.add_link(s, sw, 1.0);
        }
        net
    }

    #[test]
    fn exact_counts() {
        let net = star(20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mask = FailureScenario::servers(0.25).sample(&net, &mut rng);
        assert_eq!(mask.failed_node_count(), 5);
        assert_eq!(mask.failed_link_count(), 0);
    }

    #[test]
    fn switch_failures_only_hit_switches() {
        let net = star(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mask = FailureScenario::switches(1.0).sample(&net, &mut rng);
        assert_eq!(mask.failed_node_count(), 1);
        for s in net.server_ids() {
            assert!(mask.node_alive(s));
        }
    }

    #[test]
    fn link_failures() {
        let net = star(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mask = FailureScenario::links(0.5).sample(&net, &mut rng);
        assert_eq!(mask.failed_link_count(), 5);
        assert_eq!(mask.failed_node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_rate_panics() {
        let net = star(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        FailureScenario::servers(1.5).sample(&net, &mut rng);
    }
}
