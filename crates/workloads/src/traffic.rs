//! Traffic-pattern generators.
//!
//! All generators produce ordered `(src, dst)` server pairs over the id
//! range `0..n_servers` (the crate-wide servers-first convention) and are
//! deterministic given the caller's RNG.

use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A random permutation workload: every server sends to exactly one other
/// server and receives from exactly one (derangement-style; no self-pairs).
///
/// # Panics
///
/// Panics if `n_servers < 2`.
pub fn random_permutation(n_servers: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(n_servers >= 2, "need at least two servers");
    let mut dsts: Vec<u32> = (0..n_servers as u32).collect();
    loop {
        dsts.shuffle(rng);
        if dsts.iter().enumerate().all(|(i, &d)| i as u32 != d) {
            break;
        }
        // Fix the fixed points by rotating them amongst themselves.
        let fixed: Vec<usize> = dsts
            .iter()
            .enumerate()
            .filter(|(i, &d)| *i as u32 == d)
            .map(|(i, _)| i)
            .collect();
        if fixed.len() >= 2 {
            for w in fixed.windows(2) {
                dsts.swap(w[0], w[1]);
            }
            if dsts.iter().enumerate().all(|(i, &d)| i as u32 != d) {
                break;
            }
        } else if fixed.len() == 1 {
            let f = fixed[0];
            let other = (f + 1) % n_servers;
            dsts.swap(f, other);
            break;
        }
    }
    dsts.iter()
        .enumerate()
        .map(|(s, &d)| (NodeId(s as u32), NodeId(d)))
        .collect()
}

/// All-to-all: every ordered pair (n·(n−1) flows). Quadratic — intended for
/// small instances.
pub fn all_to_all(n_servers: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(n_servers * n_servers.saturating_sub(1));
    for s in 0..n_servers as u32 {
        for d in 0..n_servers as u32 {
            if s != d {
                pairs.push((NodeId(s), NodeId(d)));
            }
        }
    }
    pairs
}

/// `flows` uniformly random ordered pairs (with replacement, no
/// self-pairs).
///
/// # Panics
///
/// Panics if `n_servers < 2`.
pub fn uniform_random(n_servers: usize, flows: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(n_servers >= 2, "need at least two servers");
    (0..flows)
        .map(|_| loop {
            let s = rng.gen_range(0..n_servers as u32);
            let d = rng.gen_range(0..n_servers as u32);
            if s != d {
                break (NodeId(s), NodeId(d));
            }
        })
        .collect()
}

/// Incast: `fan_in` random distinct senders towards one random sink — the
/// MapReduce-shuffle hotspot pattern.
///
/// # Panics
///
/// Panics if `fan_in >= n_servers`.
pub fn many_to_one(n_servers: usize, fan_in: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(fan_in < n_servers, "fan-in must leave room for the sink");
    let sink = rng.gen_range(0..n_servers as u32);
    let mut senders: Vec<u32> = (0..n_servers as u32).filter(|&s| s != sink).collect();
    senders.shuffle(rng);
    senders
        .into_iter()
        .take(fan_in)
        .map(|s| (NodeId(s), NodeId(sink)))
        .collect()
}

/// One-to-many: one random source towards `fan_out` random distinct sinks
/// (data-distribution / chunk-replication pattern).
///
/// # Panics
///
/// Panics if `fan_out >= n_servers`.
pub fn one_to_many(n_servers: usize, fan_out: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    many_to_one(n_servers, fan_out, rng)
        .into_iter()
        .map(|(a, b)| (b, a))
        .collect()
}

/// Bisection stress: pairs each server of the first id-half with a random
/// partner in the second half (both directions), saturating the canonical
/// cut.
///
/// # Panics
///
/// Panics if `n_servers < 2`.
pub fn bisection_pairs(n_servers: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(n_servers >= 2, "need at least two servers");
    let half = n_servers / 2;
    let mut right: Vec<u32> = (half as u32..n_servers as u32).collect();
    right.shuffle(rng);
    let mut pairs = Vec::with_capacity(2 * half);
    for (l, &r) in (0..half as u32).zip(right.iter()) {
        pairs.push((NodeId(l), NodeId(r)));
        pairs.push((NodeId(r), NodeId(l)));
    }
    pairs
}

/// A MapReduce-style shuffle: `mappers` random sources each send to every
/// one of `reducers` random sinks (sources and sinks disjoint). This is
/// the workload the server-centric papers use to motivate high bisection.
///
/// # Panics
///
/// Panics if `mappers + reducers > n_servers`.
pub fn shuffle(
    n_servers: usize,
    mappers: usize,
    reducers: usize,
    rng: &mut impl Rng,
) -> Vec<(NodeId, NodeId)> {
    assert!(
        mappers + reducers <= n_servers,
        "mappers + reducers exceed the server count"
    );
    let mut ids: Vec<u32> = (0..n_servers as u32).collect();
    ids.shuffle(rng);
    let maps = &ids[..mappers];
    let reds = &ids[mappers..mappers + reducers];
    let mut pairs = Vec::with_capacity(mappers * reducers);
    for &m in maps {
        for &r in reds {
            pairs.push((NodeId(m), NodeId(r)));
        }
    }
    pairs
}

/// A sized flow: `(src, dst, size_units)`. Sizes are abstract units — the
/// packet simulator interprets them as packet counts.
pub type SizedFlow = (NodeId, NodeId, u64);

/// An elephant/mice mix: `flows` random pairs where a fraction
/// `elephant_ratio` are elephants of `elephant_size` units and the rest
/// are mice of `mouse_size` units — the classic heavy-tailed DC traffic
/// shape.
///
/// # Panics
///
/// Panics if `n_servers < 2` or `elephant_ratio` is outside `[0, 1]`.
pub fn elephant_mice(
    n_servers: usize,
    flows: usize,
    elephant_ratio: f64,
    elephant_size: u64,
    mouse_size: u64,
    rng: &mut impl Rng,
) -> Vec<SizedFlow> {
    assert!(
        (0.0..=1.0).contains(&elephant_ratio),
        "elephant_ratio must be in [0,1]"
    );
    uniform_random(n_servers, flows, rng)
        .into_iter()
        .map(|(s, d)| {
            let size = if rng.gen_bool(elephant_ratio) {
                elephant_size
            } else {
                mouse_size
            };
            (s, d, size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn permutation_is_a_derangement() {
        for n in [2, 3, 7, 64] {
            let pairs = random_permutation(n, &mut rng());
            assert_eq!(pairs.len(), n);
            let mut seen_dst = std::collections::HashSet::new();
            for (s, d) in &pairs {
                assert_ne!(s, d);
                assert!(seen_dst.insert(*d));
            }
        }
    }

    #[test]
    fn all_to_all_count() {
        let pairs = all_to_all(5);
        assert_eq!(pairs.len(), 20);
        assert!(pairs.iter().all(|(s, d)| s != d));
    }

    #[test]
    fn uniform_random_no_self() {
        let pairs = uniform_random(10, 100, &mut rng());
        assert_eq!(pairs.len(), 100);
        assert!(pairs.iter().all(|(s, d)| s != d));
    }

    #[test]
    fn incast_shares_sink() {
        let pairs = many_to_one(20, 7, &mut rng());
        assert_eq!(pairs.len(), 7);
        let sink = pairs[0].1;
        assert!(pairs.iter().all(|(s, d)| *d == sink && *s != sink));
        let senders: std::collections::HashSet<_> = pairs.iter().map(|(s, _)| s).collect();
        assert_eq!(senders.len(), 7);
    }

    #[test]
    fn one_to_many_shares_source() {
        let pairs = one_to_many(20, 5, &mut rng());
        let src = pairs[0].0;
        assert!(pairs.iter().all(|(s, d)| *s == src && *d != src));
    }

    #[test]
    fn bisection_pairs_cross_halves() {
        let pairs = bisection_pairs(10, &mut rng());
        assert_eq!(pairs.len(), 10);
        for (s, d) in pairs {
            assert_ne!(s.0 < 5, d.0 < 5, "pair does not cross the cut");
        }
    }

    #[test]
    fn shuffle_is_bipartite_complete() {
        let pairs = shuffle(30, 4, 5, &mut rng());
        assert_eq!(pairs.len(), 20);
        let maps: std::collections::HashSet<_> = pairs.iter().map(|(s, _)| *s).collect();
        let reds: std::collections::HashSet<_> = pairs.iter().map(|(_, d)| *d).collect();
        assert_eq!(maps.len(), 4);
        assert_eq!(reds.len(), 5);
        assert!(maps.is_disjoint(&reds));
    }

    #[test]
    #[should_panic(expected = "exceed the server count")]
    fn shuffle_bounds_checked() {
        shuffle(8, 5, 5, &mut rng());
    }

    #[test]
    fn elephant_mice_sizes() {
        let flows = elephant_mice(20, 200, 0.1, 1000, 10, &mut rng());
        assert_eq!(flows.len(), 200);
        let elephants = flows.iter().filter(|(_, _, s)| *s == 1000).count();
        let mice = flows.iter().filter(|(_, _, s)| *s == 10).count();
        assert_eq!(elephants + mice, 200);
        // ~10% elephants with generous slack.
        assert!((5..=40).contains(&elephants), "{elephants}");
    }

    #[test]
    fn deterministic_with_seed() {
        assert_eq!(
            random_permutation(16, &mut rng()),
            random_permutation(16, &mut rng())
        );
        assert_eq!(
            uniform_random(16, 8, &mut rng()),
            uniform_random(16, 8, &mut rng())
        );
    }
}
