//! Flow-trace replay.
//!
//! Loads sized, timed flow traces from a simple CSV dialect so recorded
//! (or synthesized) workloads can be replayed through either simulator:
//!
//! ```text
//! # src,dst,size_units,start_ns      — '#' comments and blank lines ok
//! 0,17,1000,0
//! 3,42,10,250000
//! ```

use netgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFlow {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Flow size in abstract units (packets for the packet simulator).
    pub size: u64,
    /// Start time in nanoseconds.
    pub start_ns: u64,
}

/// Trace parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a CSV trace (see module docs). `n_servers` bounds the endpoint
/// ids; self-flows are rejected.
///
/// # Errors
///
/// Returns the first malformed line with its number.
pub fn parse_trace(text: &str, n_servers: u64) -> Result<Vec<TraceFlow>, TraceParseError> {
    let mut flows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(TraceParseError {
                line,
                reason: format!("expected 4 comma-separated fields, got {}", fields.len()),
            });
        }
        let num = |s: &str, what: &str| -> Result<u64, TraceParseError> {
            s.parse().map_err(|_| TraceParseError {
                line,
                reason: format!("{what}: `{s}` is not a number"),
            })
        };
        let src = num(fields[0], "src")?;
        let dst = num(fields[1], "dst")?;
        let size = num(fields[2], "size")?;
        let start_ns = num(fields[3], "start_ns")?;
        if src >= n_servers || dst >= n_servers {
            return Err(TraceParseError {
                line,
                reason: format!("endpoint out of range (< {n_servers})"),
            });
        }
        if src == dst {
            return Err(TraceParseError {
                line,
                reason: "self-flow (src == dst)".into(),
            });
        }
        if size == 0 {
            return Err(TraceParseError {
                line,
                reason: "zero-size flow".into(),
            });
        }
        flows.push(TraceFlow {
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            size,
            start_ns,
        });
    }
    Ok(flows)
}

/// Renders flows back to the CSV dialect (inverse of [`parse_trace`]).
pub fn write_trace(flows: &[TraceFlow]) -> String {
    let mut out = String::from("# src,dst,size_units,start_ns\n");
    for f in flows {
        out.push_str(&format!(
            "{},{},{},{}\n",
            f.src.0, f.dst.0, f.size, f.start_ns
        ));
    }
    out
}

impl TraceFlow {
    /// The `(src, dst)` pair (for the flow-level simulator, which ignores
    /// sizes and timing).
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\n0,1,100,0\n  2 , 3 , 50 , 1000 \n";
        let flows = parse_trace(text, 10).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].src, NodeId(0));
        assert_eq!(flows[1].size, 50);
        assert_eq!(flows[1].start_ns, 1000);
    }

    #[test]
    fn roundtrip() {
        let text = "0,1,100,0\n2,3,50,1000\n";
        let flows = parse_trace(text, 10).unwrap();
        let back = parse_trace(&write_trace(&flows), 10).unwrap();
        assert_eq!(flows, back);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_trace("0,1,100,0\nbogus line\n", 10).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));

        let e = parse_trace("0,1,100\n", 10).unwrap_err();
        assert!(e.reason.contains("4 comma-separated"));

        let e = parse_trace("0,99,100,0\n", 10).unwrap_err();
        assert!(e.reason.contains("out of range"));

        let e = parse_trace("1,1,100,0\n", 10).unwrap_err();
        assert!(e.reason.contains("self-flow"));

        let e = parse_trace("0,1,0,0\n", 10).unwrap_err();
        assert!(e.reason.contains("zero-size"));

        let e = parse_trace("0,1,x,0\n", 10).unwrap_err();
        assert!(e.reason.contains("not a number"));
    }

    #[test]
    fn empty_and_comment_only_inputs_parse_to_no_flows() {
        assert_eq!(parse_trace("", 10).unwrap(), vec![]);
        assert_eq!(parse_trace("\n\n  \n", 10).unwrap(), vec![]);
        assert_eq!(
            parse_trace("# a trace with\n# nothing but comments\n", 10).unwrap(),
            vec![]
        );
        // write_trace of an empty trace is itself a comment-only trace.
        assert_eq!(parse_trace(&write_trace(&[]), 10).unwrap(), vec![]);
    }

    #[test]
    fn endpoint_bounds_are_half_open() {
        // n_servers - 1 is the last valid id; n_servers itself is out.
        let flows = parse_trace("0,9,1,0\n9,0,1,0\n", 10).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].dst, NodeId(9));

        let e = parse_trace("0,10,1,0\n", 10).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.reason.contains("out of range (< 10)"));
        let e = parse_trace("10,0,1,0\n", 10).unwrap_err();
        assert!(e.reason.contains("out of range"));

        // A zero-server net rejects every endpoint, even id 0.
        let e = parse_trace("0,1,1,0\n", 0).unwrap_err();
        assert!(e.reason.contains("out of range (< 0)"));
    }

    #[test]
    fn error_line_numbers_count_comments_and_blanks() {
        // The failing record sits on physical line 5; comments and the
        // blank line above it must still be counted.
        let text = "# header\n\n0,1,1,0\n# interlude\n0,1,1,-3\n";
        let e = parse_trace(text, 10).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.reason.contains("start_ns"));
        assert!(e.reason.contains("not a number"));
    }

    #[test]
    fn pairs_feed_the_flow_simulator() {
        let flows = parse_trace("0,1,100,0\n1,0,10,5\n", 4).unwrap();
        let pairs: Vec<_> = flows.iter().map(TraceFlow::pair).collect();
        assert_eq!(pairs, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
    }
}
