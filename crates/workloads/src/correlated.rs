//! Correlated failure scenarios.
//!
//! Real outages are not uniform coin flips: a power feed takes out a whole
//! rack (an ABCCC crossbar group), a bad firmware push takes out one switch
//! model (a whole level), a cable tray cut severs a bundle. These
//! generators produce such structured [`FaultMask`]s for the fault
//! experiments.

use netgraph::{FaultMask, FaultScenario, Network, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Fails `groups` whole ABCCC crossbar groups (rack-loss model): all `m`
/// servers of each chosen cube label plus its crossbar.
///
/// # Panics
///
/// Panics if `groups` exceeds the label space.
pub fn fail_abccc_groups(
    p: &abccc::AbcccParams,
    net: &Network,
    groups: usize,
    rng: &mut impl Rng,
) -> FaultMask {
    let labels: Vec<u64> = (0..p.label_space()).collect();
    assert!(groups <= labels.len(), "more groups than labels");
    let mut nodes = Vec::new();
    for &raw in labels.choose_multiple(rng, groups) {
        let label = abccc::CubeLabel(raw);
        for pos in 0..p.group_size() {
            nodes.push(abccc::ServerAddr::new(p, label, pos).node_id(p));
        }
        if p.group_size() > 1 {
            nodes.push(abccc::SwitchAddr::Crossbar(label).node_id(p));
        }
    }
    FaultScenario::seeded(0).fail_nodes(nodes).build(net)
}

/// Fails every switch of one ABCCC cube level (bad-firmware model).
///
/// Note: this is the correlated failure ABCCC *cannot* absorb — digit `i`
/// changes only across level-`i` switches, so the cube partitions into `n`
/// components keyed by that digit (asserted in tests). Deployments should
/// therefore diversify switch models/firmware across levels.
///
/// # Panics
///
/// Panics if `level > k`.
pub fn fail_abccc_level(p: &abccc::AbcccParams, net: &Network, level: u32) -> FaultMask {
    assert!(level <= p.k(), "level out of range");
    let switches =
        (0..p.rest_space()).map(|rest| abccc::SwitchAddr::Level { level, rest }.node_id(p));
    FaultScenario::seeded(0).fail_nodes(switches).build(net)
}

/// Fails a contiguous bundle of `count` cables starting at a random link
/// id (cable-tray cut model — builders lay related cables adjacently, and
/// our constructors emit them in structured order).
pub fn fail_cable_bundle(net: &Network, count: usize, rng: &mut impl Rng) -> FaultMask {
    if net.link_count() == 0 {
        return FaultMask::new(net);
    }
    let count = count.min(net.link_count());
    let start = rng.gen_range(0..net.link_count() - count + 1);
    let bundle = (start..start + count).map(|l| netgraph::LinkId(l as u32));
    FaultScenario::seeded(0).fail_links(bundle).build(net)
}

/// Marks a set of servers down (maintenance window for an explicit list).
pub fn fail_servers(net: &Network, servers: &[NodeId]) -> FaultMask {
    FaultScenario::seeded(0)
        .fail_nodes(servers.iter().copied())
        .build(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use netgraph::Topology;
    use rand::SeedableRng;

    fn setup() -> (AbcccParams, Abccc) {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let t = Abccc::new(p).unwrap();
        (p, t)
    }

    #[test]
    fn group_failure_takes_whole_racks() {
        let (p, t) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mask = fail_abccc_groups(&p, t.network(), 3, &mut rng);
        // 3 groups × (m servers + 1 crossbar).
        assert_eq!(
            mask.failed_node_count() as u64,
            3 * (u64::from(p.group_size()) + 1)
        );
        // Surviving servers stay mutually connected (parallel paths).
        assert!(netgraph::connectivity::servers_connected(
            t.network(),
            Some(&mask)
        ));
    }

    #[test]
    fn level_failure_partitions_the_cube_by_that_digit() {
        // A whole-level outage is the one correlated failure ABCCC cannot
        // route around: digit `i` can only change across level-`i`
        // switches, so the cube splits into `n` equal components.
        let (p, t) = setup();
        let mask = fail_abccc_level(&p, t.network(), 1);
        assert_eq!(mask.failed_node_count() as u64, p.rest_space());
        assert!(!netgraph::connectivity::servers_connected(
            t.network(),
            Some(&mask)
        ));
        let frac =
            netgraph::connectivity::largest_component_server_fraction(t.network(), Some(&mask));
        assert!((frac - 1.0 / f64::from(p.n())).abs() < 1e-12, "{frac}");
        // Servers sharing digit 1 remain mutually reachable.
        let a = abccc::ServerAddr::new(&p, abccc::CubeLabel(0), 0).node_id(&p);
        let same_digit =
            abccc::ServerAddr::new(&p, abccc::CubeLabel::from_digits(&p, &[2, 0, 2]), 1)
                .node_id(&p);
        assert!(netgraph::bfs::shortest_path(t.network(), a, same_digit, Some(&mask)).is_some());
    }

    #[test]
    fn bundle_cut_is_contiguous() {
        let (_, t) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mask = fail_cable_bundle(t.network(), 10, &mut rng);
        assert_eq!(mask.failed_link_count(), 10);
        assert_eq!(mask.failed_node_count(), 0);
    }

    #[test]
    fn explicit_server_list() {
        let (_, t) = setup();
        let mask = fail_servers(t.network(), &[NodeId(1), NodeId(4)]);
        assert!(!mask.node_alive(NodeId(1)));
        assert!(!mask.node_alive(NodeId(4)));
        assert!(mask.node_alive(NodeId(0)));
    }
}
