//! Production traffic scenarios for the unified engine.
//!
//! Each builder turns a server count and a seed into a pure
//! [`Scenario`] value: collectives (ring all-reduce, all-to-all), incast
//! fan-in, storage-reconstruction storms (a server dies mid-run and its
//! replicas are rebuilt by fan-in reads while background traffic keeps
//! flowing), and diurnal load with a flash crowd. All randomness comes
//! from [`SplitMix64`] streams split off the scenario seed, so the same
//! `(name, servers, seed)` triple always yields byte-identical traffic
//! regardless of call order or thread count.

use dcn_sim::{FaultInjection, Fidelity, Scenario, ScenarioFlow, SplitMix64};
use netgraph::{FaultScenario, NodeId};

/// Scenario names [`by_name`] understands, in catalog order.
pub const NAMES: &[&str] = &[
    "all_reduce",
    "all_to_all",
    "incast",
    "storage_rebuild",
    "diurnal",
];

/// Picks `k` distinct servers out of `n` (partial Fisher–Yates on the
/// identity permutation; deterministic under the stream).
fn pick_distinct(n: usize, k: usize, rng: &mut SplitMix64) -> Vec<NodeId> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + rng.below((n - i) as u64) as usize;
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.into_iter().map(NodeId).collect()
}

/// Ring all-reduce over `group` servers: the classic reduce-scatter +
/// all-gather schedule, `2 * (group - 1)` bulk-synchronous phases in which
/// every participant sends one `chunk_bytes` chunk to its ring successor.
pub fn all_reduce(
    n_servers: usize,
    group: usize,
    chunk_bytes: u64,
    seed: u64,
    fidelity: Fidelity,
) -> Scenario {
    let mut rng = SplitMix64::stream(seed, 0);
    let g = group.clamp(2, n_servers.max(2));
    let parts = pick_distinct(n_servers, g, &mut rng);
    let mut s = Scenario::new("all_reduce", seed, fidelity);
    let steps = 2 * (g - 1);
    for phase in 0..steps {
        for (i, &src) in parts.iter().enumerate() {
            let dst = parts[(i + 1) % g];
            s.flows
                .push(ScenarioFlow::bulk(src, dst, chunk_bytes).in_phase(phase as u16));
        }
    }
    s
}

/// All-to-all (the shuffle collective): every ordered pair of the `group`
/// participants exchanges `pair_bytes` in one phase.
pub fn all_to_all(
    n_servers: usize,
    group: usize,
    pair_bytes: u64,
    seed: u64,
    fidelity: Fidelity,
) -> Scenario {
    let mut rng = SplitMix64::stream(seed, 0);
    let g = group.clamp(2, n_servers.max(2));
    let parts = pick_distinct(n_servers, g, &mut rng);
    let mut s = Scenario::new("all_to_all", seed, fidelity);
    for &src in &parts {
        for &dst in &parts {
            if src != dst {
                s.flows.push(ScenarioFlow::bulk(src, dst, pair_bytes));
            }
        }
    }
    s
}

/// Incast fan-in: `fan_in` servers burst `bytes_per_source` at one target
/// simultaneously — the partition-aggregate microburst that stresses the
/// target's last hop buffer.
pub fn incast(
    n_servers: usize,
    fan_in: usize,
    bytes_per_source: u64,
    seed: u64,
    fidelity: Fidelity,
) -> Scenario {
    let mut rng = SplitMix64::stream(seed, 0);
    let picks = pick_distinct(
        n_servers,
        fan_in.clamp(1, n_servers.saturating_sub(1)) + 1,
        &mut rng,
    );
    let (target, sources) = picks.split_first().expect("at least two servers");
    let mut s = Scenario::new("incast", seed, fidelity);
    for &src in sources {
        s.flows
            .push(ScenarioFlow::burst(src, *target, bytes_per_source, 0));
    }
    s
}

/// Storage-reconstruction storm: background permutation traffic is mid
/// transfer when one storage server dies; `rebuild_sources` replica
/// holders immediately fan `rebuild_bytes` each into a rebuild target.
/// The fault fires *mid-flow* — background flows through the dead server
/// are killed, the rest reroute on the engine's plane.
pub fn storage_rebuild(
    n_servers: usize,
    background: usize,
    rebuild_sources: usize,
    rebuild_bytes: u64,
    seed: u64,
    fidelity: Fidelity,
) -> Scenario {
    let mut rng = SplitMix64::stream(seed, 0);
    let mut s = Scenario::new("storage_rebuild", seed, fidelity);

    // Background permutation: a random partial matching, `bg_bytes` each.
    let bg_bytes = rebuild_bytes * 2;
    let bg = background.min(n_servers / 2);
    let picks = pick_distinct(n_servers, 2 * bg, &mut rng);
    for pair in picks.chunks_exact(2) {
        s.flows.push(ScenarioFlow::bulk(pair[0], pair[1], bg_bytes));
    }

    // The casualty and the rebuild set are disjoint from each other.
    let actors = pick_distinct(
        n_servers,
        rebuild_sources.min(n_servers.saturating_sub(2)) + 2,
        &mut rng,
    );
    let dead = actors[0];
    let target = actors[1];
    let at_ns = bg_bytes * 2; // ~quarter of the lone-flow transfer time
    for &src in &actors[2..] {
        s.flows
            .push(ScenarioFlow::bulk(src, target, rebuild_bytes).starting_at(at_ns));
    }
    s.faults.push(FaultInjection {
        at_ns,
        scenario: FaultScenario::seeded(SplitMix64::stream(seed, 1).next()).fail_nodes([dead]),
    });
    s
}

/// Diurnal load with a flash crowd: `flows` transfers whose start times
/// follow a sinusoidal intensity over `window_ns` (rejection-sampled), a
/// 10% elephant mix, and a burst of mice onto one hot server at the peak.
pub fn diurnal(
    n_servers: usize,
    flows: usize,
    window_ns: u64,
    seed: u64,
    fidelity: Fidelity,
) -> Scenario {
    let mut rng = SplitMix64::stream(seed, 0);
    let mut s = Scenario::new("diurnal", seed, fidelity);
    let mouse = 16_000u64;
    let elephant = 512_000u64;
    for _ in 0..flows {
        // λ(t) ∝ 1 + sin(2πt/T): rejection sampling keeps the draw exact.
        let t = loop {
            let u = rng.unit();
            let lambda = 0.5 * (1.0 + (std::f64::consts::TAU * u).sin());
            if rng.unit() <= lambda {
                break (u * window_ns as f64) as u64;
            }
        };
        let pair = pick_distinct(n_servers, 2, &mut rng);
        let bytes = if rng.below(10) == 0 { elephant } else { mouse };
        s.flows
            .push(ScenarioFlow::bulk(pair[0], pair[1], bytes).starting_at(t));
    }
    // Flash crowd: a fan-in burst of mice at the intensity peak (T/4).
    let crowd = pick_distinct(n_servers, (n_servers / 4).clamp(2, 9), &mut rng);
    let (hot, fans) = crowd.split_first().expect("at least two servers");
    for &src in fans {
        s.flows
            .push(ScenarioFlow::burst(src, *hot, mouse, window_ns / 4));
    }
    s
}

/// Builds a named scenario with catalog defaults sized to `n_servers`:
/// collectives and diurnal load run fluid, incast runs packet-level (its
/// whole point is buffer pressure), and `storage_rebuild` carries a
/// mid-flow fault. Returns `None` for unknown names.
#[must_use]
pub fn by_name(name: &str, n_servers: usize, seed: u64) -> Option<Scenario> {
    let n = n_servers;
    Some(match name {
        "all_reduce" => all_reduce(n, n.min(8), 64_000, seed, Fidelity::Fluid),
        "all_to_all" => all_to_all(n, n.min(6), 32_000, seed, Fidelity::Fluid),
        "incast" => incast(
            n,
            n.saturating_sub(1).min(8),
            15_000,
            seed,
            Fidelity::packet_open(),
        ),
        "storage_rebuild" => storage_rebuild(
            n,
            (n / 2).min(24),
            n.saturating_sub(2).min(6),
            128_000,
            seed,
            Fidelity::Fluid,
        ),
        "diurnal" => diurnal(n, (2 * n).clamp(16, 48), 2_000_000, seed, Fidelity::Fluid),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_every_name() {
        for &name in NAMES {
            let s = by_name(name, 24, 7).unwrap();
            assert_eq!(s.name, name);
            assert!(!s.flows.is_empty(), "{name} generated no flows");
            assert!(s
                .flows
                .iter()
                .all(|f| f.src != f.dst || s.name == "diurnal"));
        }
        assert!(by_name("nope", 24, 7).is_none());
    }

    #[test]
    fn builders_are_deterministic() {
        for &name in NAMES {
            let a = by_name(name, 16, 99).unwrap();
            let b = by_name(name, 16, 99).unwrap();
            assert_eq!(a, b, "{name} must be seed-deterministic");
        }
    }

    #[test]
    fn all_reduce_has_ring_phases() {
        let s = all_reduce(16, 4, 1000, 3, Fidelity::Fluid);
        assert_eq!(s.phase_count(), 6); // 2 * (4 - 1)
        assert_eq!(s.flows.len(), 24); // 4 flows per phase
    }

    #[test]
    fn storage_rebuild_carries_midflow_fault() {
        let s = by_name("storage_rebuild", 24, 5).unwrap();
        assert_eq!(s.faults.len(), 1);
        assert!(s.faults[0].at_ns > 0);
        // Rebuild reads start exactly when the fault fires.
        assert!(s.flows.iter().any(|f| f.start_ns == s.faults[0].at_ns));
    }

    #[test]
    fn incast_is_a_synchronized_burst() {
        let s = by_name("incast", 24, 5).unwrap();
        let target = s.flows[0].dst;
        assert!(s.flows.iter().all(|f| f.dst == target));
        assert!(s.flows.iter().all(|f| f.gap_ns == Some(0)));
        assert!(matches!(s.fidelity, Fidelity::Packet { .. }));
    }

    #[test]
    fn distinct_picks_are_distinct() {
        let mut rng = SplitMix64::stream(1, 0);
        let picks = pick_distinct(50, 20, &mut rng);
        let mut seen: Vec<u32> = picks.iter().map(|n| n.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20);
    }
}
