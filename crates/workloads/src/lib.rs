//! # dcn-workloads — traffic patterns and failure scenarios
//!
//! Deterministic, seedable generators for the workloads the ABCCC
//! evaluation runs: [`traffic`] produces `(src, dst)` flow sets (random
//! permutation, all-to-all, incast, one-to-many, uniform random, bisection
//! stress, MapReduce shuffle, elephant/mice), [`failures`] samples uniform
//! [`netgraph::FaultMask`]s, [`correlated`] builds structured outages
//! (rack loss, level loss, cable-bundle cuts), [`trace`] replays CSV
//! flow traces, and [`scenarios`] builds production [`dcn_sim::Scenario`]
//! values for the unified traffic engine (collectives, incast,
//! storage-reconstruction storms, diurnal load with flash crowds).
//!
//! ```
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let pairs = dcn_workloads::traffic::random_permutation(64, &mut rng);
//! assert_eq!(pairs.len(), 64);
//! assert!(pairs.iter().all(|(s, d)| s != d));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlated;
pub mod failures;
pub mod scenarios;
pub mod trace;
pub mod traffic;

pub use failures::FailureScenario;
pub use trace::TraceFlow;
