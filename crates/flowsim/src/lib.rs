//! # flowsim — compatibility shim over [`dcn_sim`]
//!
//! The flow-level simulator now lives in the unified traffic engine
//! (`dcn-sim`), whose fluid fidelity backend runs the same
//! progressive-filling max-min allocator event by event. This crate
//! re-exports the historical API unchanged, so existing callers keep
//! compiling; new code should depend on `dcn-sim` directly and consider
//! the scenario-level [`dcn_sim::TrafficEngine`].
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use flowsim::FlowSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Abccc::new(AbcccParams::new(2, 1, 2)?)?;
//! let pairs = [(netgraph::NodeId(0), netgraph::NodeId(7))];
//! let report = FlowSim::new(&topo).run(&pairs)?;
//! assert_eq!(report.flows, 1);
//! assert!((report.min_rate - 1.0).abs() < 1e-9); // lone flow gets the full link
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcn_sim::{max_min_allocation, DirectedLink, FlowSim, FlowSimReport};
