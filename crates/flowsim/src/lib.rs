//! # flowsim — flow-level simulator with max-min fair allocation
//!
//! The ABCCC paper evaluates structures with flow-level simulation: route
//! every flow with the family's native routing algorithm, then give the
//! flow set the **max-min fair** bandwidth allocation (progressive
//! filling, the steady state TCP-fair sharing approximates). Links are
//! full duplex: each cable carries its capacity independently per
//! direction.
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use flowsim::FlowSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Abccc::new(AbcccParams::new(2, 1, 2)?)?;
//! let pairs = [(netgraph::NodeId(0), netgraph::NodeId(7))];
//! let report = FlowSim::new(&topo).run(&pairs)?;
//! assert_eq!(report.flows, 1);
//! assert!((report.min_rate - 1.0).abs() < 1e-9); // lone flow gets the full link
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod maxmin;
mod sim;

pub use maxmin::{max_min_allocation, DirectedLink};
pub use sim::{FlowSim, FlowSimReport};
