//! Integration invariants for the max-min fair allocator, cross-checked
//! against the telemetry counters it publishes: per-directed-link
//! allocation sums never exceed capacity, the published residual agrees,
//! and the round counters are consistent with the calls made.

use abccc::{Abccc, AbcccParams};
use flowsim::{max_min_allocation, DirectedLink, FlowSim};
use netgraph::{Route, Topology};
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// dcn-telemetry state is process-global: serialize the tests in this
/// binary that enable recording and read counter deltas.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn topo() -> Abccc {
    Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap() // 81 servers
}

fn permutation_flows(topo: &Abccc, seed: u64) -> Vec<Vec<DirectedLink>> {
    let net = topo.network();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pairs = dcn_workloads::traffic::random_permutation(net.server_count(), &mut rng);
    pairs
        .iter()
        .map(|&(s, d)| {
            let r: Route = topo.route(s, d).expect("fault-free route");
            DirectedLink::of_route(net, &r)
        })
        .collect()
}

/// Max-min's defining feasibility invariant: on every directed link the
/// allocated rates sum to at most the link capacity.
#[test]
fn allocations_never_oversubscribe_a_link() {
    let _l = lock();
    let t = topo();
    let net = t.network();
    let flows = permutation_flows(&t, 0xA110C);

    dcn_telemetry::set_enabled(true);
    let live = dcn_telemetry::enabled(); // false when built with `noop`
    let rates = max_min_allocation(net, &flows);
    dcn_telemetry::set_enabled(false);

    assert_eq!(rates.len(), flows.len());
    let mut per_link = vec![0.0f64; net.link_count() * 2];
    for (f, &rate) in flows.iter().zip(&rates) {
        assert!(rate.is_finite() && rate > 0.0, "rate {rate}");
        for dl in f {
            per_link[dl.index()] += rate;
        }
    }
    let mut worst = 0.0f64;
    for (i, link) in net.links().iter().enumerate() {
        for dir in [2 * i, 2 * i + 1] {
            let over = per_link[dir] - link.capacity;
            assert!(
                over <= 1e-6,
                "directed link {dir}: allocated {} > capacity {}",
                per_link[dir],
                link.capacity
            );
            worst = worst.max(over);
        }
    }
    // The allocator's own residual gauge must agree with the external
    // recomputation (it tracks the worst oversubscription it ever saw).
    if live {
        let residual = dcn_telemetry::registry()
            .float_gauge("flowsim.maxmin.residual")
            .get();
        assert!(
            residual <= 1e-6,
            "allocator reported residual {residual} but claims feasibility"
        );
        assert!(
            worst <= residual + 1e-6,
            "gauge under-reports: {worst} vs {residual}"
        );
    }
}

/// Every max-min call runs at least one progressive-filling round, and
/// the rounds histogram stays consistent with the calls counter.
#[test]
fn round_counters_are_consistent() {
    let _l = lock();
    let t = topo();
    let net = t.network();
    let flows = permutation_flows(&t, 0x20511D5);

    let reg = dcn_telemetry::registry();
    let calls_before = reg.counter("flowsim.maxmin.calls").get();
    let rounds_before = reg.counter("flowsim.maxmin.rounds").get();
    let hist_before = reg.histogram("flowsim.maxmin.rounds_per_call").count();

    dcn_telemetry::set_enabled(true);
    let live = dcn_telemetry::enabled();
    let calls = 3u64;
    for _ in 0..calls {
        let _ = max_min_allocation(net, &flows);
    }
    dcn_telemetry::set_enabled(false);

    if live {
        assert_eq!(
            reg.counter("flowsim.maxmin.calls").get() - calls_before,
            calls
        );
        assert_eq!(
            reg.histogram("flowsim.maxmin.rounds_per_call").count() - hist_before,
            calls
        );
        let rounds = reg.counter("flowsim.maxmin.rounds").get() - rounds_before;
        assert!(
            rounds >= calls,
            "each call must take ≥ 1 filling round, got {rounds} over {calls} calls"
        );
    }
}

/// The sim-level flow accounting matches its report: routed + unroutable
/// counters advance by exactly the pair count.
#[test]
fn simulator_flow_counters_match_report() {
    let _l = lock();
    let t = topo();
    let net = t.network();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let pairs = dcn_workloads::traffic::random_permutation(net.server_count(), &mut rng);

    let reg = dcn_telemetry::registry();
    let routed_before = reg.counter("flowsim.flows_routed").get();
    let unroutable_before = reg.counter("flowsim.flows_unroutable").get();

    dcn_telemetry::set_enabled(true);
    let live = dcn_telemetry::enabled();
    let report = FlowSim::new(&t).run(&pairs).expect("fault-free run");
    dcn_telemetry::set_enabled(false);

    assert_eq!(report.flows + report.unroutable, pairs.len());
    if live {
        let routed = reg.counter("flowsim.flows_routed").get() - routed_before;
        let unroutable = reg.counter("flowsim.flows_unroutable").get() - unroutable_before;
        assert_eq!(routed as usize, report.flows);
        assert_eq!(unroutable as usize, report.unroutable);
    }
}
