//! Property tests validating the graph engines against independent
//! brute-force implementations on random networks.

use netgraph::{BfsScratch, DistanceEngine, FaultMask, Network, NodeId};
use proptest::prelude::*;

/// A random connected-ish mixed network: `servers` servers, `switches`
/// switches, and each extra edge chosen uniformly (server–server,
/// server–switch or switch–switch forbidden only when identical).
fn random_network(servers: usize, switches: usize, extra_edges: usize, seed: u64) -> Network {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let mut nodes = Vec::new();
    for _ in 0..servers {
        nodes.push(net.add_server());
    }
    for _ in 0..switches {
        nodes.push(net.add_switch());
    }
    // Random spanning chain first so most instances are connected.
    for i in 1..nodes.len() {
        let j = rng.gen_range(0..i);
        net.add_link(nodes[i], nodes[j], 1.0);
    }
    for _ in 0..extra_edges {
        let a = nodes[rng.gen_range(0..nodes.len())];
        let b = nodes[rng.gen_range(0..nodes.len())];
        if a != b {
            net.add_link(a, b, 1.0);
        }
    }
    net
}

/// Brute-force server-hop distances via Floyd–Warshall on the 0/1-weighted
/// node graph (cost of entering a server is 1, a switch 0).
fn floyd_warshall_server_hops(net: &Network, src: NodeId) -> Vec<u32> {
    let n = net.node_count();
    const INF: u32 = u32::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        row[v] = 0;
    }
    for link in net.links() {
        let (a, b) = (link.a.index(), link.b.index());
        let wa = if net.is_server(link.a) { 1 } else { 0 };
        let wb = if net.is_server(link.b) { 1 } else { 0 };
        d[a][b] = d[a][b].min(wb);
        d[b][a] = d[b][a].min(wa);
    }
    for k in 0..n {
        for i in 0..n {
            if d[i][k] == INF {
                continue;
            }
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d[src.index()]
        .iter()
        .map(|&x| if x >= INF { u32::MAX } else { x })
        .collect()
}

/// Brute-force min edge cut between s and t by enumerating edge subsets
/// (only for tiny networks).
fn brute_force_min_cut(net: &Network, s: NodeId, t: NodeId) -> u64 {
    let m = net.link_count();
    assert!(m <= 12, "brute force only for tiny networks");
    'outer: for cut_size in 0..=m {
        // All subsets of links with exactly cut_size members.
        for subset in 0u32..(1 << m) {
            if subset.count_ones() as usize != cut_size {
                continue;
            }
            let mut mask = FaultMask::new(net);
            for l in 0..m {
                if subset & (1 << l) != 0 {
                    mask.fail_link(netgraph::LinkId(l as u32));
                }
            }
            let dist = netgraph::bfs::link_distances(net, s, Some(&mask));
            if dist[t.index()] == netgraph::bfs::UNREACHABLE {
                return cut_size as u64;
            }
        }
        if cut_size == m {
            break 'outer;
        }
    }
    m as u64
}

/// Seed-style two-pass all-pairs reference: one full per-source BFS sweep
/// for the diameter, a second for the average path length, each allocating
/// fresh distance vectors — exactly what the fused engine replaced.
fn two_pass_reference(net: &Network) -> Option<(u32, f64)> {
    let servers: Vec<NodeId> = net.server_ids().collect();
    if servers.len() < 2 {
        return None;
    }
    let mut diameter = 0u32;
    for &s in &servers {
        let dist = netgraph::bfs::server_hop_distances(net, s, None);
        for &t in &servers {
            if dist[t.index()] == netgraph::bfs::UNREACHABLE {
                return None;
            }
            diameter = diameter.max(dist[t.index()]);
        }
    }
    let mut total = 0u64;
    for &s in &servers {
        let dist = netgraph::bfs::server_hop_distances(net, s, None);
        for &t in &servers {
            total += u64::from(dist[t.index()]);
        }
    }
    let n = servers.len() as f64;
    Some((diameter, total as f64 / (n * (n - 1.0))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_matches_floyd_warshall(
        servers in 2usize..8,
        switches in 0usize..5,
        extra in 0usize..10,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, switches, extra, seed);
        for src in net.server_ids() {
            let fast = netgraph::bfs::server_hop_distances(&net, src, None);
            let slow = floyd_warshall_server_hops(&net, src);
            for v in net.server_ids() {
                prop_assert_eq!(fast[v.index()], slow[v.index()],
                    "src {} dst {}", src, v);
            }
        }
    }

    #[test]
    fn shortest_path_length_matches_distance(
        servers in 2usize..8,
        switches in 0usize..5,
        extra in 0usize..10,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, switches, extra, seed);
        let servers_v: Vec<NodeId> = net.server_ids().collect();
        let (s, t) = (servers_v[0], *servers_v.last().expect("non-empty"));
        let dist = netgraph::bfs::server_hop_distances(&net, s, None);
        match netgraph::bfs::shortest_path(&net, s, t, None) {
            Some(path) => {
                let r = netgraph::Route::new(path);
                prop_assert!(r.validate(&net, None).is_ok());
                prop_assert_eq!(r.server_hops(&net) as u32, dist[t.index()]);
            }
            None => prop_assert_eq!(dist[t.index()], u32::MAX),
        }
    }

    #[test]
    fn dinic_matches_brute_force_min_cut(
        servers in 2usize..5,
        extra in 0usize..6,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, 0, extra, seed);
        prop_assume!(net.link_count() <= 12);
        let servers_v: Vec<NodeId> = net.server_ids().collect();
        let (s, t) = (servers_v[0], *servers_v.last().expect("non-empty"));
        prop_assume!(s != t);
        prop_assert_eq!(
            netgraph::maxflow::edge_connectivity_pair(&net, s, t),
            brute_force_min_cut(&net, s, t)
        );
    }

    #[test]
    fn disjoint_paths_count_equals_vertex_connectivity(
        servers in 2usize..7,
        switches in 0usize..4,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, switches, extra, seed);
        let servers_v: Vec<NodeId> = net.server_ids().collect();
        let (s, t) = (servers_v[0], *servers_v.last().expect("non-empty"));
        prop_assume!(s != t);
        prop_assume!(net.find_link(s, t).is_none()); // vertex connectivity defined
        let k = netgraph::maxflow::vertex_connectivity_pair(&net, s, t, None);
        let paths = netgraph::paths::vertex_disjoint_paths(&net, s, t, usize::MAX, None);
        prop_assert_eq!(paths.len() as u64, k);
        for p in &paths {
            prop_assert!(p.validate(&net, None).is_ok());
        }
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                prop_assert!(paths[i].is_internally_disjoint_from(&paths[j]));
            }
        }
    }

    #[test]
    fn engine_scratch_matches_reference_bfs(
        servers in 2usize..8,
        switches in 0usize..5,
        extra in 0usize..10,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, switches, extra, seed);
        let engine = DistanceEngine::new(&net);
        let mut scratch = BfsScratch::new();
        // One scratch across every source: reuse must not leak state.
        for src in net.server_ids() {
            engine.distances_into(src, &mut scratch);
            let reference = netgraph::bfs::server_hop_distances(&net, src, None);
            prop_assert_eq!(&scratch.dist, &reference, "src {}", src);
        }
    }

    #[test]
    fn fused_all_pairs_matches_two_pass(
        servers in 2usize..8,
        switches in 0usize..5,
        extra in 0usize..10,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, switches, extra, seed);
        let fused = DistanceEngine::new(&net).all_pairs();
        match two_pass_reference(&net) {
            None => prop_assert!(fused.is_none()),
            Some((diameter, apl)) => {
                let fused = fused.expect("reference says connected");
                prop_assert_eq!(fused.diameter, diameter);
                // Both divide the same exact u64 sum — bitwise equal.
                prop_assert_eq!(fused.avg_path_length, apl);
                let hist_total: u64 = fused.ecc_histogram.iter().sum();
                prop_assert_eq!(hist_total, net.server_count() as u64);
                prop_assert_eq!(fused.ecc_histogram.len() as u32, diameter + 1);
            }
        }
    }

    #[test]
    fn fused_link_load_matches_per_pair_paths(
        servers in 2usize..7,
        switches in 0usize..4,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        let net = random_network(servers, switches, extra, seed);
        let Some(stats) = DistanceEngine::new(&net).all_pairs_with_load() else {
            return Ok(());
        };
        let mut expected = vec![0u64; net.link_count()];
        for s in net.server_ids() {
            for t in net.server_ids() {
                if s == t {
                    continue;
                }
                let path = netgraph::bfs::shortest_path(&net, s, t, None)
                    .expect("connected");
                for w in path.windows(2) {
                    let l = net.find_link(w[0], w[1]).expect("adjacent");
                    expected[l.index()] += 1;
                }
            }
        }
        prop_assert_eq!(stats.link_load, expected);
    }

    #[test]
    fn find_link_matches_linear_scan(
        servers in 2usize..7,
        switches in 0usize..4,
        extra in 0usize..12,
        seed in any::<u64>(),
    ) {
        // `extra` edges may duplicate pairs, so parallel links occur here.
        let net = random_network(servers, switches, extra, seed);
        for a in net.node_ids() {
            for b in net.node_ids() {
                let scan = net
                    .neighbors(a)
                    .iter()
                    .find(|&&(nb, _)| nb == b)
                    .map(|&(_, l)| l);
                prop_assert_eq!(net.find_link(a, b), scan, "{} -> {}", a, b);
            }
        }
    }

    #[test]
    fn components_partition_and_respect_masks(
        servers in 2usize..8,
        switches in 0usize..5,
        extra in 0usize..8,
        seed in any::<u64>(),
        kill in 0usize..3,
    ) {
        use rand::{Rng, SeedableRng};
        let net = random_network(servers, switches, extra, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD);
        let mut mask = FaultMask::new(&net);
        for _ in 0..kill {
            mask.fail_node(NodeId(rng.gen_range(0..net.node_count()) as u32));
        }
        let labels = netgraph::connectivity::components(&net, Some(&mask));
        // Two alive adjacent nodes share a label; dead nodes have none.
        for (i, link) in net.links().iter().enumerate() {
            if mask.edge_usable(&net, netgraph::LinkId(i as u32)) {
                prop_assert_eq!(labels[link.a.index()], labels[link.b.index()]);
            }
        }
        for v in net.node_ids() {
            prop_assert_eq!(labels[v.index()] == usize::MAX, !mask.node_alive(v));
        }
        // Reachability agrees with labels.
        for s in net.server_ids().take(2) {
            if !mask.node_alive(s) {
                continue;
            }
            let reach = netgraph::connectivity::reachable_servers(&net, s, Some(&mask));
            for r in reach {
                prop_assert_eq!(labels[r.index()], labels[s.index()]);
            }
        }
    }
}
