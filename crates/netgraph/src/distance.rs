//! The all-pairs server-hop distance engine.
//!
//! [`DistanceEngine`] runs 0–1 BFS (see [`crate::bfs`] for the metric) from
//! every server over the CSR adjacency with three structural optimizations
//! over naive per-source sweeps:
//!
//! * **Reusable scratch** ([`BfsScratch`]): distance/parent/queue buffers
//!   are allocated once per worker thread and reset with `fill`, so a
//!   source costs zero allocations.
//! * **Work stealing**: sources are handed to worker threads through an
//!   atomic counter instead of static chunking, so a thread that drew
//!   cheap sources keeps pulling work instead of idling at a barrier.
//! * **Fused accumulation**: diameter, average path length, the
//!   eccentricity histogram and (optionally) per-link shortest-path load
//!   are all folded into per-thread accumulators during the *same* sweep
//!   and merged at the end, where the seed implementation ran one full
//!   all-pairs sweep per metric.
//!
//! Per-link load counts, for every ordered server pair `(s, t)`, the links
//! of the *canonical* shortest path — the one [`crate::bfs::shortest_path`]
//! returns — so the engine's load vector matches routing every pair
//! individually, at a fraction of the cost (subtree counts over the BFS
//! parent tree instead of per-pair path walks).

use crate::{Network, NodeId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Unreachable marker, identical to [`crate::bfs::UNREACHABLE`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Reusable per-thread buffers for single-source 0–1 BFS.
///
/// Create once (per thread), pass to every
/// [`DistanceEngine::distances_into`] call; nothing allocates after the
/// first use on a given network size.
#[derive(Debug, Default)]
pub struct BfsScratch {
    /// Distance per node, [`UNREACHABLE`] where not reached.
    pub dist: Vec<u32>,
    /// BFS deque (0-weight edges go to the front, 1-weight to the back).
    deque: VecDeque<u32>,
    /// Parent node per node (`u32::MAX` = none/root).
    parent: Vec<u32>,
    /// Link to parent per node (`u32::MAX` = none/root).
    parent_link: Vec<u32>,
    /// Nodes in parent-tree BFS order (parents before children).
    order: Vec<u32>,
    /// Child-list heads / next pointers for the parent tree (index = node).
    child_head: Vec<u32>,
    child_next: Vec<u32>,
    /// Servers in the parent-tree subtree rooted at each node.
    subtree: Vec<u64>,
}

impl BfsScratch {
    /// Creates scratch sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset_dist(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist = vec![UNREACHABLE; n];
        } else {
            self.dist.fill(UNREACHABLE);
        }
        self.deque.clear();
    }

    fn reset_parents(&mut self, n: usize) {
        for v in [&mut self.parent, &mut self.parent_link] {
            if v.len() != n {
                *v = vec![u32::MAX; n];
            } else {
                v.fill(u32::MAX);
            }
        }
    }
}

/// Everything one fused all-pairs sweep produces.
#[derive(Debug, Clone, PartialEq)]
pub struct AllPairsStats {
    /// Exact diameter in server hops (max eccentricity).
    pub diameter: u32,
    /// Exact average server-hop path length over ordered server pairs.
    pub avg_path_length: f64,
    /// `ecc_histogram[e]` = number of servers with eccentricity `e`.
    pub ecc_histogram: Vec<u64>,
    /// Per-link traversal count over canonical shortest paths of all
    /// ordered server pairs; empty unless requested via
    /// [`DistanceEngine::all_pairs_with_load`].
    pub link_load: Vec<u64>,
}

/// What one single-source sweep contributes to the all-pairs statistics:
/// the source's eccentricity and its distance sum over every server.
///
/// This is exactly the per-source fold of the all-pairs sweep, exposed so
/// samplers ([`crate::sample`]) reuse the engine's traversal and
/// accumulation instead of duplicating them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStats {
    /// Max server-hop distance from the source to any server.
    pub ecc: u32,
    /// Sum of server-hop distances from the source to every server.
    pub dist_sum: u64,
}

/// Folds the distances of one finished search over `servers`; `None` if
/// any of them is unreachable. Shared verbatim by the all-pairs
/// accumulator and [`DistanceEngine::source_stats_into`], so both agree
/// bit for bit.
fn fold_servers(
    scratch: &BfsScratch,
    servers: impl IntoIterator<Item = NodeId>,
) -> Option<SourceStats> {
    let mut ecc = 0u32;
    let mut dist_sum = 0u64;
    for t in servers {
        let d = scratch.dist[t.index()];
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
        dist_sum += u64::from(d);
    }
    Some(SourceStats { ecc, dist_sum })
}

/// All-pairs server-hop BFS driver over a [`Network`]'s CSR adjacency.
pub struct DistanceEngine<'a> {
    net: &'a Network,
    /// Flat per-node server flags: one cache-friendly byte per node in the
    /// BFS inner loop, instead of a `NodeKind` enum comparison per edge.
    is_server: Vec<bool>,
}

impl<'a> DistanceEngine<'a> {
    /// Creates an engine for `net`, building the CSR if needed.
    pub fn new(net: &'a Network) -> Self {
        net.csr(); // materialize before threads race on the OnceLock
        let is_server = net.node_ids().map(|v| net.is_server(v)).collect();
        DistanceEngine { net, is_server }
    }

    /// Single-source server-hop distances into reusable scratch.
    ///
    /// Equivalent to [`crate::bfs::server_hop_distances`] without a fault
    /// mask (identical relaxation order, hence identical distances), but
    /// allocation-free after the first call: read `scratch.dist` afterward.
    pub fn distances_into(&self, src: NodeId, scratch: &mut BfsScratch) {
        self.search(src, scratch, false);
    }

    /// One source's contribution to the all-pairs statistics — its
    /// eccentricity and distance sum over every server — using the same
    /// traversal and the same fold as [`DistanceEngine::all_pairs`].
    ///
    /// Returns `None` if some server is unreachable from `src`. This is
    /// the building block of the sampled estimators in [`crate::sample`]:
    /// `samples == server_count` recovers the exact sweep's inputs.
    pub fn source_stats_into(&self, src: NodeId, scratch: &mut BfsScratch) -> Option<SourceStats> {
        self.search(src, scratch, false);
        fold_servers(scratch, self.net.server_ids())
    }

    /// The fused sweep: diameter, average path length and eccentricity
    /// histogram in one parallel pass. `None` if fewer than two servers or
    /// some server pair is disconnected.
    pub fn all_pairs(&self) -> Option<AllPairsStats> {
        self.sweep(false)
    }

    /// [`DistanceEngine::all_pairs`] plus per-link canonical shortest-path
    /// load, still in a single pass.
    pub fn all_pairs_with_load(&self) -> Option<AllPairsStats> {
        self.sweep(true)
    }

    /// Core 0–1 BFS. Matches `bfs::server_hop_search` relaxation order
    /// exactly (CSR preserves per-node insertion order), so parent trees —
    /// and therefore canonical shortest paths — are identical.
    fn search(&self, src: NodeId, scratch: &mut BfsScratch, track_parents: bool) {
        let csr = self.net.csr();
        let n = self.net.node_count();
        scratch.reset_dist(n);
        if track_parents {
            scratch.reset_parents(n);
        }
        scratch.dist[src.index()] = 0;
        scratch.deque.push_back(src.0);
        while let Some(u) = scratch.deque.pop_front() {
            let du = scratch.dist[u as usize];
            for &(v, l) in csr.neighbors(NodeId(u)) {
                let w = u32::from(self.is_server[v.index()]);
                let nd = du + w;
                if nd < scratch.dist[v.index()] {
                    scratch.dist[v.index()] = nd;
                    if track_parents {
                        scratch.parent[v.index()] = u;
                        scratch.parent_link[v.index()] = l.0;
                    }
                    if w == 0 {
                        scratch.deque.push_front(v.0);
                    } else {
                        scratch.deque.push_back(v.0);
                    }
                }
            }
        }
    }

    fn sweep(&self, with_load: bool) -> Option<AllPairsStats> {
        let _sweep_span = dcn_telemetry::span!("netgraph.distance.all_pairs");
        dcn_telemetry::counter!("netgraph.distance.sweeps").inc();
        let net = self.net;
        let servers: Vec<NodeId> = net.server_ids().collect();
        let n_servers = servers.len();
        if n_servers < 2 {
            return None;
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n_servers);
        let next = AtomicUsize::new(0);
        let disconnected = AtomicBool::new(false);
        let servers = &servers[..];
        if threads == 1 {
            // Run inline: a lone worker gains nothing from spawn/join.
            let mut scratch = BfsScratch::new();
            let mut acc = ThreadAcc::new(with_load, net.link_count());
            for &src in servers {
                self.search(src, &mut scratch, with_load);
                if !acc.absorb(net, servers, src, &mut scratch, with_load) {
                    return None;
                }
            }
            record_worker_stats(n_servers as u64, 0);
            return Some(acc.finish(n_servers));
        }
        let next = &next;
        let disconnected = &disconnected;
        let accs: Vec<ThreadAcc> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let _worker_span = dcn_telemetry::span!("netgraph.distance.worker");
                        let mut scratch = BfsScratch::new();
                        let mut acc = ThreadAcc::new(with_load, net.link_count());
                        let mut sources = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= servers.len() || disconnected.load(Ordering::Relaxed) {
                                break;
                            }
                            sources += 1;
                            self.search(servers[i], &mut scratch, with_load);
                            if !acc.absorb(net, servers, servers[i], &mut scratch, with_load) {
                                disconnected.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        // A draw beyond the static fair share is work the
                        // counter redistributed away from a slower thread.
                        let fair = (servers.len() / threads) as u64;
                        record_worker_stats(sources, sources.saturating_sub(fair));
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("BFS worker panicked"))
                .collect()
        });
        if disconnected.load(Ordering::Relaxed) {
            return None;
        }
        let mut merged = ThreadAcc::new(with_load, net.link_count());
        for acc in accs {
            merged.merge(acc);
        }
        Some(merged.finish(n_servers))
    }
}

/// Folds one finished worker's load-balance telemetry into the global
/// registry: total sources processed, the per-thread distribution (its
/// spread is the load-imbalance signal) and how many draws exceeded the
/// thread's static fair share (work stealing in action).
fn record_worker_stats(sources: u64, steals: u64) {
    if !dcn_telemetry::enabled() {
        return;
    }
    dcn_telemetry::counter!("netgraph.distance.sources").add(sources);
    dcn_telemetry::counter!("netgraph.distance.steals").add(steals);
    dcn_telemetry::histogram!("netgraph.distance.sources_per_thread").record(sources);
}

/// Per-thread fused accumulator: merges are sums and maxes, so combining
/// them in any order yields the same totals — results are deterministic
/// despite work stealing.
struct ThreadAcc {
    max_ecc: u32,
    dist_sum: u64,
    ecc_hist: Vec<u64>,
    link_load: Vec<u64>,
}

impl ThreadAcc {
    fn new(with_load: bool, link_count: usize) -> Self {
        ThreadAcc {
            max_ecc: 0,
            dist_sum: 0,
            ecc_hist: Vec::new(),
            link_load: if with_load {
                vec![0; link_count]
            } else {
                Vec::new()
            },
        }
    }

    /// Folds one finished source into the accumulator; `false` means some
    /// server was unreachable and the sweep must abort.
    fn absorb(
        &mut self,
        net: &Network,
        servers: &[NodeId],
        src: NodeId,
        scratch: &mut BfsScratch,
        with_load: bool,
    ) -> bool {
        let Some(stats) = fold_servers(scratch, servers.iter().copied()) else {
            return false;
        };
        let ecc = stats.ecc;
        self.max_ecc = self.max_ecc.max(ecc);
        self.dist_sum += stats.dist_sum;
        if self.ecc_hist.len() <= ecc as usize {
            self.ecc_hist.resize(ecc as usize + 1, 0);
        }
        self.ecc_hist[ecc as usize] += 1;
        if with_load {
            accumulate_tree_load(net, scratch, src, &mut self.link_load);
        }
        true
    }

    fn finish(self, n_servers: usize) -> AllPairsStats {
        let pairs = n_servers as f64 * (n_servers as f64 - 1.0);
        AllPairsStats {
            diameter: self.max_ecc,
            avg_path_length: self.dist_sum as f64 / pairs,
            ecc_histogram: self.ecc_hist,
            link_load: self.link_load,
        }
    }

    fn merge(&mut self, other: ThreadAcc) {
        self.max_ecc = self.max_ecc.max(other.max_ecc);
        self.dist_sum += other.dist_sum;
        if self.ecc_hist.len() < other.ecc_hist.len() {
            self.ecc_hist.resize(other.ecc_hist.len(), 0);
        }
        for (a, b) in self.ecc_hist.iter_mut().zip(&other.ecc_hist) {
            *a += b;
        }
        for (a, b) in self.link_load.iter_mut().zip(&other.link_load) {
            *a += b;
        }
    }
}

/// Adds, for every server `t` reached by the last search in `scratch`, one
/// traversal to each link on the parent-tree path root→`t`.
///
/// Instead of walking each path (O(servers × path length)), count servers
/// per subtree: a tree edge is traversed once per server strictly below
/// it. The parent tree is re-walked in BFS order (children found via
/// head/next lists built by one backward pass), then subtree counts flow
/// leaf→root in reverse order — O(nodes) total per source.
fn accumulate_tree_load(net: &Network, scratch: &mut BfsScratch, src: NodeId, load: &mut [u64]) {
    let n = net.node_count();
    for v in [&mut scratch.child_head, &mut scratch.child_next] {
        if v.len() != n {
            *v = vec![u32::MAX; n];
        } else {
            v.fill(u32::MAX);
        }
    }
    if scratch.subtree.len() != n {
        scratch.subtree = vec![0; n];
    } else {
        scratch.subtree.fill(0);
    }
    for v in 0..n as u32 {
        let p = scratch.parent[v as usize];
        if p != u32::MAX {
            scratch.child_next[v as usize] = scratch.child_head[p as usize];
            scratch.child_head[p as usize] = v;
        }
    }
    // Parents precede children in `order` regardless of 0-weight chains
    // (which break `dist`-based ordering).
    scratch.order.clear();
    scratch.order.push(src.0);
    let mut head = 0;
    while head < scratch.order.len() {
        let u = scratch.order[head];
        head += 1;
        let mut c = scratch.child_head[u as usize];
        while c != u32::MAX {
            scratch.order.push(c);
            c = scratch.child_next[c as usize];
        }
    }
    for &v in scratch.order.iter().rev() {
        let own = u64::from(net.is_server(NodeId(v)) && scratch.dist[v as usize] > 0);
        let total = scratch.subtree[v as usize] + own;
        let p = scratch.parent[v as usize];
        if p != u32::MAX {
            scratch.subtree[p as usize] += total;
            if total > 0 {
                load[scratch.parent_link[v as usize] as usize] += total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::Network;

    /// Two switch stars bridged by a server: (s0,s1)-swA-(b)-swB-(s2,s3).
    fn dumbbell() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let s0 = net.add_server();
        let s1 = net.add_server();
        let b = net.add_server();
        let s2 = net.add_server();
        let s3 = net.add_server();
        let swa = net.add_switch();
        let swb = net.add_switch();
        for &s in &[s0, s1, b] {
            net.add_link(s, swa, 1.0);
        }
        for &s in &[b, s2, s3] {
            net.add_link(s, swb, 1.0);
        }
        (net, vec![s0, s1, b, s2, s3, swa, swb])
    }

    #[test]
    fn fused_sweep_matches_known_dumbbell_metrics() {
        let (net, _) = dumbbell();
        let stats = DistanceEngine::new(&net).all_pairs().unwrap();
        assert_eq!(stats.diameter, 2);
        assert!((stats.avg_path_length - 1.4).abs() < 1e-12);
        // b has eccentricity 1; the four outer servers have 2.
        assert_eq!(stats.ecc_histogram, vec![0, 1, 4]);
        assert!(stats.link_load.is_empty());
    }

    #[test]
    fn scratch_reuse_matches_reference_bfs() {
        let (net, nodes) = dumbbell();
        let engine = DistanceEngine::new(&net);
        let mut scratch = BfsScratch::new();
        for &src in &nodes[..5] {
            engine.distances_into(src, &mut scratch);
            assert_eq!(scratch.dist, bfs::server_hop_distances(&net, src, None));
        }
    }

    #[test]
    fn tree_load_matches_per_pair_path_walks() {
        let (net, _) = dumbbell();
        let stats = DistanceEngine::new(&net).all_pairs_with_load().unwrap();
        let mut expected = vec![0u64; net.link_count()];
        for s in net.server_ids() {
            for t in net.server_ids() {
                if s == t {
                    continue;
                }
                let path = bfs::shortest_path(&net, s, t, None).unwrap();
                for w in path.windows(2) {
                    let l = net.find_link(w[0], w[1]).unwrap();
                    expected[l.index()] += 1;
                }
            }
        }
        assert_eq!(stats.link_load, expected);
    }

    #[test]
    fn disconnected_reports_none() {
        let mut net = Network::new();
        net.add_server();
        net.add_server();
        assert!(DistanceEngine::new(&net).all_pairs().is_none());
        let single = {
            let mut n = Network::new();
            n.add_server();
            n
        };
        assert!(DistanceEngine::new(&single).all_pairs().is_none());
    }
}
