//! Graphviz DOT export — for papers, debugging and documentation.

use crate::{FaultMask, Network, NodeKind, Route};
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Highlight these routes (each gets a distinct pen color).
    pub highlight: Vec<Route>,
    /// Gray out failed elements instead of omitting them.
    pub mask: Option<FaultMask>,
    /// Graph name (`dcn` if empty).
    pub name: String,
}

/// Renders the network as an undirected Graphviz graph: servers as boxes,
/// switches as circles, failed elements dashed-gray, highlighted routes in
/// color.
///
/// ```
/// # use netgraph::{Network, dot};
/// let mut net = Network::new();
/// let a = net.add_server();
/// let sw = net.add_switch();
/// net.add_link(a, sw, 1.0);
/// let out = dot::to_dot(&net, &dot::DotOptions::default());
/// assert!(out.contains("graph dcn {"));
/// assert!(out.contains("n0 -- n1"));
/// ```
pub fn to_dot(net: &Network, opts: &DotOptions) -> String {
    const PALETTE: [&str; 6] = ["red", "blue", "darkgreen", "orange", "purple", "brown"];
    let mut out = String::new();
    let name = if opts.name.is_empty() {
        "dcn"
    } else {
        &opts.name
    };
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    for n in net.node_ids() {
        let dead = opts
            .mask
            .as_ref()
            .map(|m| !m.node_alive(n))
            .unwrap_or(false);
        let (shape, fill) = match net.kind(n) {
            NodeKind::Server => ("box", "lightblue"),
            NodeKind::Switch => ("circle", "lightgray"),
        };
        let style = if dead {
            "style=\"filled,dashed\", fillcolor=gray, fontcolor=gray40"
        } else {
            "style=filled"
        };
        let _ = writeln!(
            out,
            "  {n} [shape={shape}, fillcolor={fill}, {style}, label=\"{n}\"];"
        );
    }
    // Route-edge → color index.
    let mut colored = std::collections::HashMap::new();
    for (ri, route) in opts.highlight.iter().enumerate() {
        for w in route.nodes().windows(2) {
            let key = if w[0] <= w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            colored.entry(key).or_insert(ri % PALETTE.len());
        }
    }
    for link in net.links() {
        let key = if link.a <= link.b {
            (link.a, link.b)
        } else {
            (link.b, link.a)
        };
        let dead = opts
            .mask
            .as_ref()
            .map(|m| {
                !m.link_alive(net.find_link(link.a, link.b).expect("own link"))
                    || !m.node_alive(link.a)
                    || !m.node_alive(link.b)
            })
            .unwrap_or(false);
        let attrs = if let Some(&ci) = colored.get(&key) {
            format!(" [color={}, penwidth=2.5]", PALETTE[ci])
        } else if dead {
            " [color=gray, style=dashed]".to_string()
        } else {
            String::new()
        };
        let _ = writeln!(out, "  {} -- {}{attrs};", link.a, link.b);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, Vec<crate::NodeId>) {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let sw = net.add_switch();
        net.add_link(a, sw, 1.0);
        net.add_link(sw, b, 1.0);
        (net, vec![a, b, sw])
    }

    #[test]
    fn renders_nodes_and_edges() {
        let (net, n) = tiny();
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains(&format!("{} -- {}", n[0], n[2])));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlights_routes() {
        let (net, n) = tiny();
        let route = Route::new(vec![n[0], n[2], n[1]]);
        let dot = to_dot(
            &net,
            &DotOptions {
                highlight: vec![route],
                ..Default::default()
            },
        );
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn masks_render_dashed() {
        let (net, n) = tiny();
        let mut mask = FaultMask::new(&net);
        mask.fail_node(n[2]);
        let dot = to_dot(
            &net,
            &DotOptions {
                mask: Some(mask),
                ..Default::default()
            },
        );
        assert!(dot.contains("dashed"));
    }

    #[test]
    fn custom_name() {
        let (net, _) = tiny();
        let dot = to_dot(
            &net,
            &DotOptions {
                name: "abccc".into(),
                ..Default::default()
            },
        );
        assert!(dot.starts_with("graph abccc {"));
    }
}
