//! Routes and the topology abstraction shared by all network families.

use crate::{FaultMask, LinkId, Network, NodeId, NodeKind, RouteError};
use serde::{Deserialize, Serialize};

/// A concrete path through a [`Network`]: the full node sequence from a
/// source server to a destination server, *including* the switches crossed.
///
/// In the server-centric DCN literature (BCube, BCCC, ABCCC, DCell) path
/// length is counted in **server hops**: a `server → switch → server`
/// traversal is one hop, and so is a direct `server → server` cable. A
/// switch never appears as an endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    nodes: Vec<NodeId>,
}

impl Route {
    /// Builds a route from the full node sequence.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty. (Use a single-element sequence for the
    /// trivial route from a server to itself.)
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a route has at least one node");
        Route { nodes }
    }

    /// The full node sequence, source first.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Source server.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination server.
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// Number of physical cables traversed.
    #[inline]
    pub fn link_hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Path length in **server hops** w.r.t. `net`: each maximal
    /// `server → (switch) → server` step counts 1. This is the length metric
    /// of the ABCCC paper.
    pub fn server_hops(&self, net: &Network) -> usize {
        self.nodes
            .iter()
            .skip(1)
            .filter(|&&n| net.kind(n) == NodeKind::Server)
            .count()
    }

    /// The sequence of link ids traversed.
    ///
    /// Returns `None` if two consecutive nodes of the route are not
    /// adjacent in `net` (i.e. the route is invalid for this network).
    pub fn links(&self, net: &Network) -> Option<Vec<LinkId>> {
        self.nodes
            .windows(2)
            .map(|w| net.find_link(w[0], w[1]))
            .collect()
    }

    /// Validates the route against `net` and an optional fault mask:
    /// endpoints are servers, consecutive nodes are adjacent, no node is
    /// repeated (routes are simple paths), and every traversed element is
    /// alive.
    pub fn validate(&self, net: &Network, mask: Option<&FaultMask>) -> Result<(), String> {
        if !net.is_server(self.src()) {
            return Err(format!("source {} is not a server", self.src()));
        }
        if !net.is_server(self.dst()) {
            return Err(format!("destination {} is not a server", self.dst()));
        }
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        for &n in &self.nodes {
            if !seen.insert(n) {
                return Err(format!("node {n} repeated — route is not a simple path"));
            }
            if let Some(m) = mask {
                if !m.node_alive(n) {
                    return Err(format!("route crosses failed node {n}"));
                }
            }
        }
        for w in self.nodes.windows(2) {
            match net.find_link(w[0], w[1]) {
                None => return Err(format!("{} and {} are not adjacent", w[0], w[1])),
                Some(l) => {
                    if let Some(m) = mask {
                        if !m.link_alive(l) {
                            return Err(format!("route crosses failed link {l}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// `true` if this route shares no intermediate node with `other`
    /// (endpoints excluded) — the vertex-disjointness used for the parallel
    /// paths property of ABCCC/BCCC.
    pub fn is_internally_disjoint_from(&self, other: &Route) -> bool {
        let mine: std::collections::HashSet<_> =
            self.nodes[1..self.nodes.len() - 1].iter().collect();
        other.nodes[1..other.nodes.len() - 1]
            .iter()
            .all(|n| !mine.contains(n))
    }
}

/// Object-safe upcast to [`std::any::Any`], so consumers holding a
/// `&dyn Topology` can recover the concrete family (e.g. to reach
/// cube-specific accessors). Blanket-implemented for every `'static` type;
/// implementors never write this by hand.
pub trait AsAny {
    /// `self` as `&dyn Any`, for downcasting.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<T: std::any::Any> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The interface every network family (ABCCC, BCCC, BCube, DCell, fat-tree,
/// …) implements, so metrics and simulators are family-agnostic.
///
/// Implementors must follow the crate conventions: servers are added to the
/// network first (ids `0..server_count`), and `route` uses the family's
/// *native* routing algorithm (not generic shortest path) so that simulator
/// results reflect the algorithms the papers propose.
pub trait Topology: AsAny {
    /// Human-readable family name with parameters, e.g. `"ABCCC(4,2,3)"`.
    fn name(&self) -> String;

    /// The materialized physical network.
    fn network(&self) -> &Network;

    /// Number of servers. Server node ids are `0..server_count()`.
    fn server_count(&self) -> usize {
        self.network().server_count()
    }

    /// Routes from server `src` to server `dst` with the family's native
    /// one-to-one routing algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NotAServer`] if an endpoint is not a server id.
    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError>;

    /// Up to `want` internally vertex-disjoint routes between two servers,
    /// primary route first. The default returns just the single native
    /// route; families with native parallel-path constructions (ABCCC,
    /// BCCC, BCube) override this — multipath simulation builds on it.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NotAServer`] if an endpoint is not a server.
    fn parallel_routes(
        &self,
        src: NodeId,
        dst: NodeId,
        want: usize,
    ) -> Result<Vec<Route>, RouteError> {
        let _ = want;
        Ok(vec![self.route(src, dst)?])
    }

    /// Fault-tolerant variant of [`Topology::route`]. The default falls back
    /// to breadth-first search on the surviving graph, which is a correct
    /// (if omniscient) baseline; families override this with their native
    /// detour schemes.
    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: &FaultMask,
    ) -> Result<Route, RouteError> {
        if !self.network().is_server(src) {
            return Err(RouteError::NotAServer(src));
        }
        if !self.network().is_server(dst) {
            return Err(RouteError::NotAServer(dst));
        }
        crate::bfs::shortest_path(self.network(), src, dst, Some(mask))
            .map(Route::new)
            .ok_or(RouteError::Unreachable { src, dst })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    fn line() -> (Network, Vec<NodeId>) {
        // s0 - sw - s1 - s2 (mixed switched and direct links)
        let mut net = Network::new();
        let s0 = net.add_server();
        let s1 = net.add_server();
        let s2 = net.add_server();
        let sw = net.add_switch();
        net.add_link(s0, sw, 1.0);
        net.add_link(sw, s1, 1.0);
        net.add_link(s1, s2, 1.0);
        (net, vec![s0, s1, s2, sw])
    }

    #[test]
    fn hop_metrics() {
        let (net, n) = line();
        let r = Route::new(vec![n[0], n[3], n[1], n[2]]);
        assert_eq!(r.link_hops(), 3);
        assert_eq!(r.server_hops(&net), 2); // s0→(sw)→s1 is 1, s1→s2 is 1
        r.validate(&net, None).unwrap();
        assert_eq!(r.links(&net).unwrap().len(), 3);
        assert_eq!(r.src(), n[0]);
        assert_eq!(r.dst(), n[2]);
    }

    #[test]
    fn trivial_route() {
        let (net, n) = line();
        let r = Route::new(vec![n[0]]);
        assert_eq!(r.server_hops(&net), 0);
        r.validate(&net, None).unwrap();
    }

    #[test]
    fn validate_rejects_nonadjacent() {
        let (net, n) = line();
        let r = Route::new(vec![n[0], n[2]]);
        assert!(r.validate(&net, None).unwrap_err().contains("not adjacent"));
    }

    #[test]
    fn validate_rejects_repeats() {
        let (net, n) = line();
        let r = Route::new(vec![n[0], n[3], n[0]]);
        assert!(r.validate(&net, None).unwrap_err().contains("repeated"));
    }

    #[test]
    fn validate_respects_mask() {
        let (net, n) = line();
        let mut mask = FaultMask::new(&net);
        mask.fail_node(n[3]);
        let r = Route::new(vec![n[0], n[3], n[1]]);
        assert!(r
            .validate(&net, Some(&mask))
            .unwrap_err()
            .contains("failed node"));
    }

    #[test]
    fn disjointness() {
        let (_, n) = line();
        let a = Route::new(vec![n[0], n[3], n[1]]);
        let b = Route::new(vec![n[0], n[2], n[1]]);
        assert!(a.is_internally_disjoint_from(&b));
        let c = Route::new(vec![n[0], n[3], n[2]]);
        assert!(!a.is_internally_disjoint_from(&c));
    }
}
