//! # netgraph — graph substrate for server-centric data-center networks
//!
//! This crate is the foundation of the ABCCC reproduction. It provides:
//!
//! * [`Network`] — a typed multigraph whose nodes are either **servers** or
//!   **switches** and whose edges are physical cables with a capacity,
//! * [`FaultMask`] — a cheap overlay marking failed nodes/links without
//!   mutating the topology, and [`FaultScenario`] — the seedable builder
//!   every fault experiment constructs masks through,
//! * BFS-based metrics ([`bfs`]): hop distances, shortest paths, exact and
//!   sampled diameter / average path length (switch-transparent "server
//!   hops", the metric used throughout the ABCCC paper family),
//! * the all-pairs [`DistanceEngine`] ([`distance`]): CSR-backed 0–1 BFS
//!   with reusable scratch, work-stealing source distribution and a fused
//!   single sweep for diameter + average path length + eccentricity
//!   histogram + per-link shortest-path load,
//! * exact minimum cuts via Dinic max-flow ([`maxflow`]): bisection width of
//!   a bipartition, pairwise edge/vertex connectivity,
//! * vertex-disjoint path extraction ([`paths`]),
//! * the [`Route`] type and the [`Topology`] trait implemented by every
//!   concrete network family (ABCCC, BCCC, BCube, DCell, fat-tree, …) so
//!   that the flow- and packet-level simulators work over any of them.
//!
//! ## Example
//!
//! ```
//! use netgraph::{Network, NodeKind};
//!
//! // A toy star: one switch connecting three servers.
//! let mut net = Network::new();
//! let s = [net.add_server(), net.add_server(), net.add_server()];
//! let sw = net.add_switch();
//! for &srv in &s {
//!     net.add_link(srv, sw, 1.0);
//! }
//! assert_eq!(net.server_count(), 3);
//! assert_eq!(net.switch_count(), 1);
//! assert_eq!(net.kind(sw), NodeKind::Switch);
//! let d = netgraph::bfs::server_hop_distances(&net, s[0], None);
//! assert_eq!(d[s[1].index()], 1); // server → switch → server is ONE hop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod connectivity;
pub mod distance;
pub mod dot;
mod error;
mod fault;
mod graph;
pub mod maxflow;
pub mod paths;
mod route;
pub mod sample;
mod scenario;
pub mod svg;

pub use distance::{AllPairsStats, BfsScratch, DistanceEngine, SourceStats};
pub use error::{NetworkError, RouteError};
pub use fault::FaultMask;
pub use graph::{Link, LinkId, Network, NodeId, NodeKind};
pub use route::{AsAny, Route, Topology};
pub use scenario::FaultScenario;
