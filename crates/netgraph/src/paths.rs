//! Vertex-disjoint path extraction.
//!
//! The parallel-path property of ABCCC/BCCC ("multiple near-equal parallel
//! paths between any pair of servers") is exercised by extracting a maximum
//! set of internally vertex-disjoint paths with max-flow and decomposing
//! the flow back into concrete [`Route`]s.

use crate::maxflow::vertex_split_graph;
use crate::{FaultMask, Network, NodeId, Route};

/// Extracts up to `limit` internally vertex-disjoint routes between servers
/// `s` and `t` (pass `usize::MAX` for all of them). Switches count as
/// capacity-1 interior vertices, so two returned routes never share a switch
/// either — they are fully physically independent.
///
/// Returns an empty vector if `s` and `t` are disconnected (under `mask`).
///
/// # Panics
///
/// Panics if `s == t`.
pub fn vertex_disjoint_paths(
    net: &Network,
    s: NodeId,
    t: NodeId,
    limit: usize,
    mask: Option<&FaultMask>,
) -> Vec<Route> {
    let cap = u64::try_from(limit).unwrap_or(u64::MAX / 8);
    let (mut fg, s_out, t_in) = vertex_split_graph(net, s, t, mask, cap);
    // Flow enters through s's internal arc (capacity = `limit`) so the
    // requested bound actually constrains the flow value.
    let s_in = s_out - 1;
    let t_out = t_in + 1;
    let flow = fg.max_flow(s_in, t_out);
    if flow == 0 {
        return Vec::new();
    }

    // Decompose: every interior node carries ≤ 1 unit, so walking positive-
    // flow arcs from s_in yields simple paths. Per-arc remaining flow is
    // decremented as it is consumed (terminal internal arcs carry several
    // units).
    let mut rem: Vec<u64> = (0..fg.arc_count()).map(|ai| fg.flow_on(ai)).collect();
    let mut routes = Vec::with_capacity(flow as usize);
    for _ in 0..flow {
        let mut nodes = vec![s];
        let mut cur = s_in;
        while cur != t_in {
            let Some(ai) = next_flow_arc(&fg, cur, &rem) else {
                break;
            };
            rem[ai] -= 1;
            cur = fg.arc_head(ai);
            // Node-split mapping: even index = v_in, odd = v_out of node v/2.
            if cur % 2 == 0 {
                nodes.push(NodeId((cur / 2) as u32));
            }
        }
        if cur == t_in {
            debug_assert_eq!(*nodes.last().expect("non-empty"), t);
            routes.push(Route::new(nodes));
        }
    }
    routes
}

/// First outgoing forward arc of `u` with remaining (undecomposed) flow.
fn next_flow_arc(fg: &crate::maxflow::FlowGraph, u: usize, rem: &[u64]) -> Option<usize> {
    fg.out_arcs(u)
        .iter()
        .map(|&a| a as usize)
        .find(|&ai| ai % 2 == 0 && rem[ai] > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    /// K4 on servers: 3 disjoint paths between any pair.
    fn k4() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let n: Vec<_> = (0..4).map(|_| net.add_server()).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                net.add_link(n[i], n[j], 1.0);
            }
        }
        (net, n)
    }

    #[test]
    fn k4_has_three_disjoint_paths() {
        let (net, n) = k4();
        let paths = vertex_disjoint_paths(&net, n[0], n[3], usize::MAX, None);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            p.validate(&net, None).unwrap();
            assert_eq!(p.src(), n[0]);
            assert_eq!(p.dst(), n[3]);
        }
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert!(paths[i].is_internally_disjoint_from(&paths[j]));
            }
        }
    }

    #[test]
    fn limit_is_respected() {
        let (net, n) = k4();
        let paths = vertex_disjoint_paths(&net, n[0], n[3], 2, None);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn switch_interior_counts_as_shared() {
        // Two servers joined by two distinct switches: 2 disjoint paths;
        // joined by one switch with parallel cables: only 1 (switch shared).
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let sw1 = net.add_switch();
        let sw2 = net.add_switch();
        net.add_link(a, sw1, 1.0);
        net.add_link(sw1, b, 1.0);
        net.add_link(a, sw2, 1.0);
        net.add_link(sw2, b, 1.0);
        let paths = vertex_disjoint_paths(&net, a, b, usize::MAX, None);
        assert_eq!(paths.len(), 2);

        let mut net2 = Network::new();
        let a2 = net2.add_server();
        let b2 = net2.add_server();
        let sw = net2.add_switch();
        net2.add_link(a2, sw, 1.0);
        net2.add_link(sw, b2, 1.0);
        net2.add_link(a2, sw, 1.0);
        net2.add_link(sw, b2, 1.0);
        let paths2 = vertex_disjoint_paths(&net2, a2, b2, usize::MAX, None);
        assert_eq!(paths2.len(), 1);
    }

    #[test]
    fn disconnected_yields_empty() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let _ = (a, b);
        assert!(vertex_disjoint_paths(&net, a, b, usize::MAX, None).is_empty());
    }

    #[test]
    fn mask_removes_paths() {
        let (net, n) = k4();
        let mut mask = crate::FaultMask::new(&net);
        mask.fail_node(n[1]);
        let paths = vertex_disjoint_paths(&net, n[0], n[3], usize::MAX, Some(&mask));
        assert_eq!(paths.len(), 2);
        for p in &paths {
            p.validate(&net, Some(&mask)).unwrap();
        }
    }
}
