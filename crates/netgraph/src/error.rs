//! Error types.

use crate::NodeId;
use std::fmt;

/// Errors raised while constructing or validating a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A topology parameter was out of its legal range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Human-readable explanation of the constraint that failed.
        reason: String,
    },
    /// The requested network would exceed the construction size guard.
    TooLarge {
        /// Number of nodes the construction would need.
        nodes: u128,
        /// The configured limit.
        limit: u128,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NetworkError::TooLarge { nodes, limit } => {
                write!(
                    f,
                    "network too large to materialize: {nodes} nodes > limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Errors raised while routing.
///
/// This is the single error type of every fallible routing API in the
/// workspace: routers, simulators and the resilience campaign engine all
/// return it. Failures that originate below routing (an invalid
/// parameterization, an oversized construction) are carried in the
/// [`RouteError::Network`] variant instead of a disjoint enum, so callers
/// match one type and can still reach the underlying [`NetworkError`]
/// through [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The source or destination id does not name a server of the topology.
    NotAServer(NodeId),
    /// No path exists between the endpoints (under the active fault mask).
    Unreachable {
        /// Source server.
        src: NodeId,
        /// Destination server.
        dst: NodeId,
    },
    /// The routing algorithm gave up (e.g. detour budget exhausted) even
    /// though a path might exist.
    GaveUp {
        /// Source server.
        src: NodeId,
        /// Destination server.
        dst: NodeId,
        /// How many detour attempts were made.
        attempts: usize,
    },
    /// A network-level failure surfaced while routing (invalid topology
    /// parameters, construction guards, malformed scenario configuration).
    ///
    /// The wrapped [`NetworkError`] is exposed via
    /// [`std::error::Error::source`].
    Network(NetworkError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NotAServer(n) => write!(f, "{n} is not a server"),
            RouteError::Unreachable { src, dst } => {
                write!(f, "no usable path from {src} to {dst}")
            }
            RouteError::GaveUp { src, dst, attempts } => {
                write!(
                    f,
                    "routing {src} -> {dst} gave up after {attempts} attempts"
                )
            }
            RouteError::Network(e) => write!(f, "network error while routing: {e}"),
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for RouteError {
    fn from(e: NetworkError) -> Self {
        RouteError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetworkError::InvalidParameter {
            name: "n",
            reason: "must be >= 2".into(),
        };
        assert!(e.to_string().contains('n') && e.to_string().contains(">= 2"));
        let r = RouteError::Unreachable {
            src: NodeId(1),
            dst: NodeId(2),
        };
        assert!(r.to_string().contains("n1") && r.to_string().contains("n2"));
        let g = RouteError::GaveUp {
            src: NodeId(0),
            dst: NodeId(3),
            attempts: 7,
        };
        assert!(g.to_string().contains('7'));
    }

    #[test]
    fn network_errors_wrap_with_source() {
        use std::error::Error;
        let inner = NetworkError::InvalidParameter {
            name: "trials",
            reason: "must be positive".into(),
        };
        let e: RouteError = inner.clone().into();
        assert!(matches!(&e, RouteError::Network(n) if *n == inner));
        assert!(e.to_string().contains("trials"));
        let src = e.source().expect("Network variant exposes a source");
        assert_eq!(src.to_string(), inner.to_string());
        // The other variants have no source.
        assert!(RouteError::NotAServer(NodeId(1)).source().is_none());
    }
}
