//! Self-contained SVG rendering — no Graphviz needed.
//!
//! Lays servers on an inner ring and switches on an outer ring (stable,
//! deterministic positions keyed by node id), draws cables as lines, and
//! can highlight routes and gray out failed elements. Good enough to eyeball
//! a few hundred nodes; use [`crate::dot`] + Graphviz for publication
//! figures.

use crate::{FaultMask, Network, NodeKind, Route};
use std::fmt::Write as _;

/// Options for [`to_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width/height in pixels.
    pub size: u32,
    /// Routes to highlight (distinct colors, drawn on top).
    pub highlight: Vec<Route>,
    /// Gray out failed elements.
    pub mask: Option<FaultMask>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            size: 800,
            highlight: Vec::new(),
            mask: None,
        }
    }
}

fn positions(net: &Network, size: f64) -> Vec<(f64, f64)> {
    let center = size / 2.0;
    let servers: Vec<usize> = net.server_ids().map(|n| n.index()).collect();
    let switches: Vec<usize> = net.switch_ids().map(|n| n.index()).collect();
    let mut pos = vec![(0.0, 0.0); net.node_count()];
    let place = |ids: &[usize], radius: f64, pos: &mut Vec<(f64, f64)>| {
        let count = ids.len().max(1) as f64;
        for (i, &idx) in ids.iter().enumerate() {
            let angle = std::f64::consts::TAU * i as f64 / count;
            pos[idx] = (center + radius * angle.cos(), center + radius * angle.sin());
        }
    };
    place(&servers, size * 0.28, &mut pos);
    place(&switches, size * 0.42, &mut pos);
    pos
}

/// Renders the network to an SVG string.
pub fn to_svg(net: &Network, opts: &SvgOptions) -> String {
    const PALETTE: [&str; 5] = ["#d62728", "#1f77b4", "#2ca02c", "#ff7f0e", "#9467bd"];
    let size = f64::from(opts.size);
    let pos = positions(net, size);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{0}" height="{0}" viewBox="0 0 {0} {0}">"#,
        opts.size
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Cables first (under the nodes).
    for (i, link) in net.links().iter().enumerate() {
        let dead = opts
            .mask
            .as_ref()
            .is_some_and(|m| !m.edge_usable(net, crate::LinkId(i as u32)));
        let (x1, y1) = pos[link.a.index()];
        let (x2, y2) = pos[link.b.index()];
        let style = if dead {
            r##"stroke="#cccccc" stroke-dasharray="4 3""##
        } else {
            r##"stroke="#999999""##
        };
        let _ = writeln!(
            out,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" {style} stroke-width="1"/>"#
        );
    }
    // Highlighted routes.
    for (ri, route) in opts.highlight.iter().enumerate() {
        let color = PALETTE[ri % PALETTE.len()];
        for w in route.nodes().windows(2) {
            let (x1, y1) = pos[w[0].index()];
            let (x2, y2) = pos[w[1].index()];
            let _ = writeln!(
                out,
                r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="3" opacity="0.85"/>"#
            );
        }
    }
    // Nodes.
    for n in net.node_ids() {
        let (x, y) = pos[n.index()];
        let dead = opts.mask.as_ref().is_some_and(|m| !m.node_alive(n));
        match net.kind(n) {
            NodeKind::Server => {
                let fill = if dead { "#dddddd" } else { "#7eb6ff" };
                let _ = writeln!(
                    out,
                    r#"<rect x="{:.1}" y="{:.1}" width="8" height="8" fill="{fill}" stroke="black" stroke-width="0.5"><title>{n}</title></rect>"#,
                    x - 4.0,
                    y - 4.0
                );
            }
            NodeKind::Switch => {
                let fill = if dead { "#eeeeee" } else { "#c9c9c9" };
                let _ = writeln!(
                    out,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="{fill}" stroke="black" stroke-width="0.5"><title>{n}</title></circle>"#
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, Vec<crate::NodeId>) {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let sw = net.add_switch();
        net.add_link(a, sw, 1.0);
        net.add_link(sw, b, 1.0);
        (net, vec![a, b, sw])
    }

    #[test]
    fn renders_wellformed_svg() {
        let (net, _) = tiny();
        let svg = to_svg(&net, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect x=").count(), 2); // two servers
        assert_eq!(svg.matches("<circle").count(), 1); // one switch
        assert_eq!(svg.matches("<line").count(), 2); // two cables
    }

    #[test]
    fn highlight_draws_thick_lines() {
        let (net, n) = tiny();
        let svg = to_svg(
            &net,
            &SvgOptions {
                highlight: vec![Route::new(vec![n[0], n[2], n[1]])],
                ..Default::default()
            },
        );
        assert!(svg.contains(r##"stroke="#d62728""##));
        assert!(svg.contains(r#"stroke-width="3""#));
    }

    #[test]
    fn mask_grays_out() {
        let (net, n) = tiny();
        let mut mask = FaultMask::new(&net);
        mask.fail_node(n[2]);
        let svg = to_svg(
            &net,
            &SvgOptions {
                mask: Some(mask),
                ..Default::default()
            },
        );
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("#eeeeee"));
    }

    #[test]
    fn deterministic() {
        let (net, _) = tiny();
        assert_eq!(
            to_svg(&net, &SvgOptions::default()),
            to_svg(&net, &SvgOptions::default())
        );
    }
}
