//! Connected components and survivability under failures.

use crate::{FaultMask, Network, NodeId};

/// Component label for each node (usize::MAX for failed nodes). Labels are
/// dense and assigned in discovery order.
pub fn components(net: &Network, mask: Option<&FaultMask>) -> Vec<usize> {
    let mut label = vec![usize::MAX; net.node_count()];
    let mut next = 0usize;
    for start in net.node_ids() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        if let Some(m) = mask {
            if !m.node_alive(start) {
                continue;
            }
        }
        label[start.index()] = next;
        let mut q = std::collections::VecDeque::new();
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            for &(v, l) in net.neighbors(u) {
                let ok = match mask {
                    None => true,
                    Some(m) => m.link_alive(l) && m.node_alive(v),
                };
                if ok && label[v.index()] == usize::MAX {
                    label[v.index()] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// `true` if every pair of *alive* servers is mutually connected.
pub fn servers_connected(net: &Network, mask: Option<&FaultMask>) -> bool {
    let label = components(net, mask);
    let mut first = None;
    for s in net.server_ids() {
        if let Some(m) = mask {
            if !m.node_alive(s) {
                continue;
            }
        }
        match first {
            None => first = Some(label[s.index()]),
            Some(f) => {
                if label[s.index()] != f {
                    return false;
                }
            }
        }
    }
    true
}

/// Fraction of alive servers in the largest connected component
/// (1.0 when all alive servers are mutually connected; 0.0 if none alive).
pub fn largest_component_server_fraction(net: &Network, mask: Option<&FaultMask>) -> f64 {
    let label = components(net, mask);
    let mut counts = std::collections::HashMap::new();
    let mut alive = 0usize;
    for s in net.server_ids() {
        if let Some(m) = mask {
            if !m.node_alive(s) {
                continue;
            }
        }
        alive += 1;
        *counts.entry(label[s.index()]).or_insert(0usize) += 1;
    }
    if alive == 0 {
        return 0.0;
    }
    let biggest = counts.values().copied().max().unwrap_or(0);
    biggest as f64 / alive as f64
}

/// Ids of servers reachable from `src` (including `src`) under `mask`.
pub fn reachable_servers(net: &Network, src: NodeId, mask: Option<&FaultMask>) -> Vec<NodeId> {
    let dist = crate::bfs::link_distances(net, src, mask);
    net.server_ids()
        .filter(|s| dist[s.index()] != crate::bfs::UNREACHABLE)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    fn two_islands() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let c = net.add_server();
        let d = net.add_server();
        net.add_link(a, b, 1.0);
        net.add_link(c, d, 1.0);
        (net, vec![a, b, c, d])
    }

    #[test]
    fn labels_partition_islands() {
        let (net, n) = two_islands();
        let l = components(&net, None);
        assert_eq!(l[n[0].index()], l[n[1].index()]);
        assert_eq!(l[n[2].index()], l[n[3].index()]);
        assert_ne!(l[n[0].index()], l[n[2].index()]);
        assert!(!servers_connected(&net, None));
        assert_eq!(largest_component_server_fraction(&net, None), 0.5);
    }

    #[test]
    fn bridge_failure_splits() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let c = net.add_server();
        net.add_link(a, b, 1.0);
        let l = net.add_link(b, c, 1.0);
        assert!(servers_connected(&net, None));
        let mut mask = FaultMask::new(&net);
        mask.fail_link(l);
        assert!(!servers_connected(&net, Some(&mask)));
        assert_eq!(
            largest_component_server_fraction(&net, Some(&mask)),
            2.0 / 3.0
        );
        assert_eq!(reachable_servers(&net, a, Some(&mask)), vec![a, b]);
    }

    #[test]
    fn dead_servers_do_not_count() {
        let (net, n) = two_islands();
        let mut mask = FaultMask::new(&net);
        mask.fail_node(n[2]);
        mask.fail_node(n[3]);
        // All alive servers (a, b) are mutually connected.
        assert!(servers_connected(&net, Some(&mask)));
        assert_eq!(largest_component_server_fraction(&net, Some(&mask)), 1.0);
    }
}
