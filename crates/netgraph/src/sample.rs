//! Sampled graph-metric estimators for instances beyond the O(V²) wall.
//!
//! Exact diameter/APL need one BFS per server — quadratic work that stops
//! being feasible around 10⁴–10⁵ servers. Past that point the accepted
//! methodology (Jellyfish, and the flat-network scale studies) is *source
//! sampling*: run the same single-source sweep from `k ≪ V` seeded sources
//! and report a point estimate with a confidence interval. This module
//! implements that over [`DistanceEngine::source_stats_into`], so the
//! sampler and the exact engine share one traversal and one fold.
//!
//! Determinism contract: for a fixed `(network, samples, seed)` the output
//! is **byte-identical at any worker thread count**. Sources are drawn up
//! front by a single seeded RNG, workers write into per-source slots, and
//! all floating-point folds run sequentially in slot order afterward.
//!
//! Estimator semantics (what the error bars mean):
//!
//! * **Diameter** — `max` of sampled eccentricities, a certified *lower
//!   bound* on the exact diameter (each sampled eccentricity is exact).
//! * **APL** — mean of per-source mean distances. Sources are drawn
//!   without replacement, so with `samples == server_count` the estimate
//!   equals the exact APL and the interval collapses to zero. The CI95
//!   half-width is `1.96·s/√k` with `s` the sample standard deviation of
//!   the per-source means — on vertex-transitive instances (every ABCCC)
//!   all per-source means coincide and the interval is exactly zero.
//! * **Bisection** — min cut over seeded random balanced server
//!   bipartitions with switches assigned greedily, an *upper bound* on the
//!   true bisection width (every concrete balanced cut is).

use crate::distance::{BfsScratch, DistanceEngine, SourceStats};
use crate::{Network, NodeId};
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sampled point estimate with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (`1.96·s/√k`).
    pub ci95: f64,
    /// Number of samples behind the estimate.
    pub samples: usize,
}

impl Estimate {
    /// `true` if `value` lies inside `[mean − ci95, mean + ci95]` (with a
    /// tiny epsilon for float folding).
    pub fn brackets(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95 + 1e-9
    }
}

/// Output of one sampled metrics pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledMetrics {
    /// Lower bound on the exact diameter: max eccentricity over the
    /// sampled sources (each individual eccentricity is exact).
    pub diameter_lb: u32,
    /// Estimated average server-hop path length over ordered pairs.
    pub apl: Estimate,
    /// Seed the sources were drawn with (provenance echo).
    pub seed: u64,
}

/// Draws `samples` distinct server ids with a seeded RNG, in draw order.
///
/// Requesting at least `server_count` sources returns every server in id
/// order — the estimate then degenerates to the exact computation.
pub fn sample_sources(server_count: usize, samples: usize, seed: u64) -> Vec<NodeId> {
    if samples >= server_count {
        return (0..server_count as u32).map(NodeId).collect();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(samples);
    let mut out = Vec::with_capacity(samples);
    while out.len() < samples {
        let s = rng.gen_range(0..server_count) as u32;
        if seen.insert(s) {
            out.push(NodeId(s));
        }
    }
    out
}

/// Sampled diameter lower bound and APL estimate over `samples` seeded
/// sources, parallelized by work stealing yet byte-identical at any
/// thread count. `None` if the network has under two servers or some
/// sampled source cannot reach every server.
pub fn sampled_server_metrics(net: &Network, samples: usize, seed: u64) -> Option<SampledMetrics> {
    let _span = dcn_telemetry::span!("netgraph.sample.metrics");
    let n = net.server_count();
    if n < 2 || samples == 0 {
        return None;
    }
    let sources = sample_sources(n, samples, seed);
    let engine = DistanceEngine::new(net);
    let slots = run_sources(&engine, &sources);
    // Sequential fold in slot (draw) order: thread count cannot reorder it.
    let k = sources.len();
    let mut diameter_lb = 0u32;
    let mut means = Vec::with_capacity(k);
    for slot in slots {
        let s = slot?;
        diameter_lb = diameter_lb.max(s.ecc);
        means.push(s.dist_sum as f64 / (n as f64 - 1.0));
    }
    let mean = means.iter().sum::<f64>() / k as f64;
    let var = if k > 1 {
        means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (k as f64 - 1.0)
    } else {
        0.0
    };
    Some(SampledMetrics {
        diameter_lb,
        apl: Estimate {
            mean,
            ci95: 1.96 * (var / k as f64).sqrt(),
            samples: k,
        },
        seed,
    })
}

/// Runs one [`DistanceEngine::source_stats_into`] per source, work-stolen
/// across threads, results placed in source order.
fn run_sources(engine: &DistanceEngine<'_>, sources: &[NodeId]) -> Vec<Option<SourceStats>> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(sources.len());
    if threads <= 1 {
        let mut scratch = BfsScratch::new();
        return sources
            .iter()
            .map(|&src| engine.source_stats_into(src, &mut scratch))
            .collect();
    }
    let slots: Vec<Mutex<Option<SourceStats>>> =
        (0..sources.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = BfsScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= sources.len() {
                        break;
                    }
                    *slots[i].lock().expect("slot poisoned") =
                        engine.source_stats_into(sources[i], &mut scratch);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned"))
        .collect()
}

/// Result of seeded balanced-bipartition bisection probing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionEstimate {
    /// Minimum crossing-link count found — an upper bound on the true
    /// bisection width.
    pub min_cut: u64,
    /// Mean crossing-link count over the trials.
    pub mean_cut: f64,
    /// Trials run.
    pub trials: usize,
}

/// Estimates bisection width as the min over `trials` seeded random
/// balanced server bipartitions of the physical links crossing the cut,
/// with each switch assigned to the side holding the majority of its
/// already-assigned neighbors (ties and isolated switches go to side A).
///
/// Every probe is a concrete balanced cut, so the result is always an
/// **upper bound** on the true bisection width. Trials run sequentially
/// off one seeded RNG — deterministic by construction. `None` if the
/// network has fewer than two servers or `trials == 0`.
pub fn sampled_bisection(net: &Network, trials: usize, seed: u64) -> Option<BisectionEstimate> {
    let _span = dcn_telemetry::span!("netgraph.sample.bisection");
    let n = net.server_count();
    if n < 2 || trials == 0 {
        return None;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut servers: Vec<u32> = (0..n as u32).collect();
    let mut side = vec![false; net.node_count()];
    let mut min_cut = u64::MAX;
    let mut sum = 0u64;
    for _ in 0..trials {
        // Partial Fisher–Yates: only the first half needs shuffling.
        for i in 0..n / 2 {
            let j = rng.gen_range(i..n);
            servers.swap(i, j);
        }
        side.iter_mut().for_each(|s| *s = false);
        for &s in &servers[..n / 2] {
            side[s as usize] = true;
        }
        for sw in net.switch_ids() {
            let (mut a, mut b) = (0usize, 0usize);
            for &(nb, _) in net.neighbors(sw) {
                if side[nb.index()] {
                    a += 1;
                } else {
                    b += 1;
                }
            }
            side[sw.index()] = a > b;
        }
        let mut cut = 0u64;
        for l in 0..net.link_count() as u32 {
            let link = net.link(crate::LinkId(l));
            cut += u64::from(side[link.a.index()] != side[link.b.index()]);
        }
        min_cut = min_cut.min(cut);
        sum += cut;
    }
    Some(BisectionEstimate {
        min_cut,
        mean_cut: sum as f64 / trials as f64,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two switch stars bridged by a server: (s0,s1)-swA-(b)-swB-(s2,s3).
    fn dumbbell() -> Network {
        let mut net = Network::new();
        let servers: Vec<_> = (0..5).map(|_| net.add_server()).collect();
        let swa = net.add_switch();
        let swb = net.add_switch();
        for &s in &[servers[0], servers[1], servers[2]] {
            net.add_link(s, swa, 1.0);
        }
        for &s in &[servers[2], servers[3], servers[4]] {
            net.add_link(s, swb, 1.0);
        }
        net
    }

    #[test]
    fn full_sampling_recovers_exact_values() {
        let net = dumbbell();
        let exact = DistanceEngine::new(&net).all_pairs().unwrap();
        let s = sampled_server_metrics(&net, net.server_count(), 7).unwrap();
        assert_eq!(s.diameter_lb, exact.diameter);
        assert!((s.apl.mean - exact.avg_path_length).abs() < 1e-12);
        assert_eq!(s.apl.samples, net.server_count());
        assert!(s.apl.brackets(exact.avg_path_length));
    }

    #[test]
    fn partial_sampling_is_a_diameter_lower_bound() {
        let net = dumbbell();
        let exact = DistanceEngine::new(&net).all_pairs().unwrap();
        for seed in 0..16 {
            let s = sampled_server_metrics(&net, 2, seed).unwrap();
            assert!(s.diameter_lb <= exact.diameter, "seed {seed}");
            assert!(s.apl.ci95 >= 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let net = dumbbell();
        let a = sampled_server_metrics(&net, 3, 42).unwrap();
        let b = sampled_server_metrics(&net, 3, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(sample_sources(100, 10, 1), sample_sources(100, 10, 1));
        assert_ne!(sample_sources(100, 10, 1), sample_sources(100, 10, 2));
    }

    #[test]
    fn sources_are_distinct_and_clamped() {
        let srcs = sample_sources(8, 100, 3);
        assert_eq!(srcs.len(), 8);
        let srcs = sample_sources(1000, 16, 3);
        assert_eq!(srcs.len(), 16);
        let mut dedup = srcs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn disconnected_reports_none() {
        let mut net = Network::new();
        net.add_server();
        net.add_server();
        assert_eq!(sampled_server_metrics(&net, 2, 0), None);
    }

    #[test]
    fn bisection_estimate_bounds_the_bridge_cut() {
        // With 5 servers the balanced split is 2 vs 3; putting one star's
        // outer pair alone on a side crosses exactly the bridge cable, so
        // the best probe finds cut 1 — and no concrete cut is ever 0 on a
        // connected network.
        let net = dumbbell();
        let est = sampled_bisection(&net, 32, 5).unwrap();
        assert!(est.min_cut >= 1, "{est:?}");
        assert!(est.mean_cut >= est.min_cut as f64);
        assert_eq!(est.trials, 32);
        assert_eq!(
            sampled_bisection(&net, 32, 5),
            sampled_bisection(&net, 32, 5)
        );
    }

    #[test]
    fn bisection_estimate_upper_bounds_the_maxflow_cut() {
        // For the canonical first-half-by-id bipartition the exact min cut
        // comes from max-flow; every probe is a concrete cut of *some*
        // balanced bipartition, so the estimate can never beat the global
        // minimum over bipartitions, which is ≤ the canonical exact value…
        // and on this 6-server double-star the canonical cut is the true
        // bisection.
        let mut net = Network::new();
        let servers: Vec<_> = (0..6).map(|_| net.add_server()).collect();
        let swa = net.add_switch();
        let swb = net.add_switch();
        for &s in &servers[..3] {
            net.add_link(s, swa, 1.0);
        }
        for &s in &servers[3..] {
            net.add_link(s, swb, 1.0);
        }
        net.add_link(swa, swb, 1.0);
        let n = net.server_count();
        let side: Vec<bool> = (0..net.node_count()).map(|i| i < n / 2).collect();
        let exact = crate::maxflow::bisection_width(&net, &side);
        let est = sampled_bisection(&net, 64, 11).unwrap();
        assert!(est.min_cut >= exact, "{est:?} vs exact {exact}");
    }
}
