//! The [`FaultScenario`] builder — the one way to construct a
//! [`FaultMask`].
//!
//! Before this module every experiment hand-rolled its own mask-poking
//! loop (`for s in servers.choose_multiple(..) { mask.fail_node(*s) }`),
//! each with its own sampling convention and seed plumbing. The builder
//! centralizes those conventions:
//!
//! * **fractional failures** fail exactly `round(frac · population)`
//!   uniformly chosen elements of a class — the convention every bench
//!   already used;
//! * **explicit failures** take node/link sets computed by the caller
//!   (e.g. an ABCCC crossbar group resolved through the addressing
//!   layer);
//! * **correlated switch-group failures** take down the named switches
//!   *and every cable incident to them* — the power-feed/cage-loss model
//!   where restoring the switch alone would not bring the cage back;
//! * **seeding** is explicit: [`FaultScenario::seeded`] fixes the random
//!   stream so an identical builder chain yields a bit-identical mask.
//!
//! ```
//! use netgraph::{FaultScenario, Network};
//! let mut net = Network::new();
//! let s: Vec<_> = (0..8).map(|_| net.add_server()).collect();
//! let sw = net.add_switch();
//! for &v in &s {
//!     net.add_link(v, sw, 1.0);
//! }
//! let mask = FaultScenario::seeded(7)
//!     .fail_servers_frac(0.25)
//!     .fail_links_frac(0.25)
//!     .build(&net);
//! assert_eq!(mask.failed_node_count(), 2);
//! assert_eq!(mask.failed_link_count(), 2);
//! // Identical chain + seed ⇒ identical mask.
//! let again = netgraph::FaultScenario::seeded(7)
//!     .fail_servers_frac(0.25)
//!     .fail_links_frac(0.25)
//!     .build(&net);
//! assert_eq!(mask, again);
//! ```

use crate::{FaultMask, LinkId, Network, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One recorded builder step, applied in insertion order by
/// [`FaultScenario::build`].
#[derive(Debug, Clone, PartialEq)]
enum ScenarioOp {
    /// Fail `round(frac · servers)` uniformly chosen servers.
    ServersFrac(f64),
    /// Fail `round(frac · switches)` uniformly chosen switches.
    SwitchesFrac(f64),
    /// Fail `round(frac · links)` uniformly chosen links.
    LinksFrac(f64),
    /// Fail exactly these nodes.
    Nodes(Vec<NodeId>),
    /// Fail exactly these links.
    Links(Vec<LinkId>),
    /// Correlated loss: fail these switches and every incident link.
    SwitchGroup(Vec<NodeId>),
}

/// Declarative, seedable recipe for a [`FaultMask`].
///
/// Build a chain of failure operations, then materialize it against a
/// concrete [`Network`] with [`FaultScenario::build`] (fresh RNG from the
/// recorded seed — deterministic) or [`FaultScenario::build_with`] (an
/// external RNG stream, for callers that interleave sampling with other
/// draws).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    seed: u64,
    ops: Vec<ScenarioOp>,
}

impl FaultScenario {
    /// Starts an empty scenario whose random draws derive from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultScenario {
            seed,
            ops: Vec::new(),
        }
    }

    /// Fails `round(frac · server_count)` uniformly chosen servers.
    #[must_use]
    pub fn fail_servers_frac(mut self, frac: f64) -> Self {
        self.ops.push(ScenarioOp::ServersFrac(frac));
        self
    }

    /// Fails `round(frac · switch_count)` uniformly chosen switches.
    #[must_use]
    pub fn fail_switches_frac(mut self, frac: f64) -> Self {
        self.ops.push(ScenarioOp::SwitchesFrac(frac));
        self
    }

    /// Fails `round(frac · link_count)` uniformly chosen links.
    #[must_use]
    pub fn fail_links_frac(mut self, frac: f64) -> Self {
        self.ops.push(ScenarioOp::LinksFrac(frac));
        self
    }

    /// Fails exactly the given nodes (servers or switches).
    #[must_use]
    pub fn fail_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.ops
            .push(ScenarioOp::Nodes(nodes.into_iter().collect()));
        self
    }

    /// Fails exactly the given links.
    #[must_use]
    pub fn fail_links(mut self, links: impl IntoIterator<Item = LinkId>) -> Self {
        self.ops
            .push(ScenarioOp::Links(links.into_iter().collect()));
        self
    }

    /// Correlated group loss: fails the given switches **and every link
    /// incident to them**, modelling a shared power feed or cage failure
    /// where the cables die with the switch (and do not come back if the
    /// switch node alone is restored).
    #[must_use]
    pub fn fail_switch_group(mut self, switches: impl IntoIterator<Item = NodeId>) -> Self {
        self.ops
            .push(ScenarioOp::SwitchGroup(switches.into_iter().collect()));
        self
    }

    /// `true` if no operation was recorded (the mask will be all-alive).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Materializes the scenario against `net` using a fresh RNG seeded
    /// from the recorded seed. Identical scenario + network ⇒ identical
    /// mask, regardless of what else the process has sampled.
    ///
    /// # Panics
    ///
    /// Panics if any recorded fraction is outside `[0, 1]`, or if an
    /// explicit node/link id is out of range for `net` (including a
    /// non-switch id passed to [`FaultScenario::fail_switch_group`]).
    pub fn build(&self, net: &Network) -> FaultMask {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.build_with(net, &mut rng)
    }

    /// Like [`FaultScenario::build`], but drawing from the caller's RNG
    /// stream (the recorded seed is ignored).
    ///
    /// # Panics
    ///
    /// Same contract as [`FaultScenario::build`].
    pub fn build_with(&self, net: &Network, rng: &mut impl Rng) -> FaultMask {
        let mut mask = FaultMask::new(net);
        for op in &self.ops {
            match op {
                ScenarioOp::ServersFrac(f) => {
                    let pop: Vec<NodeId> = net.server_ids().collect();
                    fail_fraction(&mut mask, &pop, *f, "server fraction", rng);
                }
                ScenarioOp::SwitchesFrac(f) => {
                    let pop: Vec<NodeId> = net.switch_ids().collect();
                    fail_fraction(&mut mask, &pop, *f, "switch fraction", rng);
                }
                ScenarioOp::LinksFrac(f) => {
                    assert!(
                        (0.0..=1.0).contains(f),
                        "link fraction must be in [0,1], got {f}"
                    );
                    let pop: Vec<u32> = (0..net.link_count() as u32).collect();
                    let kill = (*f * pop.len() as f64).round() as usize;
                    for l in pop.choose_multiple(rng, kill) {
                        mask.fail_link(LinkId(*l));
                    }
                }
                ScenarioOp::Nodes(nodes) => {
                    for &n in nodes {
                        assert!(n.index() < net.node_count(), "node {n} out of range");
                        mask.fail_node(n);
                    }
                }
                ScenarioOp::Links(links) => {
                    for &l in links {
                        assert!(l.index() < net.link_count(), "link {l} out of range");
                        mask.fail_link(l);
                    }
                }
                ScenarioOp::SwitchGroup(switches) => {
                    for &sw in switches {
                        assert!(
                            sw.index() < net.node_count() && !net.is_server(sw),
                            "switch-group member {sw} is not a switch of this network"
                        );
                        mask.fail_node(sw);
                        for &(_, l) in net.neighbors(sw) {
                            mask.fail_link(l);
                        }
                    }
                }
            }
        }
        mask
    }
}

/// Fails `round(frac · population)` members of `pop`, uniformly.
fn fail_fraction(mask: &mut FaultMask, pop: &[NodeId], frac: f64, what: &str, rng: &mut impl Rng) {
    assert!(
        (0.0..=1.0).contains(&frac),
        "{what} must be in [0,1], got {frac}"
    );
    let kill = (frac * pop.len() as f64).round() as usize;
    for n in pop.choose_multiple(rng, kill) {
        mask.fail_node(*n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `servers` servers on one switch.
    fn star(servers: usize) -> Network {
        let mut net = Network::new();
        let s: Vec<_> = (0..servers).map(|_| net.add_server()).collect();
        let sw = net.add_switch();
        for &v in &s {
            net.add_link(v, sw, 1.0);
        }
        net
    }

    #[test]
    fn fractional_counts_are_exact() {
        let net = star(20);
        let mask = FaultScenario::seeded(1).fail_servers_frac(0.25).build(&net);
        assert_eq!(mask.failed_node_count(), 5);
        assert_eq!(mask.failed_link_count(), 0);
    }

    #[test]
    fn same_seed_same_mask_different_seed_differs() {
        let net = star(40);
        let chain = |seed| -> FaultMask {
            FaultScenario::seeded(seed)
                .fail_servers_frac(0.5)
                .build(&net)
        };
        assert_eq!(chain(9), chain(9));
        assert_ne!(chain(9), chain(10));
    }

    #[test]
    fn explicit_sets_and_order_compose() {
        let net = star(4);
        let sw = net.switch_ids().next().unwrap();
        let mask = FaultScenario::seeded(0)
            .fail_nodes([NodeId(0)])
            .fail_links([LinkId(1)])
            .fail_switch_group([sw])
            .build(&net);
        assert!(!mask.node_alive(NodeId(0)));
        assert!(!mask.link_alive(LinkId(1)));
        assert!(!mask.node_alive(sw));
        // Group loss took every link of the star down with the switch.
        assert_eq!(mask.failed_link_count(), net.link_count());
    }

    #[test]
    fn switch_fraction_never_hits_servers() {
        let net = star(10);
        let mask = FaultScenario::seeded(3).fail_switches_frac(1.0).build(&net);
        assert_eq!(mask.failed_node_count(), 1);
        for s in net.server_ids() {
            assert!(mask.node_alive(s));
        }
    }

    #[test]
    fn empty_scenario_is_all_alive() {
        let net = star(5);
        let sc = FaultScenario::seeded(11);
        assert!(sc.is_empty());
        let mask = sc.build(&net);
        assert_eq!(mask, FaultMask::new(&net));
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_fraction_panics() {
        let net = star(4);
        FaultScenario::seeded(0).fail_links_frac(1.5).build(&net);
    }

    #[test]
    #[should_panic(expected = "is not a switch")]
    fn server_in_switch_group_panics() {
        let net = star(4);
        FaultScenario::seeded(0)
            .fail_switch_group([NodeId(0)])
            .build(&net);
    }
}
