//! Failure overlays.

use crate::{LinkId, Network, NodeId};
use serde::{Deserialize, Serialize};

/// A cheap overlay marking nodes and links as failed, without mutating the
/// underlying [`Network`].
///
/// A failed node implicitly fails every traversal through it; its links are
/// *not* marked failed individually (they come back if the node recovers).
///
/// ```
/// # use netgraph::{Network, FaultMask};
/// let mut net = Network::new();
/// let a = net.add_server();
/// let b = net.add_server();
/// let l = net.add_link(a, b, 1.0);
/// let mut mask = FaultMask::new(&net);
/// assert!(mask.link_alive(l) && mask.node_alive(a));
/// mask.fail_node(a);
/// assert!(!mask.node_alive(a));
/// assert!(!mask.edge_usable(&net, l)); // an endpoint died
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMask {
    node_down: Vec<bool>,
    link_down: Vec<bool>,
}

impl FaultMask {
    /// Creates an all-alive mask sized for `net`.
    pub fn new(net: &Network) -> Self {
        FaultMask {
            node_down: vec![false; net.node_count()],
            link_down: vec![false; net.link_count()],
        }
    }

    /// Marks node `n` failed.
    pub fn fail_node(&mut self, n: NodeId) {
        self.node_down[n.index()] = true;
    }

    /// Marks node `n` alive again.
    pub fn restore_node(&mut self, n: NodeId) {
        self.node_down[n.index()] = false;
    }

    /// Marks link `l` failed.
    pub fn fail_link(&mut self, l: LinkId) {
        self.link_down[l.index()] = true;
    }

    /// `true` if node `n` is alive.
    #[inline]
    pub fn node_alive(&self, n: NodeId) -> bool {
        !self.node_down[n.index()]
    }

    /// `true` if link `l` itself is alive (endpoints not considered).
    #[inline]
    pub fn link_alive(&self, l: LinkId) -> bool {
        !self.link_down[l.index()]
    }

    /// `true` if link `l` and both of its endpoints are alive — i.e. the
    /// edge can actually carry traffic.
    #[inline]
    pub fn edge_usable(&self, net: &Network, l: LinkId) -> bool {
        if !self.link_alive(l) {
            return false;
        }
        let link = net.link(l);
        self.node_alive(link.a) && self.node_alive(link.b)
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.node_down.iter().filter(|&&d| d).count()
    }

    /// Number of failed links (not counting links dead via endpoints).
    pub fn failed_link_count(&self) -> usize {
        self.link_down.iter().filter(|&&d| d).count()
    }

    /// Iterator over failed node ids.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_down
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterator over explicitly failed link ids (links dead only via a
    /// failed endpoint are not included).
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.link_down
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| LinkId(i as u32))
    }

    /// `true` if this mask's failures are a superset of `earlier`'s — every
    /// node and link failed in `earlier` is also failed here. Incremental
    /// consumers (e.g. a compiled forwarding table patching itself) use
    /// this to tell "more faults accumulated" apart from "something was
    /// repaired", which requires a full reset.
    ///
    /// Masks sized for different networks are never ordered (`false`).
    pub fn covers(&self, earlier: &FaultMask) -> bool {
        self.node_down.len() == earlier.node_down.len()
            && self.link_down.len() == earlier.link_down.len()
            && earlier
                .node_down
                .iter()
                .zip(&self.node_down)
                .all(|(&was, &is)| is || !was)
            && earlier
                .link_down
                .iter()
                .zip(&self.link_down)
                .all(|(&was, &is)| is || !was)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_and_restore() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let l = net.add_link(a, b, 1.0);
        let mut m = FaultMask::new(&net);
        assert_eq!(m.failed_node_count(), 0);
        m.fail_node(b);
        assert!(!m.edge_usable(&net, l));
        assert_eq!(m.failed_nodes().collect::<Vec<_>>(), vec![b]);
        m.restore_node(b);
        assert!(m.edge_usable(&net, l));
        m.fail_link(l);
        assert!(!m.edge_usable(&net, l));
        assert!(m.node_alive(a) && m.node_alive(b));
        assert_eq!(m.failed_link_count(), 1);
        assert_eq!(m.failed_links().collect::<Vec<_>>(), vec![l]);
    }

    #[test]
    fn covers_orders_masks_by_failure_sets() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let l = net.add_link(a, b, 1.0);

        let empty = FaultMask::new(&net);
        let mut one = FaultMask::new(&net);
        one.fail_node(a);
        let mut two = one.clone();
        two.fail_link(l);

        assert!(empty.covers(&empty));
        assert!(one.covers(&empty));
        assert!(two.covers(&one));
        assert!(!empty.covers(&one));
        assert!(!one.covers(&two));

        // A repair breaks the ordering in both directions.
        let mut other = FaultMask::new(&net);
        other.fail_node(b);
        assert!(!one.covers(&other));
        assert!(!other.covers(&one));

        // Different network ⇒ never ordered.
        let bigger = {
            let mut n2 = Network::new();
            n2.add_server();
            n2.add_server();
            n2.add_server();
            FaultMask::new(&n2)
        };
        assert!(!bigger.covers(&empty));
    }
}
