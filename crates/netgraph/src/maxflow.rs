//! Exact minimum cuts via Dinic's max-flow algorithm.
//!
//! Used for: bisection width of a server bipartition (the paper's "bisection
//! bandwidth" in links), pairwise edge connectivity, and pairwise vertex
//! connectivity / vertex-disjoint path extraction (the "multiple parallel
//! paths" property of ABCCC).

use crate::{FaultMask, Network, NodeId};

/// Effectively-infinite capacity for auxiliary arcs.
const INF: u64 = u64::MAX / 4;

/// A directed flow network for Dinic's algorithm.
///
/// Build one with [`FlowGraph::new`], add arcs, then call
/// [`FlowGraph::max_flow`]. The structure can be reused only for a single
/// max-flow computation (capacities are consumed).
#[derive(Debug, Clone)]
pub struct FlowGraph {
    // Arc i and i^1 are a forward/backward residual pair.
    to: Vec<u32>,
    cap: Vec<u64>,
    head: Vec<Vec<u32>>,
}

impl FlowGraph {
    /// Creates a flow graph with `nodes` nodes and no arcs.
    pub fn new(nodes: usize) -> Self {
        FlowGraph {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `u → v` with capacity `cap` and returns its arc
    /// index (the reverse residual arc is `index ^ 1`).
    pub fn add_arc(&mut self, u: usize, v: usize, cap: u64) -> usize {
        let idx = self.to.len();
        self.to.push(v as u32);
        self.cap.push(cap);
        self.head[u].push(idx as u32);
        self.to.push(u as u32);
        self.cap.push(0);
        self.head[v].push(idx as u32 + 1);
        idx
    }

    /// Flow currently pushed along arc `idx` (readable after `max_flow`).
    pub fn flow_on(&self, idx: usize) -> u64 {
        self.cap[idx ^ 1]
    }

    /// Total number of arcs (forward and residual).
    pub fn arc_count(&self) -> usize {
        self.to.len()
    }

    /// The head (target node) of arc `idx`.
    pub fn arc_head(&self, idx: usize) -> usize {
        self.to[idx] as usize
    }

    /// Indices of the arcs leaving node `u` (forward and residual).
    pub fn out_arcs(&self, u: usize) -> &[u32] {
        &self.head[u]
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.head.len()];
        level[s] = 0;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u] {
                let ai = ai as usize;
                let v = self.to[ai] as usize;
                if self.cap[ai] > 0 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[t] < 0 {
            None
        } else {
            Some(level)
        }
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: u64,
        level: &[i32],
        it: &mut [usize],
    ) -> u64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.head[u].len() {
            let ai = self.head[u][it[u]] as usize;
            let v = self.to[ai] as usize;
            if self.cap[ai] > 0 && level[v] == level[u] + 1 {
                let d = self.dfs_push(v, t, pushed.min(self.cap[ai]), level, it);
                if d > 0 {
                    self.cap[ai] -= d;
                    self.cap[ai ^ 1] += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Computes the maximum flow from `s` to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0u64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.head.len()];
            loop {
                let pushed = self.dfs_push(s, t, INF, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After `max_flow`, returns for each node whether it is on the source
    /// side of the minimum cut.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.head.len()];
        side[s] = true;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u] {
                let ai = ai as usize;
                let v = self.to[ai] as usize;
                if self.cap[ai] > 0 && !side[v] {
                    side[v] = true;
                    q.push_back(v);
                }
            }
        }
        side
    }
}

/// Builds a unit-capacity (per physical link) flow graph over the alive part
/// of `net`, with two extra nodes: a super-source (`node_count`) and a
/// super-sink (`node_count + 1`).
fn link_flow_graph(net: &Network, mask: Option<&FaultMask>) -> FlowGraph {
    let mut fg = FlowGraph::new(net.node_count() + 2);
    for (i, link) in net.links().iter().enumerate() {
        let alive = match mask {
            None => true,
            Some(m) => m.edge_usable(net, crate::LinkId(i as u32)),
        };
        if alive {
            // Undirected edge of capacity 1: a pair of opposite unit arcs.
            fg.add_arc(link.a.index(), link.b.index(), 1);
            fg.add_arc(link.b.index(), link.a.index(), 1);
        }
    }
    fg
}

/// The minimum number of links whose removal disconnects server set `a`
/// from server set `b` (equivalently, the max number of link-disjoint paths
/// between the sets). Switches may fall on either side of the cut.
///
/// This is the exact "bisection width" when `a`/`b` is a balanced server
/// bipartition.
///
/// # Panics
///
/// Panics if `a` or `b` is empty or if they intersect.
pub fn min_link_cut(net: &Network, a: &[NodeId], b: &[NodeId]) -> u64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "both sides must be non-empty"
    );
    let bset: std::collections::HashSet<_> = b.iter().collect();
    assert!(
        a.iter().all(|x| !bset.contains(x)),
        "sides must be disjoint"
    );
    let mut fg = link_flow_graph(net, None);
    let s = net.node_count();
    let t = net.node_count() + 1;
    for &x in a {
        fg.add_arc(s, x.index(), INF);
    }
    for &y in b {
        fg.add_arc(y.index(), t, INF);
    }
    fg.max_flow(s, t)
}

/// Exact bisection width for the bipartition given by `side`
/// (`side[server.index()] == true` ⇒ server is in part A). Only server
/// indices are read; switches are free.
pub fn bisection_width(net: &Network, side: &[bool]) -> u64 {
    let a: Vec<NodeId> = net.server_ids().filter(|n| side[n.index()]).collect();
    let b: Vec<NodeId> = net.server_ids().filter(|n| !side[n.index()]).collect();
    min_link_cut(net, &a, &b)
}

/// Maximum number of link-disjoint paths between two servers.
pub fn edge_connectivity_pair(net: &Network, s: NodeId, t: NodeId) -> u64 {
    min_link_cut(net, &[s], &[t])
}

/// Maximum number of internally vertex-disjoint paths between servers `s`
/// and `t` (node-splitting transform; every non-terminal node, including
/// switches, has unit vertex capacity). Under `mask`, failed elements are
/// excluded.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn vertex_connectivity_pair(
    net: &Network,
    s: NodeId,
    t: NodeId,
    mask: Option<&FaultMask>,
) -> u64 {
    let (mut fg, s_out, t_in) = vertex_split_graph(net, s, t, mask, INF);
    fg.max_flow(s_out, t_in)
}

/// Builds the node-split graph: node v → (v_in = 2v, v_out = 2v+1) with a
/// unit internal arc (terminals and arcs get `term_cap`/INF as appropriate).
/// Returns `(graph, s_out, t_in)`.
pub(crate) fn vertex_split_graph(
    net: &Network,
    s: NodeId,
    t: NodeId,
    mask: Option<&FaultMask>,
    term_cap: u64,
) -> (FlowGraph, usize, usize) {
    assert_ne!(s, t, "endpoints must differ");
    let n = net.node_count();
    let mut fg = FlowGraph::new(2 * n);
    for v in 0..n {
        let id = NodeId(v as u32);
        let alive = mask.is_none_or(|m| m.node_alive(id));
        if !alive {
            continue;
        }
        let cap = if id == s || id == t { term_cap } else { 1 };
        fg.add_arc(2 * v, 2 * v + 1, cap);
    }
    for (i, link) in net.links().iter().enumerate() {
        let usable = mask.is_none_or(|m| m.edge_usable(net, crate::LinkId(i as u32)));
        if usable {
            fg.add_arc(2 * link.a.index() + 1, 2 * link.b.index(), 1);
            fg.add_arc(2 * link.b.index() + 1, 2 * link.a.index(), 1);
        }
    }
    (fg, 2 * s.index() + 1, 2 * t.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    #[test]
    fn unit_square_flow() {
        // s0 - s1
        //  |    |
        // s2 - s3   : two link-disjoint paths s0→s3
        let mut net = Network::new();
        let n: Vec<_> = (0..4).map(|_| net.add_server()).collect();
        net.add_link(n[0], n[1], 1.0);
        net.add_link(n[0], n[2], 1.0);
        net.add_link(n[1], n[3], 1.0);
        net.add_link(n[2], n[3], 1.0);
        assert_eq!(edge_connectivity_pair(&net, n[0], n[3]), 2);
        assert_eq!(vertex_connectivity_pair(&net, n[0], n[3], None), 2);
    }

    #[test]
    fn vertex_cut_tighter_than_edge_cut() {
        // Two triangles sharing a cut vertex m: edge connectivity 2, vertex 1.
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let m = net.add_server();
        let c = net.add_server();
        let d = net.add_server();
        net.add_link(a, b, 1.0);
        net.add_link(a, m, 1.0);
        net.add_link(b, m, 1.0);
        net.add_link(m, c, 1.0);
        net.add_link(m, d, 1.0);
        net.add_link(c, d, 1.0);
        assert_eq!(edge_connectivity_pair(&net, a, c), 2);
        assert_eq!(vertex_connectivity_pair(&net, a, c, None), 1);
    }

    #[test]
    fn bisection_of_a_star_is_half() {
        let mut net = Network::new();
        let servers: Vec<_> = (0..6).map(|_| net.add_server()).collect();
        let sw = net.add_switch();
        for &s in &servers {
            net.add_link(s, sw, 1.0);
        }
        let mut side = vec![false; net.node_count()];
        for s in &servers[..3] {
            side[s.index()] = true;
        }
        // Cheapest cut: sever the 3 links of one half.
        assert_eq!(bisection_width(&net, &side), 3);
    }

    #[test]
    fn mask_reduces_connectivity() {
        let mut net = Network::new();
        let n: Vec<_> = (0..4).map(|_| net.add_server()).collect();
        net.add_link(n[0], n[1], 1.0);
        net.add_link(n[0], n[2], 1.0);
        net.add_link(n[1], n[3], 1.0);
        net.add_link(n[2], n[3], 1.0);
        let mut mask = crate::FaultMask::new(&net);
        mask.fail_node(n[1]);
        assert_eq!(vertex_connectivity_pair(&net, n[0], n[3], Some(&mask)), 1);
    }

    #[test]
    fn min_cut_side_separates() {
        let mut fg = FlowGraph::new(4);
        fg.add_arc(0, 1, 3);
        fg.add_arc(1, 2, 1); // bottleneck
        fg.add_arc(2, 3, 3);
        assert_eq!(fg.max_flow(0, 3), 1);
        let side = fg.min_cut_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_side_panics() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        net.add_link(a, b, 1.0);
        min_link_cut(&net, &[], &[b]);
    }
}
