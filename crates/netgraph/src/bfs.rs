//! Breadth-first metrics: distances, shortest paths, diameter, average path
//! length — all in the **server-hop** metric of the server-centric DCN
//! literature (a `server → switch → server` traversal counts as one hop,
//! and so does a direct `server → server` cable).
//!
//! Server-hop distances are computed with 0–1 BFS on the physical node
//! graph: stepping *into* a server costs 1, stepping into a switch costs 0.

use crate::{FaultMask, Network, NodeId};
use std::collections::VecDeque;

/// Unreachable marker in distance vectors.
pub const UNREACHABLE: u32 = u32::MAX;

/// `true` if the BFS may step `from → to` over link `l` under `mask`.
///
/// Checks the link and *both* endpoints, making the predicate correct in
/// isolation (an earlier version ignored `from`, silently relying on the
/// caller never expanding a failed node). Distances are unchanged: BFS only
/// expands nodes it reached, and it can only reach alive nodes.
fn usable(mask: Option<&FaultMask>, from: NodeId, to: NodeId, l: crate::LinkId) -> bool {
    match mask {
        None => true,
        Some(m) => m.link_alive(l) && m.node_alive(from) && m.node_alive(to),
    }
}

/// Plain BFS link-hop distances from `src` to every node.
///
/// Index the result by [`NodeId::index`]; unreachable nodes hold
/// [`UNREACHABLE`]. If `src` itself is failed under `mask`, everything
/// (except `src`, at distance 0) is unreachable.
pub fn link_distances(net: &Network, src: NodeId, mask: Option<&FaultMask>) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; net.node_count()];
    if let Some(m) = mask {
        if !m.node_alive(src) {
            dist[src.index()] = 0;
            return dist;
        }
    }
    dist[src.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for &(v, l) in net.neighbors(u) {
            if dist[v.index()] == UNREACHABLE && usable(mask, u, v, l) {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Server-hop distances from server `src` to every node (0–1 BFS).
///
/// For a server `v`, `result[v.index()]` is the minimum number of server
/// hops from `src` to `v`. Values at switch indices are the cost of
/// reaching that switch and are mainly useful internally.
pub fn server_hop_distances(net: &Network, src: NodeId, mask: Option<&FaultMask>) -> Vec<u32> {
    let (dist, _) = server_hop_search(net, src, mask, false);
    dist
}

fn server_hop_search(
    net: &Network,
    src: NodeId,
    mask: Option<&FaultMask>,
    track_parents: bool,
) -> (Vec<u32>, Vec<NodeId>) {
    let mut dist = vec![UNREACHABLE; net.node_count()];
    let mut parent = if track_parents {
        vec![NodeId(u32::MAX); net.node_count()]
    } else {
        Vec::new()
    };
    if let Some(m) = mask {
        if !m.node_alive(src) {
            dist[src.index()] = 0;
            return (dist, parent);
        }
    }
    dist[src.index()] = 0;
    let mut dq = VecDeque::new();
    dq.push_back(src);
    while let Some(u) = dq.pop_front() {
        let du = dist[u.index()];
        for &(v, l) in net.neighbors(u) {
            if !usable(mask, u, v, l) {
                continue;
            }
            let w = if net.is_server(v) { 1 } else { 0 };
            let nd = du + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                if track_parents {
                    parent[v.index()] = u;
                }
                if w == 0 {
                    dq.push_front(v);
                } else {
                    dq.push_back(v);
                }
            }
        }
    }
    (dist, parent)
}

/// Shortest path (minimum server hops) from server `src` to server `dst` as
/// the full node sequence including switches, or `None` if unreachable.
pub fn shortest_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    mask: Option<&FaultMask>,
) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let (dist, parent) = server_hop_search(net, src, mask, true);
    if dist[dst.index()] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur.index()];
        debug_assert_ne!(cur.0, u32::MAX, "broken parent chain");
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Shortest path in **link hops** (plain BFS) from `src` to `dst` as the
/// full node sequence, or `None` if unreachable.
///
/// Unlike [`shortest_path`], which minimizes server hops and is therefore
/// free to meander through switches, this minimizes the number of physical
/// cables traversed — the metric of switch-centric and random-graph
/// topologies (fat-tree, Jellyfish, Space Shuffle) where every inter-server
/// path costs the same single server hop.
pub fn link_shortest_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    mask: Option<&FaultMask>,
) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    if let Some(m) = mask {
        if !m.node_alive(src) {
            return None;
        }
    }
    let mut dist = vec![UNREACHABLE; net.node_count()];
    let mut parent = vec![NodeId(u32::MAX); net.node_count()];
    dist[src.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    'outer: while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for &(v, l) in net.neighbors(u) {
            if dist[v.index()] == UNREACHABLE && usable(mask, u, v, l) {
                dist[v.index()] = du + 1;
                parent[v.index()] = u;
                if v == dst {
                    break 'outer;
                }
                q.push_back(v);
            }
        }
    }
    if dist[dst.index()] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur.index()];
        debug_assert_ne!(cur.0, u32::MAX, "broken parent chain");
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// The eccentricity (max server-hop distance to any *reachable* server) of
/// server `src`. Returns `None` if some server is unreachable.
pub fn server_eccentricity(net: &Network, src: NodeId) -> Option<u32> {
    let mut scratch = crate::BfsScratch::new();
    crate::DistanceEngine::new(net).distances_into(src, &mut scratch);
    let mut ecc = 0;
    for v in net.server_ids() {
        let d = scratch.dist[v.index()];
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Exact diameter in server hops, via the fused all-pairs sweep of
/// [`crate::DistanceEngine`]. Call the engine directly when you also need
/// the average path length — one sweep yields both.
///
/// Returns `None` if the server set is not mutually reachable (or empty).
pub fn server_diameter(net: &Network) -> Option<u32> {
    match net.server_count() {
        0 => None,
        1 => Some(0),
        _ => crate::DistanceEngine::new(net)
            .all_pairs()
            .map(|s| s.diameter),
    }
}

/// Exact average server-hop path length over all ordered server pairs, via
/// the fused all-pairs sweep of [`crate::DistanceEngine`].
///
/// Returns `None` if servers are not mutually reachable or there are fewer
/// than two servers.
pub fn average_server_path_length(net: &Network) -> Option<f64> {
    crate::DistanceEngine::new(net)
        .all_pairs()
        .map(|s| s.avg_path_length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    /// Two switch stars bridged by a server:  (s0,s1)-swA-(b)-swB-(s2,s3)
    fn dumbbell() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let s0 = net.add_server();
        let s1 = net.add_server();
        let b = net.add_server();
        let s2 = net.add_server();
        let s3 = net.add_server();
        let swa = net.add_switch();
        let swb = net.add_switch();
        for &s in &[s0, s1, b] {
            net.add_link(s, swa, 1.0);
        }
        for &s in &[b, s2, s3] {
            net.add_link(s, swb, 1.0);
        }
        (net, vec![s0, s1, b, s2, s3, swa, swb])
    }

    #[test]
    fn server_hops_count_switch_transits_once() {
        let (net, n) = dumbbell();
        let d = server_hop_distances(&net, n[0], None);
        assert_eq!(d[n[1].index()], 1); // s0 -swA- s1
        assert_eq!(d[n[2].index()], 1); // s0 -swA- b
        assert_eq!(d[n[3].index()], 2); // s0 -swA- b -swB- s2
    }

    #[test]
    fn link_distances_differ_from_server_hops() {
        let (net, n) = dumbbell();
        let d = link_distances(&net, n[0], None);
        assert_eq!(d[n[3].index()], 4);
    }

    #[test]
    fn shortest_path_includes_switches() {
        let (net, n) = dumbbell();
        let p = shortest_path(&net, n[0], n[3], None).unwrap();
        assert_eq!(p, vec![n[0], n[5], n[2], n[6], n[3]]);
        let r = crate::Route::new(p);
        assert_eq!(r.server_hops(&net), 2);
        r.validate(&net, None).unwrap();
    }

    #[test]
    fn link_shortest_path_minimizes_cables() {
        let (net, n) = dumbbell();
        let p = link_shortest_path(&net, n[0], n[3], None).unwrap();
        assert_eq!(p, vec![n[0], n[5], n[2], n[6], n[3]]);
        assert_eq!(
            p.len() - 1,
            link_distances(&net, n[0], None)[n[3].index()] as usize
        );
        assert_eq!(link_shortest_path(&net, n[0], n[0], None), Some(vec![n[0]]));
        let mut mask = crate::FaultMask::new(&net);
        mask.fail_node(n[2]);
        assert_eq!(link_shortest_path(&net, n[0], n[3], Some(&mask)), None);
        mask.fail_node(n[0]);
        assert_eq!(link_shortest_path(&net, n[0], n[1], Some(&mask)), None);
    }

    #[test]
    fn shortest_path_to_self() {
        let (net, n) = dumbbell();
        assert_eq!(shortest_path(&net, n[0], n[0], None), Some(vec![n[0]]));
    }

    #[test]
    fn mask_cuts_the_bridge() {
        let (net, n) = dumbbell();
        let mut mask = crate::FaultMask::new(&net);
        mask.fail_node(n[2]); // the bridge server
        assert_eq!(shortest_path(&net, n[0], n[3], Some(&mask)), None);
        let d = server_hop_distances(&net, n[0], Some(&mask));
        assert_eq!(d[n[1].index()], 1);
        assert_eq!(d[n[3].index()], UNREACHABLE);
    }

    #[test]
    fn failed_source_reaches_nothing() {
        let (net, n) = dumbbell();
        let mut mask = crate::FaultMask::new(&net);
        mask.fail_node(n[0]);
        let d = server_hop_distances(&net, n[0], Some(&mask));
        assert_eq!(d[n[0].index()], 0);
        assert_eq!(d[n[1].index()], UNREACHABLE);
    }

    #[test]
    fn diameter_and_apl() {
        let (net, _) = dumbbell();
        assert_eq!(server_diameter(&net), Some(2));
        // pairs at distance 1: (s0,s1),(s0,b),(s1,b),(s2,s3),(s2,b),(s3,b) ×2 dirs = 12
        // pairs at distance 2: (s0,s2),(s0,s3),(s1,s2),(s1,s3) ×2 = 8
        // APL = (12*1 + 8*2) / 20 = 1.4
        let apl = average_server_path_length(&net).unwrap();
        assert!((apl - 1.4).abs() < 1e-12, "apl = {apl}");
    }

    #[test]
    fn disconnected_network_has_no_diameter() {
        let mut net = Network::new();
        net.add_server();
        net.add_server();
        assert_eq!(server_diameter(&net), None);
        assert_eq!(average_server_path_length(&net), None);
    }

    #[test]
    fn eccentricity() {
        let (net, n) = dumbbell();
        assert_eq!(server_eccentricity(&net, n[2]), Some(1));
        assert_eq!(server_eccentricity(&net, n[0]), Some(2));
    }

    #[test]
    fn direct_server_links_cost_one_hop() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        let c = net.add_server();
        net.add_link(a, b, 1.0);
        net.add_link(b, c, 1.0);
        let d = server_hop_distances(&net, a, None);
        assert_eq!(d[c.index()], 2);
        assert_eq!(server_diameter(&net), Some(2));
    }
}
