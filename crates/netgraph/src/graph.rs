//! The core [`Network`] multigraph type and its identifiers.
//!
//! Adjacency is stored in **compressed sparse row** (CSR) form: one flat
//! `offsets` array and one packed `(NodeId, LinkId)` neighbor array, plus a
//! per-node neighbor-sorted mirror for O(log degree) link lookup. The CSR
//! is (re)built lazily from the link list on first adjacency query after a
//! mutation, so builders pay for construction exactly once.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Index of a node (server or switch) inside a [`Network`].
///
/// `NodeId`s are dense: they run from `0` to `network.node_count() - 1`.
/// By crate-wide convention every topology builder adds **all servers
/// first**, so server ids occupy `0..server_count` (see
/// [`Network::is_servers_first`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    ///
    /// ```
    /// # use netgraph::NodeId;
    /// assert_eq!(NodeId(7).index(), 7);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Index of an undirected physical link (cable) inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Whether a node is a server (traffic endpoint, may forward) or a switch
/// (pure crossbar, never a traffic endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A commodity server with a small number of NIC ports.
    Server,
    /// A commodity off-the-shelf (COTS) switch.
    Switch,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Server => f.write_str("server"),
            NodeKind::Switch => f.write_str("switch"),
        }
    }
}

/// An undirected physical cable between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity in abstract bandwidth units (the simulators treat this as
    /// Gbit/s). Must be finite and positive.
    pub capacity: f64,
}

impl Link {
    /// Given one endpoint of the link, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    #[inline]
    pub fn other_end(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of link {self:?}");
        }
    }
}

/// Compressed-sparse-row adjacency, derived from a [`Network`]'s link list.
///
/// `neighbors[offsets[n]..offsets[n + 1]]` are node `n`'s
/// `(neighbor, link)` pairs in link-insertion order (matching the
/// port-stability guarantee of [`Network::neighbors`]); `sorted` holds the
/// same pairs per node but ordered by `(neighbor, link)`, which makes
/// neighbor→link lookup a binary search.
#[derive(Debug, Clone)]
pub(crate) struct Csr {
    pub(crate) offsets: Vec<u32>,
    pub(crate) neighbors: Vec<(NodeId, LinkId)>,
    /// Neighbor-sorted mirror for `find_link`, built lazily: large-scale
    /// traversal (BFS, FIB compilation) never touches it, so million-server
    /// instances skip its 8 bytes per directed edge entirely.
    sorted: OnceLock<Vec<(NodeId, LinkId)>>,
}

impl Csr {
    /// Builds the CSR by counting sort over the link store: O(V + E), two
    /// streamed passes over the endpoints, no per-node allocation and no
    /// intermediate `Vec<Link>`.
    fn build(node_count: usize, store: &LinkStore) -> Csr {
        let mut offsets = vec![0u32; node_count + 1];
        store.for_each_end(&mut |a, b| {
            offsets[a.index() + 1] += 1;
            offsets[b.index() + 1] += 1;
        });
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut neighbors = vec![(NodeId(0), LinkId(0)); store.len() * 2];
        let mut next = 0u32;
        store.for_each_end(&mut |a, b| {
            let id = LinkId(next);
            next += 1;
            neighbors[cursor[a.index()] as usize] = (b, id);
            cursor[a.index()] += 1;
            neighbors[cursor[b.index()] as usize] = (a, id);
            cursor[b.index()] += 1;
        });
        Csr {
            offsets,
            neighbors,
            sorted: OnceLock::new(),
        }
    }

    /// Node `n`'s `(neighbor, link)` pairs in link-insertion order.
    #[inline]
    pub(crate) fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.neighbors[self.offsets[n.index()] as usize..self.offsets[n.index() + 1] as usize]
    }

    /// The per-node neighbor-sorted mirror, built on first lookup.
    fn sorted(&self) -> &[(NodeId, LinkId)] {
        self.sorted.get_or_init(|| {
            let mut sorted = self.neighbors.clone();
            for n in 0..self.offsets.len() - 1 {
                sorted[self.offsets[n] as usize..self.offsets[n + 1] as usize]
                    .sort_unstable_by_key(|&(nb, l)| (nb.0, l.0));
            }
            sorted
        })
    }

    /// Binary search for the lowest-id link connecting `a` to `b`.
    ///
    /// Per-node insertion order has ascending link ids, so the lowest id is
    /// exactly the first match a linear scan of [`Csr::neighbors`] would
    /// find — parallel links resolve identically either way.
    fn find_link(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let s =
            &self.sorted()[self.offsets[a.index()] as usize..self.offsets[a.index() + 1] as usize];
        let i = s.partition_point(|&(nb, _)| nb.0 < b.0);
        match s.get(i) {
            Some(&(nb, l)) if nb == b => Some(l),
            _ => None,
        }
    }
}

/// Physical storage behind a [`Network`]'s link list.
///
/// Builder-style code appends [`Link`]s one at a time (`Explicit`); the
/// streaming constructor [`Network::from_uniform_stream`] instead keeps only
/// the packed endpoint pairs plus one shared capacity (`Uniform`) — half the
/// bytes per cable, and the only representation the million-server `scale`
/// tier ever materializes.
#[derive(Debug, Clone)]
enum LinkStore {
    /// One heterogeneous `Link` per cable, append-friendly.
    Explicit(Vec<Link>),
    /// Packed `(a, b)` endpoint pairs, all cables sharing `capacity`.
    Uniform {
        ends: Vec<(NodeId, NodeId)>,
        capacity: f64,
    },
}

impl Default for LinkStore {
    fn default() -> Self {
        LinkStore::Explicit(Vec::new())
    }
}

impl LinkStore {
    #[inline]
    fn len(&self) -> usize {
        match self {
            LinkStore::Explicit(v) => v.len(),
            LinkStore::Uniform { ends, .. } => ends.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Link {
        match self {
            LinkStore::Explicit(v) => v[i],
            LinkStore::Uniform { ends, capacity } => {
                let (a, b) = ends[i];
                Link {
                    a,
                    b,
                    capacity: *capacity,
                }
            }
        }
    }

    /// Streams every `(a, b)` endpoint pair in link-id order.
    fn for_each_end(&self, f: &mut dyn FnMut(NodeId, NodeId)) {
        match self {
            LinkStore::Explicit(v) => {
                for l in v {
                    f(l.a, l.b);
                }
            }
            LinkStore::Uniform { ends, .. } => {
                for &(a, b) in ends {
                    f(a, b);
                }
            }
        }
    }
}

/// A typed multigraph of servers, switches and cables.
///
/// The structure is append-only: nodes and links can be added but never
/// removed (failures are modelled with [`crate::FaultMask`] overlays, which
/// is both cheaper and closer to how the ABCCC paper treats faults — the
/// physical topology stays, elements merely stop forwarding).
///
/// The link list is the source of truth; adjacency lives in a lazily built
/// [`Csr`] that mutations invalidate. Traversal code therefore sees one
/// flat cache-friendly array instead of per-node heap vectors.
#[derive(Debug, Clone, Default)]
pub struct Network {
    kinds: Vec<NodeKind>,
    server_count: usize,
    store: LinkStore,
    csr: OnceLock<Csr>,
    /// Lazily materialized `Vec<Link>` view of a `Uniform` store, so the
    /// `links()` slice API keeps working for legacy callers without the
    /// scale path paying for it up front.
    flat_links: OnceLock<Vec<Link>>,
}

impl Serialize for Network {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("kinds".to_string(), self.kinds.to_value()),
            ("server_count".to_string(), self.server_count.to_value()),
            ("links".to_string(), self.links().to_vec().to_value()),
        ])
    }
}

impl Deserialize for Network {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = match v {
            serde::Value::Map(m) => m,
            _ => return Err(serde::Error::expected("Network map")),
        };
        let net = Network {
            kinds: serde::__private::field(m, "kinds")?,
            server_count: serde::__private::field(m, "server_count")?,
            store: LinkStore::Explicit(serde::__private::field(m, "links")?),
            csr: OnceLock::new(),
            flat_links: OnceLock::new(),
        };
        for l in net.links() {
            if l.a.index() >= net.kinds.len() || l.b.index() >= net.kinds.len() {
                return Err(serde::Error(format!("link endpoint out of range: {l:?}")));
            }
        }
        Ok(net)
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network with capacity hints for `nodes` nodes and
    /// `links` links.
    pub fn with_capacity(nodes: usize, links: usize) -> Self {
        Network {
            kinds: Vec::with_capacity(nodes),
            server_count: 0,
            store: LinkStore::Explicit(Vec::with_capacity(links)),
            csr: OnceLock::new(),
            flat_links: OnceLock::new(),
        }
    }

    /// Builds a network **streamed** from a cable emitter, without ever
    /// holding a `Vec<Link>`: `servers` server nodes (ids `0..servers`),
    /// then `switches` switch nodes, then every `(a, b)` cable the emitter
    /// produces, all sharing one `capacity`.
    ///
    /// The emitter receives a sink closure and calls it once per cable; link
    /// ids follow emission order exactly, so topology generators keep their
    /// port-stability guarantee. Endpoints are stored as packed pairs (8
    /// bytes per cable instead of 24) and the sorted `find_link` mirror is
    /// deferred, which is what lets the `scale` preset materialize
    /// million-server instances.
    ///
    /// `links_hint` pre-sizes the endpoint array (exact counts come free
    /// from closed forms like `AbcccParams::wire_count`; an inexact hint is
    /// only a speed matter).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite, or if the
    /// emitter produces a self-loop or an out-of-range endpoint, or if more
    /// than `u32::MAX` links or nodes are requested.
    pub fn from_uniform_stream<F>(
        servers: usize,
        switches: usize,
        links_hint: usize,
        capacity: f64,
        mut emit: F,
    ) -> Network
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite, got {capacity}"
        );
        let node_count = servers + switches;
        u32::try_from(node_count).expect("more than u32::MAX nodes");
        let mut kinds = Vec::with_capacity(node_count);
        kinds.resize(servers, NodeKind::Server);
        kinds.resize(node_count, NodeKind::Switch);
        let mut ends: Vec<(NodeId, NodeId)> = Vec::with_capacity(links_hint);
        emit(&mut |a, b| {
            assert!(a.index() < node_count, "node {a} out of range");
            assert!(b.index() < node_count, "node {b} out of range");
            assert_ne!(a, b, "self-loop link at {a}");
            ends.push((a, b));
        });
        u32::try_from(ends.len()).expect("more than u32::MAX links");
        Network {
            kinds,
            server_count: servers,
            store: LinkStore::Uniform { ends, capacity },
            csr: OnceLock::new(),
            flat_links: OnceLock::new(),
        }
    }

    /// The CSR adjacency, building it if a mutation invalidated it.
    #[inline]
    pub(crate) fn csr(&self) -> &Csr {
        self.csr
            .get_or_init(|| Csr::build(self.kinds.len(), &self.store))
    }

    /// Adds a server node and returns its id.
    pub fn add_server(&mut self) -> NodeId {
        self.server_count += 1;
        self.add_node(NodeKind::Server)
    }

    /// Adds a switch node and returns its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(NodeKind::Switch)
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.kinds.len()).expect("more than u32::MAX nodes"));
        self.kinds.push(kind);
        self.csr.take();
        id
    }

    /// Adds an undirected link between `a` and `b` with the given capacity
    /// and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range, if `a == b` (self-loop
    /// cables do not exist in a data center), or if `capacity` is not
    /// strictly positive and finite.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: f64) -> LinkId {
        assert!(a.index() < self.kinds.len(), "node {a} out of range");
        assert!(b.index() < self.kinds.len(), "node {b} out of range");
        assert_ne!(a, b, "self-loop link at {a}");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite, got {capacity}"
        );
        let links = self.links_mut();
        let id = LinkId(u32::try_from(links.len()).expect("more than u32::MAX links"));
        links.push(Link { a, b, capacity });
        self.csr.take();
        id
    }

    /// The explicit link list for mutation, converting a compact uniform
    /// store back to the append-friendly representation first.
    fn links_mut(&mut self) -> &mut Vec<Link> {
        if matches!(self.store, LinkStore::Uniform { .. }) {
            let flat = self.links().to_vec();
            self.store = LinkStore::Explicit(flat);
            self.flat_links.take();
        }
        match &mut self.store {
            LinkStore::Explicit(v) => v,
            LinkStore::Uniform { .. } => unreachable!("converted above"),
        }
    }

    /// Number of nodes (servers + switches).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of server nodes.
    #[inline]
    pub fn server_count(&self) -> usize {
        self.server_count
    }

    /// Number of switch nodes.
    #[inline]
    pub fn switch_count(&self) -> usize {
        self.kinds.len() - self.server_count
    }

    /// Number of links (cables).
    #[inline]
    pub fn link_count(&self) -> usize {
        self.store.len()
    }

    /// The kind of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// `true` if `n` is a server.
    #[inline]
    pub fn is_server(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::Server
    }

    /// The neighbors of `n` as `(neighbor, connecting link)` pairs, in
    /// insertion order (ports are therefore stable across runs).
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        self.csr().neighbors(n)
    }

    /// The degree (number of attached cables) of node `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        let csr = self.csr();
        (csr.offsets[n.index() + 1] - csr.offsets[n.index()]) as usize
    }

    /// The link with id `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn link(&self, l: LinkId) -> Link {
        self.store.get(l.index())
    }

    /// All links.
    ///
    /// For networks built by [`Network::from_uniform_stream`] this
    /// materializes (and caches) a `Vec<Link>` view on first call; code on
    /// the scale path should prefer [`Network::link`] / the adjacency API.
    #[inline]
    pub fn links(&self) -> &[Link] {
        match &self.store {
            LinkStore::Explicit(v) => v,
            LinkStore::Uniform { ends, capacity } => self.flat_links.get_or_init(|| {
                ends.iter()
                    .map(|&(a, b)| Link {
                        a,
                        b,
                        capacity: *capacity,
                    })
                    .collect()
            }),
        }
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Iterator over all server node ids.
    pub fn server_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&n| self.is_server(n))
    }

    /// Iterator over all switch node ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&n| !self.is_server(n))
    }

    /// The port (index into [`Network::neighbors`]) through which `from`
    /// reaches `to`, if they are adjacent. Ports are stable across runs
    /// because adjacency is kept in link-insertion order — this is what a
    /// compiled forwarding table stores instead of full node ids.
    #[inline]
    pub fn port_of(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.neighbors(from).iter().position(|&(n, _)| n == to)
    }

    /// Returns the link connecting `a` and `b`, if any (first match in `a`'s
    /// adjacency if parallel links exist).
    ///
    /// O(log degree) via the CSR's neighbor-sorted mirror; because per-node
    /// adjacency is appended in link-id order, the lowest-id parallel link
    /// this returns is the same one a first-match linear scan would pick.
    #[inline]
    pub fn find_link(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.csr().find_link(a, b)
    }

    /// `true` if every server id precedes every switch id — the crate-wide
    /// builder convention that lets simulators index per-server state by
    /// `NodeId` directly.
    pub fn is_servers_first(&self) -> bool {
        let first_switch = self
            .kinds
            .iter()
            .position(|&k| k == NodeKind::Switch)
            .unwrap_or(self.kinds.len());
        self.kinds[first_switch..]
            .iter()
            .all(|&k| k == NodeKind::Switch)
    }

    /// A histogram of switch radixes (degree → number of switches with that
    /// degree), used by the CAPEX cost model.
    pub fn switch_radix_histogram(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut h = std::collections::BTreeMap::new();
        for sw in self.switch_ids() {
            *h.entry(self.degree(sw)).or_insert(0) += 1;
        }
        h
    }

    /// Maximum number of NIC ports used by any server.
    pub fn max_server_degree(&self) -> usize {
        self.server_ids().map(|s| self.degree(s)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> (Network, Vec<NodeId>, NodeId) {
        let mut net = Network::new();
        let servers: Vec<_> = (0..4).map(|_| net.add_server()).collect();
        let sw = net.add_switch();
        for &s in &servers {
            net.add_link(s, sw, 1.0);
        }
        (net, servers, sw)
    }

    #[test]
    fn counts_and_kinds() {
        let (net, servers, sw) = star();
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.server_count(), 4);
        assert_eq!(net.switch_count(), 1);
        assert_eq!(net.link_count(), 4);
        assert!(net.is_server(servers[0]));
        assert!(!net.is_server(sw));
        assert!(net.is_servers_first());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (net, servers, sw) = star();
        for &s in &servers {
            assert_eq!(net.neighbors(s), &[(sw, net.find_link(s, sw).unwrap())]);
        }
        assert_eq!(net.degree(sw), 4);
        for &(nb, l) in net.neighbors(sw) {
            assert!(servers.contains(&nb));
            assert_eq!(net.link(l).other_end(sw), nb);
        }
    }

    #[test]
    fn port_of_matches_neighbor_order() {
        let (net, servers, sw) = star();
        // Switch ports follow link-insertion order: server i sits on port i.
        for (i, &s) in servers.iter().enumerate() {
            assert_eq!(net.port_of(sw, s), Some(i));
            assert_eq!(net.port_of(s, sw), Some(0));
            assert_eq!(net.neighbors(sw)[i].0, s);
        }
        assert_eq!(net.port_of(servers[0], servers[1]), None);
    }

    #[test]
    fn radix_histogram() {
        let (net, _, _) = star();
        let h = net.switch_radix_histogram();
        assert_eq!(h.get(&4), Some(&1));
        assert_eq!(h.len(), 1);
        assert_eq!(net.max_server_degree(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut net = Network::new();
        let s = net.add_server();
        net.add_link(s, s, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn bad_capacity_rejected() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        net.add_link(a, b, 0.0);
    }

    #[test]
    fn parallel_links_allowed() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_switch();
        let l1 = net.add_link(a, b, 1.0);
        let l2 = net.add_link(a, b, 1.0);
        assert_ne!(l1, l2);
        assert_eq!(net.degree(a), 2);
        // Lookup resolves parallel links to the lowest id, from both ends.
        assert_eq!(net.find_link(a, b), Some(l1));
        assert_eq!(net.find_link(b, a), Some(l1));
    }

    #[test]
    fn csr_rebuilds_after_mutation() {
        let mut net = Network::new();
        let a = net.add_server();
        let b = net.add_server();
        net.add_link(a, b, 1.0);
        assert_eq!(net.neighbors(a).len(), 1); // builds the CSR
        let c = net.add_server(); // invalidates it
        let l = net.add_link(a, c, 1.0);
        assert_eq!(net.neighbors(a), &[(b, LinkId(0)), (c, l)]);
        assert_eq!(net.find_link(c, a), Some(l));
        assert_eq!(net.find_link(b, c), None);
        assert_eq!(net.degree(c), 1);
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let (net, _, _) = star();
        let json = serde_json::to_string(&net).unwrap();
        let back: Network = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), net.node_count());
        assert_eq!(back.server_count(), net.server_count());
        assert_eq!(back.link_count(), net.link_count());
        for n in net.node_ids() {
            assert_eq!(back.kind(n), net.kind(n));
            assert_eq!(back.neighbors(n), net.neighbors(n));
        }
    }

    /// The star topology built via the streaming constructor instead of
    /// `add_server`/`add_link` — same ids, same ports, same links.
    fn streamed_star() -> Network {
        Network::from_uniform_stream(4, 1, 4, 1.0, |sink| {
            for s in 0..4u32 {
                sink(NodeId(s), NodeId(4));
            }
        })
    }

    #[test]
    fn streamed_network_matches_builder_network() {
        let (built, servers, sw) = star();
        let streamed = streamed_star();
        assert_eq!(streamed.node_count(), built.node_count());
        assert_eq!(streamed.server_count(), built.server_count());
        assert_eq!(streamed.link_count(), built.link_count());
        assert!(streamed.is_servers_first());
        for n in built.node_ids() {
            assert_eq!(streamed.kind(n), built.kind(n));
            assert_eq!(streamed.neighbors(n), built.neighbors(n));
        }
        for i in 0..built.link_count() {
            assert_eq!(
                streamed.link(LinkId(i as u32)),
                built.link(LinkId(i as u32))
            );
        }
        // Port stability and lookup work identically.
        for (i, &s) in servers.iter().enumerate() {
            assert_eq!(streamed.port_of(sw, s), Some(i));
            assert_eq!(streamed.find_link(s, sw), built.find_link(s, sw));
        }
        // links() materializes a faithful flat view.
        assert_eq!(streamed.links(), built.links());
    }

    #[test]
    fn streamed_network_serde_roundtrip() {
        let streamed = streamed_star();
        let json = serde_json::to_string(&streamed).unwrap();
        let back: Network = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), streamed.node_count());
        assert_eq!(back.link_count(), streamed.link_count());
        for n in streamed.node_ids() {
            assert_eq!(back.neighbors(n), streamed.neighbors(n));
        }
    }

    #[test]
    fn streamed_network_survives_mutation() {
        let mut net = streamed_star();
        assert_eq!(net.neighbors(NodeId(4)).len(), 4); // builds the CSR
        let extra = net.add_server(); // converts store, invalidates CSR
        let l = net.add_link(extra, NodeId(4), 2.0);
        assert_eq!(net.link_count(), 5);
        assert_eq!(net.degree(NodeId(4)), 5);
        assert_eq!(net.find_link(extra, NodeId(4)), Some(l));
        assert_eq!(net.link(l).capacity, 2.0);
        assert_eq!(net.link(LinkId(0)).capacity, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn streamed_self_loop_rejected() {
        Network::from_uniform_stream(2, 0, 1, 1.0, |sink| sink(NodeId(1), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn streamed_out_of_range_rejected() {
        Network::from_uniform_stream(2, 0, 1, 1.0, |sink| sink(NodeId(0), NodeId(9)));
    }

    #[test]
    fn servers_first_detects_interleaving() {
        let mut net = Network::new();
        net.add_server();
        net.add_switch();
        net.add_server();
        assert!(!net.is_servers_first());
    }
}
