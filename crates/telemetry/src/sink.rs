//! Output sinks: human-readable summary and JSON-lines events.

use crate::{MetricsSnapshot, SpanEvent};
use serde::Value;
use std::io::Write;
use std::path::Path;

/// Per-name aggregate of finished spans.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAgg {
    /// Span name.
    pub name: String,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Distinct recording threads.
    pub threads: u32,
}

/// Aggregates raw span events into one row per name, ordered by total
/// time descending (ties by name, so output is deterministic).
pub fn aggregate_phases(spans: &[SpanEvent]) -> Vec<PhaseAgg> {
    let mut by_name: Vec<PhaseAgg> = Vec::new();
    let mut threads_seen: Vec<Vec<u32>> = Vec::new();
    for ev in spans {
        let idx = match by_name.iter().position(|p| p.name == ev.name) {
            Some(i) => i,
            None => {
                by_name.push(PhaseAgg {
                    name: ev.name.to_string(),
                    count: 0,
                    total_ns: 0,
                    max_ns: 0,
                    threads: 0,
                });
                threads_seen.push(Vec::new());
                by_name.len() - 1
            }
        };
        let p = &mut by_name[idx];
        p.count += 1;
        p.total_ns += ev.dur_ns;
        p.max_ns = p.max_ns.max(ev.dur_ns);
        if !threads_seen[idx].contains(&ev.thread) {
            threads_seen[idx].push(ev.thread);
        }
    }
    for (p, t) in by_name.iter_mut().zip(&threads_seen) {
        p.threads = t.len() as u32;
    }
    by_name.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    by_name
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Renders spans + metrics as an aligned human-readable report.
pub fn render_summary(spans: &[SpanEvent], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let phases = aggregate_phases(spans);
    if !phases.is_empty() {
        out.push_str("-- spans ------------------------------------------------------\n");
        for p in &phases {
            out.push_str(&format!(
                "{:<44} ×{:<7} total {:>10}  max {:>10}  ({} thread{})\n",
                p.name,
                p.count,
                fmt_ns(p.total_ns),
                fmt_ns(p.max_ns),
                p.threads,
                if p.threads == 1 { "" } else { "s" },
            ));
        }
    }
    let any_metric = !metrics.is_empty();
    if any_metric {
        out.push_str("-- metrics ----------------------------------------------------\n");
        for (name, v) in &metrics.counters {
            if *v > 0 {
                out.push_str(&format!("{name:<52} {v}\n"));
            }
        }
        for (name, v) in &metrics.gauges {
            if *v != 0 {
                out.push_str(&format!("{name:<52} {v}\n"));
            }
        }
        for (name, v) in &metrics.float_gauges {
            if *v != 0.0 {
                out.push_str(&format!("{name:<52} {v:.6}\n"));
            }
        }
        for h in &metrics.histograms {
            if h.count > 0 {
                out.push_str(&format!(
                    "{:<52} n={} mean={:.1} p50≤{} p90≤{} p99≤{} p999≤{} max={}\n",
                    h.name, h.count, h.mean, h.p50, h.p90, h.p99, h.p999, h.max
                ));
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders spans and metrics as JSON-lines: one `{"type": …}` object per
/// line (`span`, `counter`, `gauge`, `float_gauge`, `histogram`).
pub fn events_to_jsonl(spans: &[SpanEvent], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut push = |v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("render JSON line"));
        out.push('\n');
    };
    for ev in spans {
        push(map(vec![
            ("type", Value::Str("span".into())),
            ("name", Value::Str(ev.name.into())),
            ("thread", Value::U64(u64::from(ev.thread))),
            ("id", Value::U64(ev.id)),
            ("parent", Value::U64(ev.parent)),
            ("start_ns", Value::U64(ev.start_ns)),
            ("dur_ns", Value::U64(ev.dur_ns)),
        ]));
    }
    for (name, v) in &metrics.counters {
        push(map(vec![
            ("type", Value::Str("counter".into())),
            ("name", Value::Str(name.clone())),
            ("value", Value::U64(*v)),
        ]));
    }
    for (name, v) in &metrics.gauges {
        push(map(vec![
            ("type", Value::Str("gauge".into())),
            ("name", Value::Str(name.clone())),
            ("value", Value::I64(*v)),
        ]));
    }
    for (name, v) in &metrics.float_gauges {
        push(map(vec![
            ("type", Value::Str("float_gauge".into())),
            ("name", Value::Str(name.clone())),
            ("value", Value::F64(*v)),
        ]));
    }
    for h in &metrics.histograms {
        push(map(vec![
            ("type", Value::Str("histogram".into())),
            ("name", Value::Str(h.name.clone())),
            ("count", Value::U64(h.count)),
            ("sum", Value::U64(h.sum)),
            ("mean", Value::F64(h.mean)),
            ("p50", Value::U64(h.p50)),
            ("p90", Value::U64(h.p90)),
            ("p99", Value::U64(h.p99)),
            ("p999", Value::U64(h.p999)),
            ("p9999", Value::U64(h.p9999)),
            ("max", Value::U64(h.max)),
            (
                "buckets",
                Value::Seq(
                    h.buckets
                        .iter()
                        .map(|(bucket, n)| {
                            Value::Seq(vec![Value::U64(u64::from(*bucket)), Value::U64(*n)])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    out
}

/// Writes [`events_to_jsonl`] output to `path` (parent directories must
/// exist).
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_jsonl(
    path: impl AsRef<Path>,
    spans: &[SpanEvent],
    metrics: &MetricsSnapshot,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(events_to_jsonl(spans, metrics).as_bytes())
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "a",
                thread: 0,
                id: 1,
                parent: 0,
                start_ns: 0,
                dur_ns: 100,
            },
            SpanEvent {
                name: "a",
                thread: 1,
                id: 2,
                parent: 1,
                start_ns: 50,
                dur_ns: 300,
            },
            SpanEvent {
                name: "b",
                thread: 0,
                id: 3,
                parent: 0,
                start_ns: 10,
                dur_ns: 4_000,
            },
        ]
    }

    #[test]
    fn phases_aggregate_and_sort_by_total() {
        let phases = aggregate_phases(&sample_spans());
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "b"); // 4000 > 400
        assert_eq!(phases[1].count, 2);
        assert_eq!(phases[1].total_ns, 400);
        assert_eq!(phases[1].max_ns, 300);
        assert_eq!(phases[1].threads, 2);
    }

    #[test]
    fn summary_mentions_spans_and_metrics() {
        let reg = crate::Registry::new();
        {
            let _lock = crate::test_guard();
            crate::set_enabled(true);
            reg.counter("sink.events").add(9);
            reg.histogram("sink.depth").record(4);
            crate::set_enabled(false);
        }
        let s = render_summary(&sample_spans(), &reg.snapshot());
        assert!(s.contains("sink.events"));
        assert!(s.contains("sink.depth"));
        assert!(s.contains("×2"));
        let empty = render_summary(&[], &crate::MetricsSnapshot::default());
        assert!(empty.contains("no telemetry"));
    }

    #[test]
    fn jsonl_one_parseable_object_per_line() {
        let reg = crate::Registry::new();
        {
            let _lock = crate::test_guard();
            crate::set_enabled(true);
            reg.counter("sink.c").inc();
            reg.gauge("sink.g").set(-2);
            reg.float_gauge("sink.f").set(0.25);
            reg.histogram("sink.h").record(1000);
            crate::set_enabled(false);
        }
        let text = events_to_jsonl(&sample_spans(), &reg.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3 + 4);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            match v {
                Value::Map(entries) => {
                    assert!(entries.iter().any(|(k, _)| k == "type"));
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
        assert!(text.contains("\"float_gauge\""));
        assert!(text.contains("\"buckets\""));
    }

    #[test]
    fn jsonl_writes_to_disk() {
        let dir = std::env::temp_dir().join("dcn_telemetry_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        write_jsonl(&path, &sample_spans(), &crate::MetricsSnapshot::default()).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
