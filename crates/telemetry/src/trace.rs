//! Trace exporters: Chrome Trace Event JSON and folded flamegraph text.
//!
//! Both exporters consume drained [`SpanEvent`]s and reconstruct the
//! causal tree from their id/parent links.
//!
//! * [`chrome_trace_json`] emits the Chrome Trace Event Format — open the
//!   file in `chrome://tracing` or <https://ui.perfetto.dev> to see one
//!   lane per recording thread with nested complete (`ph:"X"`) events.
//! * [`folded_stacks`] emits classic folded-stack lines
//!   (`root;child;leaf <self-ns>`) consumable by any flamegraph
//!   renderer. Weights are **self** time (duration minus the summed
//!   duration of direct children), so a stack's total equals the run's
//!   wall-clock contribution and nothing is double counted.

use crate::SpanEvent;
use serde::Value;
use std::collections::{BTreeMap, HashMap};

/// Renders spans as a Chrome Trace Event Format JSON object.
///
/// Each span becomes one complete event: `ts`/`dur` in microseconds (the
/// format's unit), `pid` fixed at 1, `tid` the recording thread's dense
/// id, and the span's id/parent pair under `args` so the causal tree
/// survives the export even when lanes interleave. Metadata events name
/// the process and each thread lane.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 8);
    events.push(meta_event(
        "process_name",
        0,
        vec![("name".to_string(), Value::Str("abccc".to_string()))],
    ));
    let mut tids: Vec<u32> = spans.iter().map(|s| s.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    for t in &tids {
        events.push(meta_event(
            "thread_name",
            *t,
            vec![("name".to_string(), Value::Str(format!("lane-{t}")))],
        ));
    }
    for s in spans {
        events.push(Value::Map(vec![
            ("name".to_string(), Value::Str(s.name.to_string())),
            ("cat".to_string(), Value::Str("span".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::F64(s.start_ns as f64 / 1000.0)),
            ("dur".to_string(), Value::F64(s.dur_ns as f64 / 1000.0)),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(u64::from(s.thread))),
            (
                "args".to_string(),
                Value::Map(vec![
                    ("id".to_string(), Value::U64(s.id)),
                    ("parent".to_string(), Value::U64(s.parent)),
                ]),
            ),
        ]));
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("render chrome trace")
}

fn meta_event(name: &str, tid: u32, args: Vec<(String, Value)>) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::U64(1)),
        ("tid".to_string(), Value::U64(u64::from(tid))),
        ("args".to_string(), Value::Map(args)),
    ])
}

/// Renders spans as folded flamegraph stacks: one
/// `name;name;…;name weight` line per distinct root-to-span path, sorted
/// lexically (deterministic for a fixed span set). Weights are self time
/// in nanoseconds; spans fully covered by their children are omitted.
pub fn folded_stacks(spans: &[SpanEvent]) -> String {
    let by_id: HashMap<u64, &SpanEvent> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_ns.entry(s.parent).or_default() += s.dur_ns;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        if self_ns == 0 {
            continue;
        }
        let mut names = vec![s.name];
        let mut cursor = s.parent;
        // Depth cap guards against a corrupt parent cycle; real trees in
        // this stack are a handful of levels deep.
        let mut depth = 0;
        while cursor != 0 && depth < 64 {
            let Some(parent) = by_id.get(&cursor) else {
                break;
            };
            names.push(parent.name);
            cursor = parent.parent;
            depth += 1;
        }
        names.reverse();
        *folded.entry(names.join(";")).or_default() += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in &folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        name: &'static str,
        thread: u32,
        id: u64,
        parent: u64,
        start: u64,
        dur: u64,
    ) -> SpanEvent {
        SpanEvent {
            name,
            thread,
            id,
            parent,
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn sample() -> Vec<SpanEvent> {
        vec![
            ev("run", 0, 1, 0, 0, 1000),
            ev("exp", 1, 10, 1, 100, 600),
            ev("point", 1, 11, 10, 150, 200),
            ev("point", 2, 20, 10, 150, 100),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let json = chrome_trace_json(&sample());
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let map = v.as_map().expect("object");
        let events = map
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_seq())
            .expect("traceEvents array");
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.as_map()
                    .and_then(|m| m.iter().find(|(k, _)| k == "ph"))
                    .map(|(_, v)| v == &Value::Str("X".to_string()))
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(complete.len(), 4);
        // Three lanes → three thread_name metadata events + process_name.
        let meta = events.len() - complete.len();
        assert_eq!(meta, 4);
        // µs conversion: 1000 ns → 1.0 µs.
        let first = complete[0].as_map().unwrap();
        let dur = first.iter().find(|(k, _)| k == "dur").unwrap();
        assert_eq!(dur.1, Value::F64(1.0));
    }

    #[test]
    fn folded_stacks_use_self_time_and_full_paths() {
        let text = folded_stacks(&sample());
        let lines: Vec<&str> = text.lines().collect();
        // run self = 1000 - 600; exp self = 600 - 300; the two points
        // share a stack and sum.
        assert_eq!(
            lines,
            ["run 400", "run;exp 300", "run;exp;point 300"],
            "{text}"
        );
    }

    #[test]
    fn orphan_parent_truncates_stack_instead_of_panicking() {
        let text = folded_stacks(&[ev("lost", 0, 5, 999, 0, 50)]);
        assert_eq!(text, "lost 50\n");
    }

    #[test]
    fn empty_input_yields_empty_outputs() {
        assert_eq!(folded_stacks(&[]), "");
        let v: Value = serde_json::from_str(&chrome_trace_json(&[])).expect("valid JSON");
        assert!(v.as_map().is_some());
    }
}
