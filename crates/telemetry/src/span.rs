//! RAII span timing with per-thread buffering.
//!
//! A [`SpanGuard`] stamps wall-clock time on construction and, on drop,
//! pushes one [`SpanEvent`] into a thread-local buffer. Buffers flush
//! into a process-global vector when they reach capacity and when their
//! thread exits, so short-lived worker threads (the distance engine's
//! stealing workers, scoped simulation threads) pay one lock per
//! *lifetime*, not per span.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static so hot paths never allocate).
    pub name: &'static str,
    /// Small dense id of the recording thread (assigned on first span).
    pub thread: u32,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Flush threshold for the thread-local buffer.
const FLUSH_AT: usize = 1024;

static GLOBAL: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// Thread-local buffer whose `Drop` flushes leftovers at thread exit.
struct LocalBuf {
    id: u32,
    events: Vec<SpanEvent>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            GLOBAL
                .lock()
                .expect("span buffer poisoned")
                .append(&mut self.events);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

/// A running span; records a [`SpanEvent`] when dropped.
///
/// When telemetry is disabled at `enter` time the guard is inert and
/// costs a relaxed load plus one branch in `Drop`.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `u64::MAX` marks an inert guard (telemetry disabled at entry).
    start_ns: u64,
}

impl SpanGuard {
    /// Starts a span named `name` if telemetry is enabled.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        let start_ns = if crate::enabled() {
            crate::now_ns()
        } else {
            u64::MAX
        };
        SpanGuard { name, start_ns }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.start_ns == u64::MAX {
            return;
        }
        let dur_ns = crate::now_ns().saturating_sub(self.start_ns);
        let _ = LOCAL.try_with(|local| {
            let mut local = local.borrow_mut();
            let id = local.id;
            local.events.push(SpanEvent {
                name: self.name,
                thread: id,
                start_ns: self.start_ns,
                dur_ns,
            });
            if local.events.len() >= FLUSH_AT {
                local.flush();
            }
        });
    }
}

/// Flushes the calling thread's buffer and takes every globally recorded
/// span, ordered by flush time (stable within a thread).
///
/// Worker threads that already exited have flushed automatically; call
/// this from the orchestrating thread after joins.
pub fn drain_spans() -> Vec<SpanEvent> {
    let _ = LOCAL.try_with(|local| local.borrow_mut().flush());
    std::mem::take(&mut *GLOBAL.lock().expect("span buffer poisoned"))
}

/// Discards all buffered spans (current thread + global).
pub(crate) fn clear_spans() {
    let _ = LOCAL.try_with(|local| local.borrow_mut().events.clear());
    GLOBAL.lock().expect("span buffer poisoned").clear();
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn spans_record_name_thread_and_duration() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        {
            let _g = SpanGuard::enter("span.test.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::set_enabled(false);
        let spans = drain_spans();
        let ev = spans
            .iter()
            .find(|s| s.name == "span.test.outer")
            .expect("span recorded");
        assert!(ev.dur_ns >= 1_000_000, "{}", ev.dur_ns);
    }

    #[test]
    fn worker_thread_spans_flush_at_exit() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _g = SpanGuard::enter("span.test.worker");
                });
            }
        });
        crate::set_enabled(false);
        let spans = drain_spans();
        let workers: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "span.test.worker")
            .collect();
        assert_eq!(workers.len(), 3);
        // Distinct worker threads get distinct ids.
        let mut ids: Vec<u32> = workers.iter().map(|s| s.thread).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn inert_guard_records_nothing() {
        let _lock = crate::test_guard();
        crate::set_enabled(false);
        drop(SpanGuard::enter("span.test.inert"));
        assert!(drain_spans().iter().all(|s| s.name != "span.test.inert"));
    }
}
