//! RAII span timing with per-thread buffering and causal parent links.
//!
//! A [`SpanGuard`] stamps wall-clock time on construction and, on drop,
//! pushes one [`SpanEvent`] into a thread-local buffer. Buffers flush
//! into a process-global vector when they reach capacity and when their
//! thread exits, so short-lived worker threads (the distance engine's
//! stealing workers, scoped simulation threads) pay one lock per
//! *lifetime*, not per span.
//!
//! ## Causality
//!
//! Every live span gets a process-unique id and a parent id: by default
//! the innermost span still open **on the same thread** (a thread-local
//! stack tracks this for free), or an explicit id passed to
//! [`SpanGuard::enter_under`] when work hops threads — the sweep engine
//! uses that to parent each worker's per-point spans under the
//! orchestrator's run span. Parent id 0 means "root". The id/parent
//! pairs are what the Chrome-trace and flamegraph exporters in
//! [`crate::trace`] reconstruct the tree from.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static so hot paths never allocate).
    pub name: &'static str,
    /// Small dense id of the recording thread (assigned on first span).
    pub thread: u32,
    /// Process-unique span id (thread id in the high bits, per-thread
    /// sequence in the low 40 — see [`LocalBuf::alloc_id`]). Never 0.
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Flush threshold for the thread-local buffer.
const FLUSH_AT: usize = 1024;

/// Bits of the span id reserved for the per-thread sequence number.
const SEQ_BITS: u32 = 40;

static GLOBAL: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// Thread-local buffer whose `Drop` flushes leftovers at thread exit.
struct LocalBuf {
    id: u32,
    next_seq: u64,
    /// Ids of the spans currently open on this thread, innermost last.
    stack: Vec<u64>,
    events: Vec<SpanEvent>,
}

impl LocalBuf {
    /// A fresh process-unique span id: `(thread + 1) << SEQ_BITS | seq`.
    /// The `+ 1` keeps 0 free to mean "no parent" even for thread 0's
    /// first span.
    fn alloc_id(&mut self) -> u64 {
        self.next_seq += 1;
        (u64::from(self.id) + 1) << SEQ_BITS | (self.next_seq & ((1 << SEQ_BITS) - 1))
    }

    fn flush(&mut self) {
        if !self.events.is_empty() {
            GLOBAL
                .lock()
                .expect("span buffer poisoned")
                .append(&mut self.events);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        next_seq: 0,
        stack: Vec::new(),
        events: Vec::new(),
    });
}

/// A running span; records a [`SpanEvent`] when dropped.
///
/// When telemetry is disabled at `enter` time the guard is inert and
/// costs a relaxed load plus one branch in `Drop`.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `u64::MAX` marks an inert guard (telemetry disabled at entry).
    start_ns: u64,
    id: u64,
    parent: u64,
}

impl SpanGuard {
    /// Starts a span named `name` if telemetry is enabled, parented
    /// under the innermost span already open on this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        Self::with_parent(name, None)
    }

    /// Starts a span with an explicit parent id — for work that crosses
    /// threads, where the thread-local stack cannot see the causal
    /// parent. Pass the parent guard's [`SpanGuard::id`]; 0 makes this
    /// a root span.
    #[inline]
    pub fn enter_under(name: &'static str, parent: u64) -> Self {
        Self::with_parent(name, Some(parent))
    }

    fn with_parent(name: &'static str, parent: Option<u64>) -> Self {
        if !crate::enabled() {
            return SpanGuard {
                name,
                start_ns: u64::MAX,
                id: 0,
                parent: 0,
            };
        }
        let start_ns = crate::now_ns();
        let (id, parent) = LOCAL
            .try_with(|local| {
                let mut local = local.borrow_mut();
                let id = local.alloc_id();
                let parent = parent.unwrap_or_else(|| local.stack.last().copied().unwrap_or(0));
                local.stack.push(id);
                (id, parent)
            })
            .unwrap_or((0, 0));
        SpanGuard {
            name,
            start_ns,
            id,
            parent,
        }
    }

    /// This span's process-unique id (0 when the guard is inert), for
    /// parenting cross-thread children via [`SpanGuard::enter_under`].
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.start_ns == u64::MAX {
            return;
        }
        let dur_ns = crate::now_ns().saturating_sub(self.start_ns);
        let _ = LOCAL.try_with(|local| {
            let mut local = local.borrow_mut();
            // Guards usually drop LIFO, but search from the end so an
            // out-of-order drop (guard moved into a struct, say) cannot
            // corrupt unrelated entries.
            if let Some(pos) = local.stack.iter().rposition(|&id| id == self.id) {
                local.stack.remove(pos);
            }
            let thread = local.id;
            local.events.push(SpanEvent {
                name: self.name,
                thread,
                id: self.id,
                parent: self.parent,
                start_ns: self.start_ns,
                dur_ns,
            });
            if local.events.len() >= FLUSH_AT {
                local.flush();
            }
        });
    }
}

/// Flushes the calling thread's buffer and takes every globally recorded
/// span, ordered by flush time (stable within a thread).
///
/// Worker threads that already exited have flushed automatically; call
/// this from the orchestrating thread after joins.
pub fn drain_spans() -> Vec<SpanEvent> {
    let _ = LOCAL.try_with(|local| local.borrow_mut().flush());
    std::mem::take(&mut *GLOBAL.lock().expect("span buffer poisoned"))
}

/// Discards all buffered spans (current thread + global).
pub(crate) fn clear_spans() {
    let _ = LOCAL.try_with(|local| local.borrow_mut().events.clear());
    GLOBAL.lock().expect("span buffer poisoned").clear();
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn spans_record_name_thread_and_duration() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        {
            let _g = SpanGuard::enter("span.test.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::set_enabled(false);
        let spans = drain_spans();
        let ev = spans
            .iter()
            .find(|s| s.name == "span.test.outer")
            .expect("span recorded");
        assert!(ev.dur_ns >= 1_000_000, "{}", ev.dur_ns);
        assert_ne!(ev.id, 0);
        assert_eq!(ev.parent, 0);
    }

    #[test]
    fn nested_spans_link_to_their_parent() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        {
            let outer = SpanGuard::enter("span.test.nest.outer");
            assert_ne!(outer.id(), 0);
            {
                let inner = SpanGuard::enter("span.test.nest.inner");
                assert_ne!(inner.id(), outer.id());
            }
            let sibling = SpanGuard::enter("span.test.nest.sibling");
            drop(sibling);
        }
        crate::set_enabled(false);
        let spans = drain_spans();
        let find = |n: &str| {
            spans
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("{n} recorded"))
        };
        let outer = find("span.test.nest.outer");
        let inner = find("span.test.nest.inner");
        let sibling = find("span.test.nest.sibling");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        let root = SpanGuard::enter("span.test.cross.root");
        let root_id = root.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _child = SpanGuard::enter_under("span.test.cross.child", root_id);
                // The thread-local stack still parents grandchildren
                // under the cross-thread child.
                let _grand = SpanGuard::enter("span.test.cross.grand");
            });
        });
        drop(root);
        crate::set_enabled(false);
        let spans = drain_spans();
        let find = |n: &str| {
            spans
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("{n} recorded"))
        };
        let child = find("span.test.cross.child");
        let grand = find("span.test.cross.grand");
        assert_eq!(child.parent, root_id);
        assert_eq!(grand.parent, child.id);
        assert_ne!(child.thread, find("span.test.cross.root").thread);
    }

    #[test]
    fn worker_thread_spans_flush_at_exit() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _g = SpanGuard::enter("span.test.worker");
                });
            }
        });
        crate::set_enabled(false);
        let spans = drain_spans();
        let workers: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "span.test.worker")
            .collect();
        assert_eq!(workers.len(), 3);
        // Distinct worker threads get distinct thread ids and distinct
        // span ids.
        let mut ids: Vec<u32> = workers.iter().map(|s| s.thread).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        let mut span_ids: Vec<u64> = workers.iter().map(|s| s.id).collect();
        span_ids.sort_unstable();
        span_ids.dedup();
        assert_eq!(span_ids.len(), 3);
    }

    #[test]
    fn inert_guard_records_nothing() {
        let _lock = crate::test_guard();
        crate::set_enabled(false);
        let g = SpanGuard::enter("span.test.inert");
        assert_eq!(g.id(), 0);
        drop(g);
        assert!(drain_spans().iter().all(|s| s.name != "span.test.inert"));
    }
}
