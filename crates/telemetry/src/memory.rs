//! Process memory probes for run manifests.
//!
//! The crate forbids `unsafe`, so there is no `getrusage` call here: on
//! Linux the kernel already exports the numbers in `/proc/self/status`,
//! and that file is the most portable unsafe-free source of
//! peak-resident-set truth. On platforms without it the probes return
//! `None` — callers must not conflate "unavailable" with "the process
//! used no memory", and manifests serialize the distinction as JSON
//! `null`.

/// Peak resident set size (`VmHWM`) of this process in bytes, or `None`
/// when the platform does not expose it.
///
/// The high-water mark is monotone over the process lifetime: sampling it
/// after an experiment phase bounds the phase's resident footprint from
/// above (earlier phases may own part of the peak — manifests record it
/// as a run-level, not phase-level, figure).
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size (`VmRSS`) in bytes, or `None` when
/// unavailable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

/// Reads a `kB`-denominated field out of `/proc/self/status`.
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_field(&status, field)
}

fn parse_status_field(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kb_fields() {
        let status = "Name:\tx\nVmHWM:\t  123456 kB\nVmRSS:\t   4096 kB\n";
        assert_eq!(parse_status_field(status, "VmHWM:"), Some(123_456 * 1024));
        assert_eq!(parse_status_field(status, "VmRSS:"), Some(4096 * 1024));
        assert_eq!(parse_status_field(status, "VmPeak:"), None);
        assert_eq!(parse_status_field("", "VmHWM:"), None);
    }

    #[test]
    fn malformed_fields_are_unavailable_not_zero() {
        assert_eq!(parse_status_field("VmHWM:\tgarbage kB\n", "VmHWM:"), None);
        assert_eq!(parse_status_field("VmHWM:\n", "VmHWM:"), None);
    }

    #[test]
    fn live_probes_are_sane() {
        let peak = peak_rss_bytes();
        let cur = current_rss_bytes();
        if let Some(peak) = peak {
            // A running test binary occupies at least a page and the peak
            // bounds the current level.
            assert!(peak >= 4096, "peak {peak}");
            assert!(peak >= cur.unwrap_or(0), "peak {peak} < current {cur:?}");
        }
    }
}
