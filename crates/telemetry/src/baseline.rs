//! Perf-baseline store and regression sentinel.
//!
//! A [`PerfRecord`] condenses one experiment run's manifest into the
//! figures worth guarding: end-to-end wall time, peak RSS, the
//! `*_bytes` allocation gauges, and tail quantiles of every captured
//! histogram. `abccc-cli perf record` folds N repetitions into a
//! component-wise **median** record (noise suppression) and stores one
//! JSON file per experiment under `bench_results/baselines/`;
//! `perf diff` re-measures and compares with [`diff`].
//!
//! ## Noise model
//!
//! A metric regresses only when it exceeds the baseline by **both** a
//! relative factor and an absolute floor ([`DiffThresholds`]). The
//! relative gate alone would flag microsecond jitter on microsecond
//! phases; the absolute floor alone would hide a 2× slowdown of a fast
//! path. Medians-of-N on both sides of the comparison keep single-run
//! outliers from tripping either gate. The result is a machine-readable
//! [`PerfVerdict`] — `regressions` empty ⇔ exit 0 in the CLI.

use crate::{HistogramSnapshot, RunManifest};
use serde::Value;
use std::path::Path;

/// Tail quantiles of one histogram, as recorded in a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HistQuantiles {
    /// Histogram name (e.g. `fib.lookup_ns`).
    pub name: String,
    /// Sample count behind the quantiles.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// 99.99th percentile.
    pub p9999: u64,
}

impl HistQuantiles {
    fn from_snapshot(h: &HistogramSnapshot) -> Self {
        HistQuantiles {
            name: h.name.clone(),
            count: h.count,
            p50: h.p50,
            p99: h.p99,
            p999: h.p999,
            p9999: h.p9999,
        }
    }
}

/// One experiment's guarded performance figures.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Experiment name (the baseline file is `<experiment>.json`).
    pub experiment: String,
    /// Grid preset the figures were measured at (`tiny`/`paper`/…).
    /// Records at different presets are never compared.
    pub preset: String,
    /// Number of repetitions folded into this record (1 for a raw run).
    pub samples: u64,
    /// End-to-end wall time, nanoseconds (median across repetitions).
    pub wall_ns: u64,
    /// Peak RSS in bytes; `None` when the platform exposes none.
    pub peak_rss_bytes: Option<u64>,
    /// `*_bytes` allocation gauges from the manifest's memory section.
    pub gauges: Vec<(String, i64)>,
    /// Tail quantiles per captured histogram, sorted by name.
    pub histograms: Vec<HistQuantiles>,
}

impl PerfRecord {
    /// Builds a single-run record from a manifest. `wall_ns` falls back
    /// to the summed phase time when the driver never stamped a wall
    /// clock; the preset is read from the manifest's `preset` parameter.
    pub fn from_manifest(m: &RunManifest) -> Self {
        let preset = m
            .params
            .iter()
            .find(|(k, _)| k == "preset")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let wall_ns = m
            .wall_ns
            .unwrap_or_else(|| m.phases.iter().map(|p| p.total_ns).sum());
        let mut histograms: Vec<HistQuantiles> = m
            .histograms
            .iter()
            .map(HistQuantiles::from_snapshot)
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges = m
            .memory
            .as_ref()
            .map(|mem| mem.alloc_gauges.clone())
            .unwrap_or_default();
        gauges.sort();
        PerfRecord {
            experiment: m.experiment.clone(),
            preset,
            samples: 1,
            wall_ns,
            peak_rss_bytes: m.memory.as_ref().and_then(|mem| mem.peak_rss_bytes),
            gauges,
            histograms,
        }
    }

    /// Folds repetitions of the **same experiment** into one record by
    /// taking the component-wise median of every figure. Returns `None`
    /// on an empty slice; panics if experiments are mixed (driver bug).
    pub fn median_of(runs: &[PerfRecord]) -> Option<PerfRecord> {
        let first = runs.first()?;
        assert!(
            runs.iter().all(|r| r.experiment == first.experiment),
            "median_of mixes experiments"
        );
        let med = |pick: &dyn Fn(&PerfRecord) -> Option<u64>| -> Option<u64> {
            let mut vals: Vec<u64> = runs.iter().filter_map(pick).collect();
            if vals.is_empty() {
                return None;
            }
            vals.sort_unstable();
            Some(vals[vals.len() / 2])
        };
        let mut gauge_names: Vec<String> = runs
            .iter()
            .flat_map(|r| r.gauges.iter().map(|(n, _)| n.clone()))
            .collect();
        gauge_names.sort();
        gauge_names.dedup();
        let gauges = gauge_names
            .into_iter()
            .filter_map(|name| {
                med(&|r: &PerfRecord| {
                    r.gauges
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, v)| *v as u64)
                })
                .map(|v| (name, v as i64))
            })
            .collect();
        let mut hist_names: Vec<String> = runs
            .iter()
            .flat_map(|r| r.histograms.iter().map(|h| h.name.clone()))
            .collect();
        hist_names.sort();
        hist_names.dedup();
        let histograms = hist_names
            .into_iter()
            .map(|name| {
                let q = |pick: &dyn Fn(&HistQuantiles) -> u64| {
                    med(&|r: &PerfRecord| r.histograms.iter().find(|h| h.name == name).map(pick))
                        .unwrap_or(0)
                };
                HistQuantiles {
                    count: q(&|h| h.count),
                    p50: q(&|h| h.p50),
                    p99: q(&|h| h.p99),
                    p999: q(&|h| h.p999),
                    p9999: q(&|h| h.p9999),
                    name,
                }
            })
            .collect();
        Some(PerfRecord {
            experiment: first.experiment.clone(),
            preset: first.preset.clone(),
            samples: runs.len() as u64,
            wall_ns: med(&|r: &PerfRecord| Some(r.wall_ns)).unwrap_or(0),
            peak_rss_bytes: med(&|r: &PerfRecord| r.peak_rss_bytes),
            gauges,
            histograms,
        })
    }

    /// Renders the record as pretty-printed JSON (the baseline file
    /// format).
    pub fn to_json(&self) -> String {
        let doc = Value::Map(vec![
            (
                "experiment".to_string(),
                Value::Str(self.experiment.clone()),
            ),
            ("preset".to_string(), Value::Str(self.preset.clone())),
            ("samples".to_string(), Value::U64(self.samples)),
            ("wall_ns".to_string(), Value::U64(self.wall_ns)),
            (
                "peak_rss_bytes".to_string(),
                self.peak_rss_bytes.map_or(Value::Null, Value::U64),
            ),
            (
                "gauges".to_string(),
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::I64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|h| {
                            (
                                h.name.clone(),
                                Value::Map(vec![
                                    ("count".to_string(), Value::U64(h.count)),
                                    ("p50".to_string(), Value::U64(h.p50)),
                                    ("p99".to_string(), Value::U64(h.p99)),
                                    ("p999".to_string(), Value::U64(h.p999)),
                                    ("p9999".to_string(), Value::U64(h.p9999)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("render perf record")
    }

    /// Parses a baseline file produced by [`PerfRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(text: &str) -> Result<PerfRecord, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let map = v.as_map().ok_or("perf record must be a JSON object")?;
        let field = |k: &str| -> Result<&Value, String> {
            map.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{k}`"))
        };
        let gauges = match field("gauges")? {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), as_i64(v).ok_or(format!("gauge `{k}`"))?)))
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("`gauges` must be an object".to_string()),
        };
        let histograms = match field("histograms")? {
            Value::Map(entries) => entries
                .iter()
                .map(|(name, v)| {
                    let h = v
                        .as_map()
                        .ok_or_else(|| format!("histogram `{name}` must be an object"))?;
                    let q = |k: &str| -> Result<u64, String> {
                        h.iter()
                            .find(|(n, _)| n == k)
                            .and_then(|(_, v)| as_u64(v))
                            .ok_or_else(|| format!("histogram `{name}` field `{k}`"))
                    };
                    Ok(HistQuantiles {
                        name: name.clone(),
                        count: q("count")?,
                        p50: q("p50")?,
                        p99: q("p99")?,
                        p999: q("p999")?,
                        p9999: q("p9999")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("`histograms` must be an object".to_string()),
        };
        Ok(PerfRecord {
            experiment: as_str(field("experiment")?).ok_or("`experiment` must be a string")?,
            preset: as_str(field("preset")?).ok_or("`preset` must be a string")?,
            samples: as_u64(field("samples")?).ok_or("`samples` must be an integer")?,
            wall_ns: as_u64(field("wall_ns")?).ok_or("`wall_ns` must be an integer")?,
            peak_rss_bytes: match field("peak_rss_bytes")? {
                Value::Null => None,
                other => Some(as_u64(other).ok_or("`peak_rss_bytes` must be an integer")?),
            },
            gauges,
            histograms,
        })
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn as_i64(v: &Value) -> Option<i64> {
    match v {
        Value::U64(n) => i64::try_from(*n).ok(),
        Value::I64(n) => Some(*n),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// Writes one `<experiment>.json` baseline file per record into `dir`
/// (created if missing).
///
/// # Errors
///
/// Propagates file-system errors.
pub fn save_baselines(dir: impl AsRef<Path>, records: &[PerfRecord]) -> std::io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for r in records {
        std::fs::write(dir.join(format!("{}.json", r.experiment)), r.to_json())?;
    }
    Ok(())
}

/// Loads every `*.json` baseline in `dir`, sorted by experiment name.
/// A missing directory is an empty store, not an error.
///
/// # Errors
///
/// Reports the first unreadable or unparseable file.
pub fn load_baselines(dir: impl AsRef<Path>) -> Result<Vec<PerfRecord>, String> {
    let dir = dir.as_ref();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", dir.display())),
    };
    let mut records = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        records.push(PerfRecord::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    records.sort_by(|a, b| a.experiment.cmp(&b.experiment));
    Ok(records)
}

/// Regression gates: a metric must exceed the baseline by the relative
/// factor **and** the matching absolute floor to count as a regression.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffThresholds {
    /// Relative growth gate: regression requires
    /// `current > baseline × (1 + rel)`.
    pub rel: f64,
    /// Absolute floor for wall-time comparisons, nanoseconds.
    pub wall_floor_ns: u64,
    /// Absolute floor for RSS and `*_bytes` gauge comparisons, bytes.
    pub rss_floor_bytes: u64,
    /// Absolute floor for histogram-quantile comparisons (metric units,
    /// typically nanoseconds).
    pub hist_floor: u64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            // 50% headroom: shared-runner noise on sub-second experiments
            // routinely hits ±30%; a real hot-path regression (2×+)
            // clears this comfortably.
            rel: 0.5,
            wall_floor_ns: 50_000_000,         // 50 ms
            rss_floor_bytes: 32 * 1024 * 1024, // 32 MiB
            // Tail quantiles of micro-timings (per-trial, per-lookup)
            // jitter by hundreds of µs under scheduler noise; only a
            // millisecond-scale *and* ≥1.5× move is a real regression.
            hist_floor: 1_000_000, // 1 ms for *_ns histograms
        }
    }
}

/// One metric that crossed the regression gates.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment the metric belongs to.
    pub experiment: String,
    /// Dotted metric path (`wall_ns`, `peak_rss_bytes`,
    /// `gauge:<name>`, `hist:<name>.p99`, …).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Currently measured value.
    pub current: u64,
    /// `current / baseline` (∞-safe: baseline 0 reports 0.0).
    pub ratio: f64,
}

/// Machine-readable outcome of a baseline comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfVerdict {
    /// Experiments compared against a stored baseline.
    pub compared: Vec<String>,
    /// Current experiments with no stored baseline.
    pub missing_baseline: Vec<String>,
    /// Experiments skipped because baseline and current were measured at
    /// different presets.
    pub preset_mismatch: Vec<String>,
    /// Metrics that crossed both regression gates.
    pub regressions: Vec<Regression>,
    /// Metrics that improved past the same gates (informational).
    pub improvements: Vec<Regression>,
}

impl PerfVerdict {
    /// `true` when no metric regressed.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the verdict as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let entry = |r: &Regression| {
            Value::Map(vec![
                ("experiment".to_string(), Value::Str(r.experiment.clone())),
                ("metric".to_string(), Value::Str(r.metric.clone())),
                ("baseline".to_string(), Value::U64(r.baseline)),
                ("current".to_string(), Value::U64(r.current)),
                ("ratio".to_string(), Value::F64(r.ratio)),
            ])
        };
        let names = |v: &[String]| Value::Seq(v.iter().map(|s| Value::Str(s.clone())).collect());
        let doc = Value::Map(vec![
            ("ok".to_string(), Value::Bool(self.ok())),
            ("compared".to_string(), names(&self.compared)),
            (
                "missing_baseline".to_string(),
                names(&self.missing_baseline),
            ),
            ("preset_mismatch".to_string(), names(&self.preset_mismatch)),
            (
                "regressions".to_string(),
                Value::Seq(self.regressions.iter().map(entry).collect()),
            ),
            (
                "improvements".to_string(),
                Value::Seq(self.improvements.iter().map(entry).collect()),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("render perf verdict")
    }

    /// Renders the verdict as a short human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf diff: {} compared, {} regression(s), {} improvement(s)\n",
            self.compared.len(),
            self.regressions.len(),
            self.improvements.len()
        ));
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION {} {}: {} -> {} ({:.2}x)\n",
                r.experiment, r.metric, r.baseline, r.current, r.ratio
            ));
        }
        for r in &self.improvements {
            out.push_str(&format!(
                "  improved   {} {}: {} -> {} ({:.2}x)\n",
                r.experiment, r.metric, r.baseline, r.current, r.ratio
            ));
        }
        if !self.missing_baseline.is_empty() {
            out.push_str(&format!(
                "  no baseline for: {}\n",
                self.missing_baseline.join(", ")
            ));
        }
        if !self.preset_mismatch.is_empty() {
            out.push_str(&format!(
                "  preset mismatch (skipped): {}\n",
                self.preset_mismatch.join(", ")
            ));
        }
        out
    }
}

/// Compares current records against stored baselines (matched by
/// experiment name; presets must agree) under the given gates.
pub fn diff(
    baselines: &[PerfRecord],
    current: &[PerfRecord],
    thresholds: &DiffThresholds,
) -> PerfVerdict {
    let mut verdict = PerfVerdict::default();
    for cur in current {
        let Some(base) = baselines.iter().find(|b| b.experiment == cur.experiment) else {
            verdict.missing_baseline.push(cur.experiment.clone());
            continue;
        };
        if base.preset != cur.preset {
            verdict.preset_mismatch.push(cur.experiment.clone());
            continue;
        }
        verdict.compared.push(cur.experiment.clone());
        let mut check = |metric: String, baseline: u64, current_v: u64, floor: u64| {
            let ratio = if baseline == 0 {
                0.0
            } else {
                current_v as f64 / baseline as f64
            };
            let entry = Regression {
                experiment: cur.experiment.clone(),
                metric,
                baseline,
                current: current_v,
                ratio,
            };
            let grew = current_v as f64 > baseline as f64 * (1.0 + thresholds.rel)
                && current_v.saturating_sub(baseline) > floor;
            let shrank = baseline as f64 > current_v as f64 * (1.0 + thresholds.rel)
                && baseline.saturating_sub(current_v) > floor;
            if grew {
                verdict.regressions.push(entry);
            } else if shrank {
                verdict.improvements.push(entry);
            }
        };
        check(
            "wall_ns".to_string(),
            base.wall_ns,
            cur.wall_ns,
            thresholds.wall_floor_ns,
        );
        if let (Some(b), Some(c)) = (base.peak_rss_bytes, cur.peak_rss_bytes) {
            check(
                "peak_rss_bytes".to_string(),
                b,
                c,
                thresholds.rss_floor_bytes,
            );
        }
        for (name, cur_v) in &cur.gauges {
            if let Some((_, base_v)) = base.gauges.iter().find(|(n, _)| n == name) {
                check(
                    format!("gauge:{name}"),
                    (*base_v).max(0) as u64,
                    (*cur_v).max(0) as u64,
                    thresholds.rss_floor_bytes,
                );
            }
        }
        // Only the median gates: tail quantiles (p99 and up) of these
        // micro-timing histograms are max-dominated and swing orders of
        // magnitude under scheduler contention in the parallel sweep.
        // They stay in the stored records for inspection; systemic
        // slowdowns that shift the whole distribution move p50 (and
        // wall_ns) well past the gates.
        for cur_h in &cur.histograms {
            if let Some(base_h) = base.histograms.iter().find(|h| h.name == cur_h.name) {
                check(
                    format!("hist:{}.p50", cur_h.name),
                    base_h.p50,
                    cur_h.p50,
                    thresholds.hist_floor,
                );
            }
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(experiment: &str, wall_ns: u64) -> PerfRecord {
        PerfRecord {
            experiment: experiment.to_string(),
            preset: "tiny".to_string(),
            samples: 1,
            wall_ns,
            peak_rss_bytes: Some(100 << 20),
            gauges: vec![("fib.table_bytes".to_string(), 1 << 20)],
            histograms: vec![HistQuantiles {
                name: "fib.lookup_ns".to_string(),
                count: 1000,
                p50: 200,
                p99: 900,
                p999: 2_000,
                p9999: 4_000,
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let r = record("fig1", 123_456_789);
        let parsed = PerfRecord::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(parsed, r);
        // Null RSS survives too.
        let mut none = r.clone();
        none.peak_rss_bytes = None;
        assert_eq!(PerfRecord::from_json(&none.to_json()).unwrap(), none);
    }

    #[test]
    fn median_of_is_the_middle_run() {
        let runs: Vec<PerfRecord> = [300u64, 100, 200]
            .iter()
            .map(|w| record("fig1", *w))
            .collect();
        let med = PerfRecord::median_of(&runs).expect("nonempty");
        assert_eq!(med.wall_ns, 200);
        assert_eq!(med.samples, 3);
        assert_eq!(med.histograms[0].p99, 900);
        assert!(PerfRecord::median_of(&[]).is_none());
    }

    #[test]
    fn identical_records_never_regress() {
        let base = vec![record("fig1", 1_000_000_000)];
        let v = diff(&base, &base, &DiffThresholds::default());
        assert!(v.ok());
        assert_eq!(v.compared, ["fig1"]);
        assert!(v.improvements.is_empty());
    }

    #[test]
    fn regression_needs_relative_and_absolute_growth() {
        let thr = DiffThresholds::default();
        let base = vec![record("fig1", 1_000_000_000)];
        // 2× on a 1 s experiment: both gates trip.
        let slow = vec![record("fig1", 2_000_000_000)];
        let v = diff(&base, &slow, &thr);
        assert_eq!(v.regressions.len(), 1);
        assert_eq!(v.regressions[0].metric, "wall_ns");
        assert!((v.regressions[0].ratio - 2.0).abs() < 1e-9);
        // 2× on a 1 ms experiment: relative gate trips, floor does not.
        let tiny_base = vec![record("fig2", 1_000_000)];
        let tiny_slow = vec![record("fig2", 2_000_000)];
        assert!(diff(&tiny_base, &tiny_slow, &thr).ok());
        // +40% on a 10 s experiment: floor trips, relative gate does not.
        let big_base = vec![record("fig3", 10_000_000_000)];
        let big_slow = vec![record("fig3", 14_000_000_000)];
        assert!(diff(&big_base, &big_slow, &thr).ok());
    }

    #[test]
    fn histogram_median_gates_but_tails_do_not() {
        let base = vec![record("fig1", 1_000_000_000)];
        let mut cur = base.clone();
        // Tail quantiles swinging wildly is scheduler noise — ignored.
        cur[0].histograms[0].p999 = 1_000_000_000; // 2 µs -> 1 s
        cur[0].histograms[0].p9999 = 2_000_000_000;
        assert!(diff(&base, &cur, &DiffThresholds::default()).ok());
        // A median shift past both gates is a real regression.
        cur[0].histograms[0].p50 = 5_000_000; // 200 ns -> 5 ms
        let v = diff(&base, &cur, &DiffThresholds::default());
        assert_eq!(v.regressions.len(), 1);
        assert_eq!(v.regressions[0].metric, "hist:fib.lookup_ns.p50");
        assert!(v.to_json().contains("\"ok\": false"));
    }

    #[test]
    fn improvements_and_missing_baselines_are_reported_not_fatal() {
        let base = vec![record("fig1", 2_000_000_000)];
        let cur = vec![record("fig1", 500_000_000), record("fig_new", 1)];
        let v = diff(&base, &cur, &DiffThresholds::default());
        assert!(v.ok());
        assert_eq!(v.improvements.len(), 1);
        assert_eq!(v.missing_baseline, ["fig_new"]);
        assert!(v.render().contains("improved"));
    }

    #[test]
    fn preset_mismatch_skips_comparison() {
        let base = vec![record("fig1", 1_000)];
        let mut cur = vec![record("fig1", 1_000_000_000_000)];
        cur[0].preset = "paper".to_string();
        let v = diff(&base, &cur, &DiffThresholds::default());
        assert!(v.ok());
        assert_eq!(v.preset_mismatch, ["fig1"]);
        assert!(v.compared.is_empty());
    }

    #[test]
    fn store_roundtrips_on_disk() {
        let dir = std::env::temp_dir().join("dcn_telemetry_baseline_test");
        std::fs::remove_dir_all(&dir).ok();
        let records = vec![record("fig_a", 10), record("fig_b", 20)];
        save_baselines(&dir, &records).expect("save");
        let loaded = load_baselines(&dir).expect("load");
        assert_eq!(loaded, records);
        assert!(load_baselines(dir.join("missing"))
            .expect("empty")
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
