//! Atomic metric primitives and the process-global registry.
//!
//! Histograms use a log-bucketed HDR scheme: every power-of-two octave is
//! split into [`SUB_COUNT`] linear sub-buckets, so any recorded value
//! lands in a bucket whose width is at most [`MAX_RELATIVE_ERROR`] of its
//! lower bound. Quantiles read the bucket **upper** bound (clamped to the
//! recorded maximum), which yields the two-sided guarantee
//!
//! ```text
//! true ≤ reported ≤ true × (1 + MAX_RELATIVE_ERROR)
//! ```
//!
//! for every quantile, at every scale from 1 ns to `u64::MAX`. The bucket
//! mapping is a pure function of the value, so histograms recorded on
//! different threads (or in different processes) merge by adding bucket
//! counts — merge order can never change a quantile, which is what the
//! `hdr_merge` property suite pins.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &str) -> Self {
        Counter {
            name: name.to_string(),
            value: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous level (queue depth, outstanding work, …).
#[derive(Debug)]
pub struct Gauge {
    name: String,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &str) -> Self {
        Gauge {
            name: name.to_string(),
            value: AtomicI64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the level (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta (no-op while disabled).
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An `f64` level stored as atomic bits (convergence residuals, rates).
#[derive(Debug)]
pub struct FloatGauge {
    name: String,
    bits: AtomicU64,
}

impl FloatGauge {
    fn new(name: &str) -> Self {
        FloatGauge {
            name: name.to_string(),
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the level (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the level to `v` if `v` is greater (no-op while disabled).
    #[inline]
    pub fn set_max(&self, v: f64) {
        if crate::enabled() {
            self.bits.fetch_max(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Drop guard of [`Histogram::start_timer`]: records the elapsed
/// nanoseconds between construction and drop.
#[must_use = "a histogram timer measures the scope it is bound to; dropping it immediately records a zero-length sample"]
#[derive(Debug)]
pub struct HistogramTimer {
    histogram: &'static Histogram,
    started: Option<std::time::Instant>,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            self.histogram.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// log₂ of the sub-buckets per octave.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two octave.
pub const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count: indices `0..SUB_COUNT` hold the exact values
/// `0..SUB_COUNT`, then one group of [`SUB_COUNT`] buckets per octave up
/// to `2^64`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Worst-case relative width of any bucket: `1 / SUB_COUNT`. A reported
/// quantile exceeds the true sample value by at most this fraction.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB_COUNT as f64;

/// Bucket index for a sample (pure, so per-thread histograms merge by
/// adding counts).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    octave * SUB_COUNT + sub
}

/// `(lower, upper)` inclusive value bounds of bucket `index`.
///
/// Buckets below [`SUB_COUNT`] are exact (`lower == upper == index`);
/// above, each bucket spans `2^(octave-1)` values starting at
/// `(SUB_COUNT + sub) · 2^(octave-1)`, so `width / lower ≤
/// `[`MAX_RELATIVE_ERROR`].
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_COUNT {
        return (index as u64, index as u64);
    }
    let octave = (index / SUB_COUNT) as u32;
    let sub = (index % SUB_COUNT) as u64;
    let width = 1u64 << (octave - 1);
    let lower = (SUB_COUNT as u64 + sub).wrapping_mul(width);
    (lower, lower.wrapping_add(width - 1))
}

/// Nearest-rank quantile over a sparse `(bucket index, count)` list
/// (sorted by index), reported as the bucket upper bound clamped to the
/// recorded maximum.
fn quantile_sparse(buckets: &[(u16, u64)], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for &(i, n) in buckets {
        seen += n;
        if seen >= rank {
            return bucket_bounds(i as usize).1.min(max);
        }
    }
    max
}

/// A fixed-bucket, log-bucketed HDR histogram of `u64` samples (shared,
/// atomic — see the module docs for the bucket scheme and error bound).
///
/// Recording is two relaxed atomic adds plus an atomic max — no locks, no
/// allocation — so it is safe in simulator and route-lookup hot loops.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(name: &str) -> Self {
        Histogram {
            name: name.to_string(),
            buckets: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(BUCKETS)
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Starts a wall-clock timer whose elapsed nanoseconds are recorded
    /// into this histogram when the guard drops. While telemetry is
    /// disabled the guard holds no clock and drops for free, preserving
    /// the near-zero disabled-path cost the overhead bench enforces.
    #[inline]
    pub fn start_timer(&'static self) -> HistogramTimer {
        HistogramTimer {
            histogram: self,
            started: crate::enabled().then(std::time::Instant::now),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (nearest-rank over buckets), clamped to the recorded maximum —
    /// within [`MAX_RELATIVE_ERROR`] above the true sample value.
    /// Returns 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max());
            }
        }
        self.max()
    }

    /// Point-in-time copy for rendering and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u16, n))
            })
            .collect();
        let mut snap = HistogramSnapshot {
            name: self.name.clone(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: 0.0,
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
            p9999: 0,
            buckets,
        };
        snap.recompute();
        snap
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An owned, non-atomic histogram with the same bucket scheme as
/// [`Histogram`], recording **unconditionally** — no
/// [`crate::enabled`] gate — so deterministic per-run statistics (e.g.
/// `fib bench`'s hop distribution) never depend on whether telemetry is
/// switched on. Per-thread instances merge with [`HdrHistogram::merge`];
/// merge order cannot affect any quantile.
#[derive(Debug, Clone)]
pub struct HdrHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        HdrHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact).
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Same quantile semantics as [`Histogram::percentile`].
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Point-in-time copy under the given display name.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| (n > 0).then_some((i as u16, n)))
            .collect();
        let mut snap = HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            max: self.max,
            mean: 0.0,
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
            p9999: 0,
            buckets,
        };
        snap.recompute();
        snap
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// 99.99th percentile.
    pub p9999: u64,
    /// `(bucket index, count)` for non-empty buckets, sorted by index
    /// (see [`bucket_bounds`] for the index → value-range mapping).
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Folds `other`'s samples into `self` (bucket-wise) and recomputes
    /// the derived statistics. Because buckets are value-addressed, the
    /// result is independent of merge order — the property test suite
    /// pins this.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u16, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    merged.push(y);
                    b.next();
                }
                (Some(&&(xi, xn)), Some(&&(yi, yn))) => {
                    if xi < yi {
                        merged.push((xi, xn));
                        a.next();
                    } else if yi < xi {
                        merged.push((yi, yn));
                        b.next();
                    } else {
                        merged.push((xi, xn + yn));
                        a.next();
                        b.next();
                    }
                }
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.recompute();
    }

    /// Recomputes mean and quantiles from the bucket list.
    fn recompute(&mut self) {
        self.mean = if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        };
        self.p50 = quantile_sparse(&self.buckets, self.count, self.max, 0.50);
        self.p90 = quantile_sparse(&self.buckets, self.count, self.max, 0.90);
        self.p99 = quantile_sparse(&self.buckets, self.count, self.max, 0.99);
        self.p999 = quantile_sparse(&self.buckets, self.count, self.max, 0.999);
        self.p9999 = quantile_sparse(&self.buckets, self.count, self.max, 0.9999);
    }

    /// Nearest-rank quantile over the snapshot's buckets (same semantics
    /// as [`Histogram::percentile`]).
    pub fn percentile(&self, q: f64) -> u64 {
        quantile_sparse(&self.buckets, self.count, self.max, q)
    }
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, level)` per float gauge.
    pub float_gauges: Vec<(String, f64)>,
    /// One snapshot per histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` when no metric has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0)
            && self.float_gauges.iter().all(|(_, v)| *v == 0.0)
            && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Snapshot of a histogram by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Name-keyed store of every metric in the process.
///
/// Metrics are allocated once and leaked to `'static`, so hot paths hold
/// plain references (the [`crate::counter!`]-family macros cache the
/// lookup per call site).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    float_gauges: Mutex<BTreeMap<String, &'static FloatGauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn intern<T>(
    map: &Mutex<BTreeMap<String, &'static T>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> &'static T {
    let mut map = map.lock().expect("metric registry poisoned");
    if let Some(existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    map.insert(name.to_string(), leaked);
    leaked
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name, || Counter::new(name))
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name, || Gauge::new(name))
    }

    /// The float gauge registered under `name` (created on first use).
    pub fn float_gauge(&self, name: &str) -> &'static FloatGauge {
        intern(&self.float_gauges, name, || FloatGauge::new(name))
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name, || Histogram::new(name))
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metric registry poisoned")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metric registry poisoned")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            float_gauges: self
                .float_gauges
                .lock()
                .expect("metric registry poisoned")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metric registry poisoned")
                .values()
                .map(|h| h.snapshot())
                .collect(),
        }
    }

    /// Zeroes every registered metric (registration survives).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            g.reset();
        }
        for g in self
            .float_gauges
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn bucket_boundaries() {
        // Exact buckets below SUB_COUNT.
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        // First sub-bucketed octave is still exact (width 1).
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_bounds(31), (31, 31));
        // Octave 2: width-2 buckets.
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(33), 32);
        assert_eq!(bucket_bounds(32), (32, 33));
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn buckets_partition_the_value_space() {
        // Every bucket's upper bound + 1 is the next bucket's lower bound,
        // and bucket_of maps both endpoints back to the bucket.
        let mut expected_lower = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "bucket {i}");
            assert_eq!(bucket_of(lo), i, "bucket {i} lower");
            assert_eq!(bucket_of(hi), i, "bucket {i} upper");
            // Relative width bound (exact buckets have zero width).
            if lo > 0 {
                assert!((hi - lo) as f64 / lo as f64 <= MAX_RELATIVE_ERROR);
            }
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                break;
            }
            expected_lower = hi + 1;
        }
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let h = Histogram::new("t.hist");
        with_enabled(|| {
            for v in [0u64, 1, 1, 2, 3, 8, 100] {
                h.record(v);
            }
        });
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 115);
        assert_eq!(h.max(), 100);
        // Small values land in exact buckets: the median sample is 2 and
        // is reported exactly (the old log₂ scheme said "≤ 3").
        assert_eq!(h.percentile(0.5), 2);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.percentile(0.0), 0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.p50, 2);
        assert_eq!(snap.p9999, 100);
        assert_eq!(snap.buckets.iter().map(|(_, n)| n).sum::<u64>(), 7);
    }

    #[test]
    fn timer_records_only_while_enabled() {
        let h = crate::registry().histogram("t.timer");
        let before = h.count();
        {
            let _t = h.start_timer(); // disabled: holds no clock
        }
        assert_eq!(h.count(), before);
        with_enabled(|| {
            let _t = h.start_timer();
        });
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn percentile_clamps_to_max() {
        let h = Histogram::new("t.clamp");
        with_enabled(|| h.record(1000));
        // Bucket [960, 1023] upper bound is 1023; the recorded max is
        // tighter.
        assert_eq!(h.percentile(0.99), 1000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new("t.empty");
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        let snap = h.snapshot();
        assert_eq!((snap.p50, snap.p999, snap.p9999), (0, 0, 0));
    }

    #[test]
    fn owned_histogram_records_without_telemetry() {
        // No set_enabled anywhere: HdrHistogram must still record.
        let mut h = HdrHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p99 = h.percentile(0.99);
        assert!((990..=1023).contains(&p99), "{p99}");
        assert!(p99 as f64 <= 990.0 * (1.0 + MAX_RELATIVE_ERROR));
        let snap = h.snapshot("t.owned");
        assert_eq!(snap.name, "t.owned");
        assert_eq!(snap.p50, h.percentile(0.5));
    }

    #[test]
    fn snapshot_merge_matches_single_histogram() {
        let mut all = HdrHistogram::new();
        let mut parts: Vec<HdrHistogram> = (0..4).map(|_| HdrHistogram::new()).collect();
        let mut x = 0x12345u64;
        for i in 0..10_000u64 {
            // SplitMix-ish scramble for spread across octaves.
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
            let v = x >> (x % 50);
            all.record(v);
            parts[(i % 4) as usize].record(v);
        }
        let mut merged = parts[0].snapshot("m");
        for p in &parts[1..] {
            merged.merge(&p.snapshot("m"));
        }
        let direct = all.snapshot("m");
        assert_eq!(merged.count, direct.count);
        assert_eq!(merged.buckets, direct.buckets);
        assert_eq!(
            (
                merged.p50,
                merged.p90,
                merged.p99,
                merged.p999,
                merged.p9999
            ),
            (
                direct.p50,
                direct.p90,
                direct.p99,
                direct.p999,
                direct.p9999
            )
        );
    }

    #[test]
    fn gauges_and_counters_roundtrip() {
        with_enabled(|| {
            let c = crate::registry().counter("t.counter");
            c.reset();
            c.inc();
            c.add(4);
            assert_eq!(c.get(), 5);

            let g = crate::registry().gauge("t.gauge");
            g.set(7);
            g.add(-3);
            assert_eq!(g.get(), 4);

            let f = crate::registry().float_gauge("t.fgauge");
            f.set(1.5);
            f.set_max(0.5);
            assert_eq!(f.get(), 1.5);
            f.set_max(2.5);
            assert_eq!(f.get(), 2.5);
        });
    }

    #[test]
    fn snapshot_sorted_and_resettable() {
        let r = Registry::new();
        with_enabled(|| {
            r.counter("b").inc();
            r.counter("a").add(2);
            r.histogram("h").record(9);
        });
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.counter("a"), Some(2));
        assert!(snap.histogram("h").is_some());
        assert!(!snap.is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
