//! Atomic metric primitives and the process-global registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &str) -> Self {
        Counter {
            name: name.to_string(),
            value: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous level (queue depth, outstanding work, …).
#[derive(Debug)]
pub struct Gauge {
    name: String,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &str) -> Self {
        Gauge {
            name: name.to_string(),
            value: AtomicI64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the level (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta (no-op while disabled).
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An `f64` level stored as atomic bits (convergence residuals, rates).
#[derive(Debug)]
pub struct FloatGauge {
    name: String,
    bits: AtomicU64,
}

impl FloatGauge {
    fn new(name: &str) -> Self {
        FloatGauge {
            name: name.to_string(),
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the level (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the level to `v` if `v` is greater (no-op while disabled).
    #[inline]
    pub fn set_max(&self, v: f64) {
        if crate::enabled() {
            self.bits.fetch_max(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Drop guard of [`Histogram::start_timer`]: records the elapsed
/// nanoseconds between construction and drop.
#[derive(Debug)]
pub struct HistogramTimer {
    histogram: &'static Histogram,
    started: Option<std::time::Instant>,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            self.histogram.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Bucket count: one for zero plus one per power of two up to `2^63`.
const BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. Recording is two relaxed atomic adds plus an atomic
/// max — no locks, no allocation — so it is safe in simulator hot loops.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(name: &str) -> Self {
        Histogram {
            name: name.to_string(),
            buckets: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(BUCKETS)
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bucket index for a sample.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Starts a wall-clock timer whose elapsed nanoseconds are recorded
    /// into this histogram when the guard drops. While telemetry is
    /// disabled the guard holds no clock and drops for free, preserving
    /// the near-zero disabled-path cost the overhead bench enforces.
    #[inline]
    pub fn start_timer(&'static self) -> HistogramTimer {
        HistogramTimer {
            histogram: self,
            started: crate::enabled().then(std::time::Instant::now),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (nearest-rank over buckets), clamped to the recorded maximum.
    /// Returns 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max());
            }
        }
        self.max()
    }

    /// Point-in-time copy for rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// `(log₂ bucket index, count)` for non-empty buckets.
    pub buckets: Vec<(u8, u64)>,
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, level)` per float gauge.
    pub float_gauges: Vec<(String, f64)>,
    /// One snapshot per histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` when no metric has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0)
            && self.float_gauges.iter().all(|(_, v)| *v == 0.0)
            && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Name-keyed store of every metric in the process.
///
/// Metrics are allocated once and leaked to `'static`, so hot paths hold
/// plain references (the [`crate::counter!`]-family macros cache the
/// lookup per call site).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    float_gauges: Mutex<BTreeMap<String, &'static FloatGauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn intern<T>(
    map: &Mutex<BTreeMap<String, &'static T>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> &'static T {
    let mut map = map.lock().expect("metric registry poisoned");
    if let Some(existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    map.insert(name.to_string(), leaked);
    leaked
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name, || Counter::new(name))
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name, || Gauge::new(name))
    }

    /// The float gauge registered under `name` (created on first use).
    pub fn float_gauge(&self, name: &str) -> &'static FloatGauge {
        intern(&self.float_gauges, name, || FloatGauge::new(name))
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name, || Histogram::new(name))
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metric registry poisoned")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metric registry poisoned")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            float_gauges: self
                .float_gauges
                .lock()
                .expect("metric registry poisoned")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metric registry poisoned")
                .values()
                .map(|h| h.snapshot())
                .collect(),
        }
    }

    /// Zeroes every registered metric (registration survives).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            g.reset();
        }
        for g in self
            .float_gauges
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let h = Histogram::new("t.hist");
        with_enabled(|| {
            for v in [0u64, 1, 1, 2, 3, 8, 100] {
                h.record(v);
            }
        });
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 115);
        assert_eq!(h.max(), 100);
        // Median sample is 2 → bucket [2,4) → upper bound 3.
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.percentile(0.0), 0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets.iter().map(|(_, n)| n).sum::<u64>(), 7);
    }

    #[test]
    fn timer_records_only_while_enabled() {
        let h = crate::registry().histogram("t.timer");
        let before = h.count();
        {
            let _t = h.start_timer(); // disabled: holds no clock
        }
        assert_eq!(h.count(), before);
        with_enabled(|| {
            let _t = h.start_timer();
        });
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn percentile_clamps_to_max() {
        let h = Histogram::new("t.clamp");
        with_enabled(|| h.record(5));
        // Bucket upper bound would be 7; the recorded max is tighter.
        assert_eq!(h.percentile(0.99), 5);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new("t.empty");
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn gauges_and_counters_roundtrip() {
        with_enabled(|| {
            let c = crate::registry().counter("t.counter");
            c.reset();
            c.inc();
            c.add(4);
            assert_eq!(c.get(), 5);

            let g = crate::registry().gauge("t.gauge");
            g.set(7);
            g.add(-3);
            assert_eq!(g.get(), 4);

            let f = crate::registry().float_gauge("t.fgauge");
            f.set(1.5);
            f.set_max(0.5);
            assert_eq!(f.get(), 1.5);
            f.set_max(2.5);
            assert_eq!(f.get(), 2.5);
        });
    }

    #[test]
    fn snapshot_sorted_and_resettable() {
        let r = Registry::new();
        with_enabled(|| {
            r.counter("b").inc();
            r.counter("a").add(2);
            r.histogram("h").record(9);
        });
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.counter("a"), Some(2));
        assert!(!snap.is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
