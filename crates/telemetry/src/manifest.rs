//! Run manifests: who ran what, with which parameters, and how long each
//! phase took.
//!
//! A [`RunManifest`] is the provenance record written next to every bench
//! artifact: experiment name, topology and its `(n, k, h)`-style
//! parameters, the RNG seed, `git describe` of the working tree, and
//! per-phase elapsed time aggregated from drained spans. It makes every
//! `fig*`/`table*` output attributable to an exact configuration instead
//! of hard-coded unlabeled values.

use crate::sink::PhaseAgg;
use crate::{HistogramSnapshot, SpanEvent};
use serde::Value;
use std::path::Path;

/// Provenance + timing record for one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Experiment name (e.g. `fig6_throughput`).
    pub experiment: String,
    /// Topology description(s), when one applies to the whole run.
    pub topologies: Vec<String>,
    /// Named parameters in insertion order (`n`, `k`, `h`, …).
    pub params: Vec<(String, String)>,
    /// RNG seed driving the run, when randomness is involved.
    pub seed: Option<u64>,
    /// `git describe --always --dirty` of the tree that produced the run.
    pub git_describe: String,
    /// Wall-clock of manifest creation, Unix milliseconds.
    pub created_unix_ms: u64,
    /// Per-phase elapsed time (from [`crate::aggregate_phases`]).
    pub phases: Vec<PhaseAgg>,
    /// End-to-end wall time of the run in nanoseconds (absent when the
    /// driver never called [`RunManifest::wall_ns`]).
    pub wall_ns: Option<u64>,
    /// Memory accounting sampled at the end of the run (absent when
    /// [`RunManifest::measure_memory`] was never called).
    pub memory: Option<MemoryStats>,
    /// Histogram snapshots captured at the end of the run (empty when
    /// [`RunManifest::capture_histograms`] was never called). These are
    /// process-level: drivers that run several experiments in one
    /// process record the same registry state into each manifest.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Memory figures recorded in a manifest: the process peak RSS plus the
/// byte-denominated allocation gauges live in the metric registry at
/// sampling time (e.g. `fib.table_bytes`).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStats {
    /// Peak resident set size in bytes ([`crate::peak_rss_bytes`];
    /// `None` — serialized as JSON `null` — when the platform does not
    /// expose it).
    pub peak_rss_bytes: Option<u64>,
    /// `(name, level)` for every registered gauge whose name ends in
    /// `_bytes` — the stack's convention for allocation gauges.
    pub alloc_gauges: Vec<(String, i64)>,
}

impl RunManifest {
    /// Creates a manifest stamped with the current time and the working
    /// tree's `git describe` (`"unknown"` outside a git checkout).
    pub fn new(experiment: impl Into<String>) -> Self {
        RunManifest {
            experiment: experiment.into(),
            topologies: Vec::new(),
            params: Vec::new(),
            seed: None,
            git_describe: git_describe(),
            created_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            phases: Vec::new(),
            wall_ns: None,
            memory: None,
            histograms: Vec::new(),
        }
    }

    /// Records a topology the run exercised.
    pub fn topology(&mut self, name: impl Into<String>) -> &mut Self {
        self.topologies.push(name.into());
        self
    }

    /// Records a named parameter (kept in insertion order).
    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Records the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = Some(seed);
        self
    }

    /// Fills [`RunManifest::phases`] from raw span events.
    pub fn set_phases(&mut self, spans: &[SpanEvent]) -> &mut Self {
        self.phases = crate::aggregate_phases(spans);
        self
    }

    /// Records the run's end-to-end wall time.
    pub fn wall_ns(&mut self, ns: u64) -> &mut Self {
        self.wall_ns = Some(ns);
        self
    }

    /// Snapshots every non-empty registry histogram into the manifest —
    /// the quantile record the perf-baseline store diffs against. Call
    /// once, after the run's work is done.
    pub fn capture_histograms(&mut self) -> &mut Self {
        self.histograms = crate::registry()
            .snapshot()
            .histograms
            .into_iter()
            .filter(|h| h.count > 0)
            .collect();
        self
    }

    /// Samples the process peak RSS and the current `*_bytes` allocation
    /// gauges into [`RunManifest::memory`]. Call once, after the run's
    /// work is done — the peak is a process-lifetime high-water mark.
    pub fn measure_memory(&mut self) -> &mut Self {
        let snap = crate::registry().snapshot();
        self.memory = Some(MemoryStats {
            peak_rss_bytes: crate::peak_rss_bytes(),
            alloc_gauges: snap
                .gauges
                .into_iter()
                .filter(|(name, _)| name.ends_with("_bytes"))
                .collect(),
        });
        self
    }

    /// One-line human-readable configuration echo, e.g.
    /// `config: fig6_throughput n=4 k=2 h=2 seed=1926 git=0bb07d7`.
    pub fn config_line(&self) -> String {
        let mut parts = vec![format!("config: {}", self.experiment)];
        for (k, v) in &self.params {
            parts.push(format!("{k}={v}"));
        }
        match self.seed {
            Some(s) => parts.push(format!("seed={s}")),
            None => parts.push("seed=none".to_string()),
        }
        parts.push(format!("git={}", self.git_describe));
        parts.join(" ")
    }

    /// Renders the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut entries = vec![
            (
                "experiment".to_string(),
                Value::Str(self.experiment.clone()),
            ),
            (
                "topologies".to_string(),
                Value::Seq(
                    self.topologies
                        .iter()
                        .map(|t| Value::Str(t.clone()))
                        .collect(),
                ),
            ),
            (
                "params".to_string(),
                Value::Map(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "seed".to_string(),
                self.seed.map_or(Value::Null, Value::U64),
            ),
            (
                "git_describe".to_string(),
                Value::Str(self.git_describe.clone()),
            ),
            (
                "created_unix_ms".to_string(),
                Value::U64(self.created_unix_ms),
            ),
            (
                "phases".to_string(),
                Value::Seq(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::Map(vec![
                                ("name".to_string(), Value::Str(p.name.clone())),
                                ("count".to_string(), Value::U64(p.count)),
                                ("total_ns".to_string(), Value::U64(p.total_ns)),
                                ("max_ns".to_string(), Value::U64(p.max_ns)),
                                ("threads".to_string(), Value::U64(u64::from(p.threads))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(wall) = self.wall_ns {
            entries.push(("wall_ns".to_string(), Value::U64(wall)));
        }
        if let Some(mem) = &self.memory {
            entries.push((
                "memory".to_string(),
                Value::Map(vec![
                    (
                        "peak_rss_bytes".to_string(),
                        mem.peak_rss_bytes.map_or(Value::Null, Value::U64),
                    ),
                    (
                        "alloc_gauges".to_string(),
                        Value::Map(
                            mem.alloc_gauges
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::I64(*v)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if !self.histograms.is_empty() {
            entries.push((
                "histograms".to_string(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|h| {
                            (
                                h.name.clone(),
                                Value::Map(vec![
                                    ("count".to_string(), Value::U64(h.count)),
                                    ("sum".to_string(), Value::U64(h.sum)),
                                    ("mean".to_string(), Value::F64(h.mean)),
                                    ("p50".to_string(), Value::U64(h.p50)),
                                    ("p90".to_string(), Value::U64(h.p90)),
                                    ("p99".to_string(), Value::U64(h.p99)),
                                    ("p999".to_string(), Value::U64(h.p999)),
                                    ("p9999".to_string(), Value::U64(h.p9999)),
                                    ("max".to_string(), Value::U64(h.max)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        serde_json::to_string_pretty(&Value::Map(entries)).expect("render manifest")
    }

    /// Writes the manifest as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// `git describe --always --dirty` for the current directory, or
/// `"unknown"` when git or the repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("fig_test");
        m.topology("ABCCC(4,2,2)")
            .param("n", 4)
            .param("k", 2)
            .param("h", 2)
            .seed(1926);
        m.set_phases(&[SpanEvent {
            name: "phase.build",
            thread: 0,
            id: 1,
            parent: 0,
            start_ns: 0,
            dur_ns: 123,
        }]);
        m
    }

    #[test]
    fn config_line_names_params_and_seed() {
        let line = sample().config_line();
        assert!(line.starts_with("config: fig_test"));
        assert!(line.contains("n=4"));
        assert!(line.contains("k=2"));
        assert!(line.contains("h=2"));
        assert!(line.contains("seed=1926"));
        assert!(line.contains("git="));
    }

    #[test]
    fn seedless_runs_say_so() {
        let mut m = RunManifest::new("fig_pure");
        m.param("n", 4);
        assert!(m.config_line().contains("seed=none"));
    }

    #[test]
    fn json_roundtrips_key_fields() {
        let json = sample().to_json();
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Map(entries) = v else {
            panic!("manifest must be an object");
        };
        let get = |key: &str| {
            entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {key}"))
        };
        assert_eq!(get("experiment"), Value::Str("fig_test".into()));
        assert_eq!(get("seed"), Value::U64(1926));
        match get("params") {
            Value::Map(p) => assert_eq!(p.len(), 3),
            other => panic!("params not an object: {other:?}"),
        }
        match get("phases") {
            Value::Seq(p) => assert_eq!(p.len(), 1),
            other => panic!("phases not an array: {other:?}"),
        }
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn memory_section_records_peak_and_byte_gauges() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        crate::registry().gauge("manifest_test.table_bytes").set(64);
        crate::registry().gauge("manifest_test.not_memory").set(9);
        crate::set_enabled(false);
        let mut m = sample();
        assert!(!m.to_json().contains("\"memory\""));
        m.measure_memory();
        let mem = m.memory.as_ref().expect("memory measured");
        assert!(mem
            .alloc_gauges
            .iter()
            .any(|(k, v)| k == "manifest_test.table_bytes" && *v == 64));
        assert!(mem.alloc_gauges.iter().all(|(k, _)| k.ends_with("_bytes")));
        let json = m.to_json();
        assert!(json.contains("\"peak_rss_bytes\""));
        assert!(json.contains("\"manifest_test.table_bytes\""));
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("dcn_telemetry_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        sample().write(&path).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("\"fig_test\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_describe_never_empty() {
        assert!(!git_describe().is_empty());
    }
}
