//! # dcn-telemetry — zero-dependency observability for the ABCCC stack
//!
//! Lightweight spans, counters, gauges and log₂ histograms, plus sinks
//! that turn them into human-readable summaries, JSON-lines event streams
//! and per-experiment run manifests. Everything is `std`-only (the JSON
//! sinks go through the vendored `serde`/`serde_json` stand-ins — see
//! `vendor/README.md`).
//!
//! ## Model
//!
//! * **Spans** ([`SpanGuard`], [`span!`]) — RAII wall-clock timers with
//!   causal structure: each finished span records
//!   `(name, thread, id, parent, start, duration)` into a per-thread
//!   buffer that is drained into a global registry either when it fills
//!   or when the thread exits, so worker threads (e.g. the distance
//!   engine's stealing workers) never contend on a lock per span. The
//!   parent link is the innermost open span on the same thread, or an
//!   explicit id via [`SpanGuard::enter_under`] when work crosses
//!   threads.
//! * **Metrics** ([`Counter`], [`Gauge`], [`FloatGauge`], [`Histogram`],
//!   via [`counter!`] and friends) — process-global atomics registered by
//!   name on first use. Histograms are log-bucketed HDR style — every
//!   power-of-two octave split into 16 linear sub-buckets, bounding
//!   quantile error by [`MAX_RELATIVE_ERROR`] — with p50/p90/p99/p999/
//!   p9999 extraction; recording is a couple of atomic adds and never
//!   allocates. [`HdrHistogram`] is the owned, merge-order-invariant
//!   variant for deterministic per-run statistics.
//! * **Sinks** ([`render_summary`], [`write_jsonl`], [`RunManifest`],
//!   [`chrome_trace_json`], [`folded_stacks`]) — pull-based: nothing is
//!   written anywhere until a driver (the CLI's `--trace`/
//!   `--metrics-out`/`--trace-out`, or a bench binary's [`RunManifest`])
//!   drains the registry.
//! * **Perf sentinel** ([`PerfRecord`], [`diff`]) — condensed manifests
//!   stored under `bench_results/baselines/` and compared with
//!   noise-aware thresholds by `abccc-cli perf record|diff`.
//!
//! ## Cost contract
//!
//! Telemetry is **off** until [`set_enabled`]`(true)`. While disabled,
//! a span guard or counter increment is one relaxed atomic load and a
//! predictable branch — a few nanoseconds, verified by the
//! `telemetry_overhead` micro-bench in `crates/bench`. With the `noop`
//! cargo feature the load disappears too and everything compiles to
//! nothing; `scripts/check.sh` builds both configurations.
//!
//! ## Example
//!
//! ```
//! # #[cfg(not(feature = "noop"))] {
//! dcn_telemetry::set_enabled(true);
//! {
//!     let _span = dcn_telemetry::span!("demo.work");
//!     dcn_telemetry::counter!("demo.items").add(3);
//!     dcn_telemetry::histogram!("demo.size_bytes").record(1500);
//! }
//! let spans = dcn_telemetry::drain_spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(dcn_telemetry::counter!("demo.items").get(), 3);
//! dcn_telemetry::set_enabled(false);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod manifest;
mod memory;
mod metrics;
mod sink;
mod span;
mod trace;

pub use baseline::{
    diff, load_baselines, save_baselines, DiffThresholds, HistQuantiles, PerfRecord, PerfVerdict,
    Regression,
};
pub use manifest::{git_describe, MemoryStats, RunManifest};
pub use memory::{current_rss_bytes, peak_rss_bytes};
pub use metrics::{
    bucket_bounds, Counter, FloatGauge, Gauge, HdrHistogram, Histogram, HistogramSnapshot,
    HistogramTimer, MetricsSnapshot, Registry, MAX_RELATIVE_ERROR, SUB_COUNT,
};
pub use sink::{aggregate_phases, events_to_jsonl, render_summary, write_jsonl, PhaseAgg};
pub use span::{drain_spans, SpanEvent, SpanGuard};
pub use trace::{chrome_trace_json, folded_stacks};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Global recording switch (off at startup).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns recording on or off process-wide.
///
/// While off, guards and metric operations cost a single relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently recording.
///
/// Always `false` when the crate is built with the `noop` feature.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// The process-wide metric registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Clears every recorded span and zeroes every registered metric.
///
/// Intended for tests and for bench binaries that emit several
/// independent experiment sections from one process.
pub fn reset() {
    span::clear_spans();
    registry().reset();
}

/// Monotonic nanoseconds since the first telemetry call in this process.
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Opens a named RAII span; timing stops when the guard drops.
///
/// ```
/// let _guard = dcn_telemetry::span!("flowsim.run");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Returns the named process-global [`Counter`], caching the registry
/// lookup in a per-call-site static (one atomic load after first use).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Returns the named process-global [`Gauge`] (cached like [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Returns the named process-global [`FloatGauge`] (cached like
/// [`counter!`]).
#[macro_export]
macro_rules! float_gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::FloatGauge> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().float_gauge($name))
    }};
}

/// Returns the named process-global [`Histogram`] (cached like
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Serializes unit tests that toggle the process-global enabled flag or
/// drain the shared span buffer.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _lock = test_guard();
        set_enabled(false);
        {
            let _g = span!("lib.disabled");
            counter!("lib.disabled.count").inc();
        }
        assert_eq!(counter!("lib.disabled.count").get(), 0);
        assert!(drain_spans().iter().all(|s| s.name != "lib.disabled"));
    }

    #[test]
    fn macro_caches_resolve_to_same_metric() {
        let a = registry().counter("lib.same");
        let b = registry().counter("lib.same");
        assert!(std::ptr::eq(a, b));
    }
}
