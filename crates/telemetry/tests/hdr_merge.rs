//! The HDR histogram's load-bearing contracts: merging is a lossless,
//! order-independent fold (so per-shard histograms can be combined in any
//! grouping and still produce byte-identical snapshots), and every
//! reported quantile brackets the exact nearest-rank value from above by
//! at most [`MAX_RELATIVE_ERROR`].

use dcn_telemetry::{HdrHistogram, MAX_RELATIVE_ERROR};
use proptest::prelude::*;

/// Draws `count` values spanning the full dynamic range from a seeded
/// stream (the vendored proptest stand-in has no collection strategies).
fn sample_values(seed: u64, count: usize) -> Vec<u64> {
    use rand::{Rng, RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            // Log-uniform: pick a bit width, then a value below it, so
            // small exact buckets and wide high octaves are both hit.
            let bits = rng.gen_range(1..=64u32);
            let v = rng.next_u64();
            if bits == 64 {
                v
            } else {
                v & ((1u64 << bits) - 1)
            }
        })
        .collect()
}

fn record_all(values: &[u64]) -> HdrHistogram {
    let mut h = HdrHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact nearest-rank quantile over the raw samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const QS: [f64; 5] = [0.5, 0.9, 0.99, 0.999, 0.9999];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any way of sharding the sample stream and any merge order yields
    /// the same snapshot as recording everything into one histogram.
    #[test]
    fn merge_is_order_and_grouping_invariant(
        seed in any::<u64>(),
        count in 1usize..400,
        shards in 1usize..8,
    ) {
        let values = sample_values(seed, count);
        let whole = record_all(&values);

        // Shard round-robin, then merge left-to-right…
        let parts: Vec<HdrHistogram> = (0..shards)
            .map(|s| {
                let vs: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(s)
                    .step_by(shards)
                    .collect();
                record_all(&vs)
            })
            .collect();
        let mut ltr = HdrHistogram::new();
        for p in &parts {
            ltr.merge(p);
        }
        // …and right-to-left.
        let mut rtl = HdrHistogram::new();
        for p in parts.iter().rev() {
            rtl.merge(p);
        }

        for h in [&ltr, &rtl] {
            prop_assert_eq!(h.count(), whole.count());
            prop_assert_eq!(h.sum(), whole.sum());
            prop_assert_eq!(h.max(), whole.max());
            for q in QS {
                prop_assert_eq!(h.percentile(q), whole.percentile(q), "q={}", q);
            }
            prop_assert_eq!(h.snapshot("x"), whole.snapshot("x"));
        }
    }

    /// Every reported quantile is an upper bound on the exact
    /// nearest-rank value, within the bucket scheme's relative error.
    #[test]
    fn quantiles_bracket_exact_within_bound(
        seed in any::<u64>(),
        count in 1usize..400,
    ) {
        let values = sample_values(seed, count);
        let h = record_all(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in QS {
            let exact = exact_quantile(&sorted, q);
            let got = h.percentile(q);
            prop_assert!(got >= exact, "q={}: reported {} < exact {}", q, got, exact);
            prop_assert!(
                got as f64 <= exact as f64 * (1.0 + MAX_RELATIVE_ERROR) + 1.0,
                "q={}: reported {} exceeds bound over exact {}",
                q, got, exact
            );
        }
    }
}
