//! Incremental expansion — the headline property of ABCCC.
//!
//! Growing `ABCCC(n, k, h)` to `ABCCC(n, k+1, h)` requires **adding
//! components only**: new servers, new switches and new cables. Existing
//! cables are never re-plugged and existing servers never gain NICs (their
//! spare, already-purchased ports may be newly cabled). This contrasts with
//! BCube, where growing the order retrofits a NIC into *every* existing
//! server, and with fat-trees, which must be rebuilt for a bigger radix.
//!
//! The old network embeds into the grown one as the labels whose new
//! most-significant digit is 0; [`verify_embedding`] checks, link by link,
//! that the embedding is exact.

use crate::{Abccc, AbcccParams, ServerAddr};
use netgraph::NetworkError;
use serde::{Deserialize, Serialize};

/// The bill of materials and legacy impact of one expansion step
/// (`k → k + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpansionStep {
    /// Parameters before the step.
    pub from: AbcccParams,
    /// Parameters after the step.
    pub to: AbcccParams,
    /// Servers purchased.
    pub new_servers: u64,
    /// Crossbar switches purchased.
    pub new_crossbar_switches: u64,
    /// Cube-level switches purchased.
    pub new_level_switches: u64,
    /// Cables pulled.
    pub new_cables: u64,
    /// Spare NIC ports on *existing* servers that get a new cable
    /// (allowed: the port was already there).
    pub legacy_server_ports_newly_used: u64,
    /// Free ports on *existing* crossbar switches that get a new cable.
    pub legacy_crossbar_ports_newly_used: u64,
    /// NICs that must be retrofitted into existing servers.
    /// **Always 0 for ABCCC** — this is the cost BCube pays.
    pub legacy_nics_added: u64,
    /// Existing cables that must be unplugged and rewired.
    /// **Always 0 for ABCCC.**
    pub legacy_cables_rewired: u64,
}

impl ExpansionStep {
    /// Plans the growth of `from` by one order.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation if the grown network exceeds the
    /// supported address space.
    pub fn grow_order(from: AbcccParams) -> Result<Self, NetworkError> {
        let to = from.grown()?;
        let m = from.group_size();
        let m2 = to.group_size();
        debug_assert!(m2 == m || m2 == m + 1);

        let (legacy_server_ports, legacy_crossbar_ports) = if m2 == m {
            // New level k+1 is owned by an existing position: each legacy
            // label's owner server cables up to a new level switch.
            (from.label_space(), 0)
        } else if m == 1 {
            // Groups grow 1 → 2: crossbars appear; each legacy server
            // cables its spare port to its (new) crossbar.
            (from.label_space(), 0)
        } else {
            // A new position joins each legacy group through the legacy
            // crossbar's free port.
            (0, from.label_space())
        };

        Ok(ExpansionStep {
            from,
            to,
            new_servers: to.server_count() - from.server_count(),
            new_crossbar_switches: to.crossbar_count() - from.crossbar_count(),
            new_level_switches: to.level_switch_count() - from.level_switch_count(),
            new_cables: to.wire_count() - from.wire_count(),
            legacy_server_ports_newly_used: legacy_server_ports,
            legacy_crossbar_ports_newly_used: legacy_crossbar_ports,
            legacy_nics_added: 0,
            legacy_cables_rewired: 0,
        })
    }

    /// Plans a multi-step growth schedule of `steps` consecutive orders.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from intermediate parameterizations.
    pub fn schedule(from: AbcccParams, steps: u32) -> Result<Vec<ExpansionStep>, NetworkError> {
        let mut plan = Vec::with_capacity(steps as usize);
        let mut cur = from;
        for _ in 0..steps {
            let step = ExpansionStep::grow_order(cur)?;
            cur = step.to;
            plan.push(step);
        }
        Ok(plan)
    }

    /// `true` iff the step touches no legacy hardware beyond cabling spare
    /// ports — the ABCCC expandability claim.
    pub fn legacy_untouched(&self) -> bool {
        self.legacy_nics_added == 0 && self.legacy_cables_rewired == 0
    }
}

/// Maps an old server address into the grown network (new most-significant
/// digit 0). The numeric label index and position are unchanged.
pub fn embed_server(addr: ServerAddr) -> ServerAddr {
    addr
}

/// Verifies, on materialized networks, that `old` embeds exactly into
/// `new`: every old cable is present in the grown network, no legacy server
/// grew beyond the planned port usage, and the bill of materials matches.
///
/// # Errors
///
/// Returns a description of the first discrepancy found.
pub fn verify_embedding(old: &Abccc, new: &Abccc) -> Result<(), String> {
    use crate::SwitchAddr;
    use netgraph::Topology;

    let po = *old.params();
    let pn = *new.params();
    if pn.n() != po.n() || pn.h() != po.h() || pn.k() != po.k() + 1 {
        return Err(format!("{pn} is not {po} grown by one order"));
    }
    let step = ExpansionStep::grow_order(po).map_err(|e| e.to_string())?;

    // Node mapping old → new.
    let map_node = |id: netgraph::NodeId| -> netgraph::NodeId {
        let flat = u64::from(id.0);
        if flat < po.server_count() {
            // Same label index (leading digit 0) and position.
            let a = ServerAddr::from_node_id(&po, id);
            ServerAddr::new(&pn, a.label, a.pos).node_id(&pn)
        } else {
            match SwitchAddr::from_node_id(&po, id) {
                SwitchAddr::Crossbar(l) => SwitchAddr::Crossbar(l).node_id(&pn),
                // Rest indices are numerically identical under a leading 0.
                SwitchAddr::Level { level, rest } => SwitchAddr::Level { level, rest }.node_id(&pn),
            }
        }
    };

    for link in old.network().links() {
        let (a, b) = (map_node(link.a), map_node(link.b));
        if new.network().find_link(a, b).is_none() {
            return Err(format!(
                "legacy cable {} – {} missing in the grown network",
                link.a, link.b
            ));
        }
    }

    // Legacy servers keep their old cables and gain at most the planned
    // extra ports.
    let mut extra_ports = 0u64;
    for sraw in 0..po.server_count() {
        let id = netgraph::NodeId(sraw as u32);
        let d_old = old.network().degree(id) as u64;
        let d_new = new.network().degree(map_node(id)) as u64;
        if d_new < d_old {
            return Err(format!(
                "legacy server {id} lost cables ({d_old} -> {d_new})"
            ));
        }
        if d_new - d_old > 1 {
            return Err(format!(
                "legacy server {id} gained {} cables (max 1 allowed)",
                d_new - d_old
            ));
        }
        extra_ports += d_new - d_old;
    }
    if extra_ports != step.legacy_server_ports_newly_used {
        return Err(format!(
            "legacy server ports newly used: counted {extra_ports}, planned {}",
            step.legacy_server_ports_newly_used
        ));
    }

    // Bill of materials.
    let got_new_cables = new.network().link_count() as u64 - old.network().link_count() as u64;
    if got_new_cables != step.new_cables {
        return Err(format!(
            "new cables: counted {got_new_cables}, planned {}",
            step.new_cables
        ));
    }
    let got_new_servers = new.network().server_count() as u64 - old.network().server_count() as u64;
    if got_new_servers != step.new_servers {
        return Err(format!(
            "new servers: counted {got_new_servers}, planned {}",
            step.new_servers
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_add_up() {
        let p = AbcccParams::new(4, 2, 3).unwrap();
        let s = ExpansionStep::grow_order(p).unwrap();
        assert_eq!(s.to.k(), 3);
        assert_eq!(s.new_servers, s.to.server_count() - p.server_count());
        assert!(s.legacy_untouched());
    }

    #[test]
    fn embedding_same_group_size() {
        // h=3: L 2→3, m stays ceil(2/2)=1 → wait, use L 3→4: m=2→2.
        let p = AbcccParams::new(2, 2, 3).unwrap();
        assert_eq!(p.group_size(), 2);
        let g = p.grown().unwrap();
        assert_eq!(g.group_size(), 2);
        let old = Abccc::new(p).unwrap();
        let new = Abccc::new(g).unwrap();
        verify_embedding(&old, &new).unwrap();
        let s = ExpansionStep::grow_order(p).unwrap();
        assert_eq!(s.legacy_server_ports_newly_used, p.label_space());
        assert_eq!(s.legacy_crossbar_ports_newly_used, 0);
    }

    #[test]
    fn embedding_group_grows() {
        // h=2: m = k+1 grows every step.
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let g = p.grown().unwrap();
        assert_eq!(g.group_size(), p.group_size() + 1);
        let old = Abccc::new(p).unwrap();
        let new = Abccc::new(g).unwrap();
        verify_embedding(&old, &new).unwrap();
        let s = ExpansionStep::grow_order(p).unwrap();
        assert_eq!(s.legacy_server_ports_newly_used, 0);
        assert_eq!(s.legacy_crossbar_ports_newly_used, p.label_space());
    }

    #[test]
    fn embedding_from_bcube_endpoint() {
        // m 1 → 2: crossbars appear, legacy spare ports get cabled.
        let p = AbcccParams::new(2, 1, 3).unwrap();
        assert_eq!(p.group_size(), 1);
        let g = p.grown().unwrap();
        assert_eq!(g.group_size(), 2);
        let old = Abccc::new(p).unwrap();
        let new = Abccc::new(g).unwrap();
        verify_embedding(&old, &new).unwrap();
        let s = ExpansionStep::grow_order(p).unwrap();
        assert_eq!(s.legacy_server_ports_newly_used, p.label_space());
        assert_eq!(s.new_crossbar_switches, g.label_space());
    }

    #[test]
    fn schedule_chains() {
        let p = AbcccParams::new(3, 0, 2).unwrap();
        let plan = ExpansionStep::schedule(p, 3).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].from, p);
        for w in plan.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(plan[2].to.k(), 3);
        assert!(plan.iter().all(ExpansionStep::legacy_untouched));
    }

    #[test]
    fn wrong_growth_rejected() {
        let a = Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap();
        let b = Abccc::new(AbcccParams::new(2, 3, 2).unwrap()).unwrap();
        assert!(verify_embedding(&a, &b).is_err());
    }
}
