//! Materialization of the ABCCC physical network.

use crate::{AbcccParams, CubeLabel, ServerAddr, SwitchAddr};
use netgraph::{FaultMask, Network, NetworkError, NodeId, Route, RouteError, Topology};

/// Hard guard on materialized size (nodes); formulas and routing work far
/// beyond this, but building an explicit graph above it is a mistake.
pub const MAX_MATERIALIZED_NODES: u64 = 8_000_000;

/// A fully materialized `ABCCC(n, k, h)` network.
///
/// The physical graph follows the id layout of [`crate::address`]: servers
/// first, then crossbar switches, then level switches, so `NodeId`s can be
/// translated to addresses and back in O(1).
///
/// ```
/// use abccc::{Abccc, AbcccParams};
/// use netgraph::Topology;
///
/// let topo = Abccc::new(AbcccParams::new(4, 1, 2).unwrap()).unwrap();
/// assert_eq!(topo.network().server_count(), 32); // m=2, n^2=16
/// let r = topo.route(netgraph::NodeId(0), netgraph::NodeId(31)).unwrap();
/// r.validate(topo.network(), None).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Abccc {
    params: AbcccParams,
    net: Network,
}

impl Abccc {
    /// Builds the network with unit link capacity (1 Gbit/s in simulator
    /// units).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] if the node count exceeds
    /// [`MAX_MATERIALIZED_NODES`].
    pub fn new(params: AbcccParams) -> Result<Self, NetworkError> {
        Self::with_link_capacity(params, 1.0)
    }

    /// Builds the network with the given uniform link capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] if the node count exceeds
    /// [`MAX_MATERIALIZED_NODES`], or [`NetworkError::InvalidParameter`]
    /// if `capacity` is not positive and finite.
    pub fn with_link_capacity(params: AbcccParams, capacity: f64) -> Result<Self, NetworkError> {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(NetworkError::InvalidParameter {
                name: "capacity",
                reason: format!("must be positive and finite, got {capacity}"),
            });
        }
        let nodes = params.server_count() + params.switch_count();
        if nodes > MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(nodes),
                limit: u128::from(MAX_MATERIALIZED_NODES),
            });
        }

        // Stream cables straight into the network's compact store — no
        // intermediate `Vec<Link>` is ever built. Emission order (crossbar
        // cables first, then level cables) is the port-stability contract
        // every compiled FIB depends on; do not reorder.
        let m = params.group_size();
        let net = Network::from_uniform_stream(
            params.server_count() as usize,
            params.switch_count() as usize,
            params.wire_count() as usize,
            capacity,
            |sink| {
                // Crossbar cables: each group member to its crossbar.
                if m > 1 {
                    for raw in 0..params.label_space() {
                        let label = CubeLabel(raw);
                        let cb = SwitchAddr::Crossbar(label).node_id(&params);
                        for j in 0..m {
                            let sv = ServerAddr::new(&params, label, j).node_id(&params);
                            sink(sv, cb);
                        }
                    }
                }
                // Level cables: every server of the owning position to its
                // level switch.
                for level in 0..params.levels() {
                    let owner = params.owner(level);
                    for rest in 0..params.rest_space() {
                        let sw = SwitchAddr::Level { level, rest }.node_id(&params);
                        for d in 0..params.n() {
                            let label = CubeLabel::from_rest(&params, level, rest, d);
                            let sv = ServerAddr::new(&params, label, owner).node_id(&params);
                            sink(sv, sw);
                        }
                    }
                }
            },
        );
        debug_assert_eq!(net.link_count() as u64, params.wire_count());
        Ok(Abccc { params, net })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &AbcccParams {
        &self.params
    }

    /// Address of server node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a server id.
    pub fn server_addr(&self, id: NodeId) -> ServerAddr {
        ServerAddr::from_node_id(&self.params, id)
    }

    /// Node id of server address `addr`.
    pub fn server_id(&self, addr: ServerAddr) -> NodeId {
        addr.node_id(&self.params)
    }

    /// Iterator over all server addresses.
    pub fn server_addrs(&self) -> impl Iterator<Item = ServerAddr> + '_ {
        let p = self.params;
        (0..p.server_count()).map(move |raw| ServerAddr::from_node_id(&p, NodeId(raw as u32)))
    }
}

impl Topology for Abccc {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        crate::routing::DigitRouter::shortest().route_ids(&self.params, src, dst)
    }

    fn parallel_routes(
        &self,
        src: NodeId,
        dst: NodeId,
        want: usize,
    ) -> Result<Vec<Route>, RouteError> {
        if u64::from(src.0) >= self.params.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= self.params.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        if src == dst {
            return Ok(vec![Route::new(vec![src])]);
        }
        Ok(crate::parallel::parallel_routes(
            &self.params,
            self.server_addr(src),
            self.server_addr(dst),
            want,
        ))
    }

    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: &FaultMask,
    ) -> Result<Route, RouteError> {
        use crate::router::Router;
        crate::fault::ResilientRouter::default()
            .route(self, src, dst, Some(mask))
            .map(|o| o.route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for (n, k, h) in [(2, 1, 2), (3, 2, 2), (4, 1, 3), (2, 3, 3), (4, 2, 4)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let t = Abccc::new(p).unwrap();
            assert_eq!(t.network().server_count() as u64, p.server_count(), "{p}");
            assert_eq!(t.network().switch_count() as u64, p.switch_count(), "{p}");
            assert_eq!(t.network().link_count() as u64, p.wire_count(), "{p}");
            assert!(t.network().is_servers_first());
        }
    }

    #[test]
    fn server_degrees_match_ports_used() {
        let p = AbcccParams::new(3, 2, 3).unwrap(); // L=3, m=2, ragged
        let t = Abccc::new(p).unwrap();
        for addr in t.server_addrs() {
            let deg = t.network().degree(t.server_id(addr));
            assert_eq!(deg as u32, p.ports_used(addr.pos), "{}", addr.display(&p));
            assert!(deg as u32 <= p.h());
        }
    }

    #[test]
    fn switch_radixes() {
        let p = AbcccParams::new(4, 2, 3).unwrap();
        let t = Abccc::new(p).unwrap();
        for raw in p.server_count()..p.server_count() + p.switch_count() {
            let id = NodeId(raw as u32);
            let deg = t.network().degree(id) as u32;
            match SwitchAddr::from_node_id(&p, id) {
                SwitchAddr::Crossbar(_) => assert_eq!(deg, p.group_size()),
                SwitchAddr::Level { .. } => assert_eq!(deg, p.n()),
            }
        }
    }

    #[test]
    fn bcube_endpoint_has_no_crossbars() {
        let p = AbcccParams::new(3, 1, 3).unwrap(); // h = k+2 → m = 1
        let t = Abccc::new(p).unwrap();
        assert_eq!(p.crossbar_count(), 0);
        assert_eq!(t.network().switch_count() as u64, p.level_switch_count());
        // Every server uses exactly k+1 = 2 ports.
        for s in t.network().server_ids() {
            assert_eq!(t.network().degree(s), 2);
        }
    }

    #[test]
    fn network_is_connected() {
        for (n, k, h) in [(2, 1, 2), (3, 1, 2), (2, 2, 3), (4, 1, 3)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let t = Abccc::new(p).unwrap();
            assert!(
                netgraph::connectivity::servers_connected(t.network(), None),
                "{p} disconnected"
            );
        }
    }

    #[test]
    fn size_guard() {
        // ~14.7M servers: fits u32 ids (params accept it) but exceeds the
        // materialization guard.
        let p = AbcccParams::new(8, 6, 2).unwrap();
        assert!(matches!(Abccc::new(p), Err(NetworkError::TooLarge { .. })));
    }

    #[test]
    fn bad_capacity_rejected() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        assert!(Abccc::with_link_capacity(p, f64::NAN).is_err());
        assert!(Abccc::with_link_capacity(p, -1.0).is_err());
    }
}
