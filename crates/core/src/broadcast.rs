//! One-to-all and one-to-many routing — the GBC3 (journal-version)
//! extension of ABCCC.
//!
//! The broadcast tree follows the structure of the one-to-one routing:
//! from the source, cube digits are corrected in ascending level order, so
//! every label `y` is reached through the label that agrees with the
//! source on `y`'s highest differing level ("prev label"), arriving at the
//! group position that owns that level; the local crossbar then fans the
//! message out to the rest of the group. The union of these deterministic
//! paths is a spanning tree of all servers.

use crate::{AbcccParams, CubeLabel, ServerAddr, SwitchAddr};
use netgraph::{NodeId, RouteError};
use serde::{Deserialize, Serialize};

/// A spanning broadcast tree rooted at a source server.
///
/// `parent[s]` is `None` for the root and for servers outside the tree
/// (only possible in [`one_to_many`] pruned trees); otherwise it holds the
/// parent server and the switch the hop crosses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastTree {
    root: NodeId,
    parent: Vec<Option<(NodeId, NodeId)>>,
    depth: u32,
    members: usize,
}

impl BroadcastTree {
    /// The source server.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent server and connecting switch of `server`, or `None` for the
    /// root / non-members.
    pub fn parent(&self, server: NodeId) -> Option<(NodeId, NodeId)> {
        self.parent[server.index()]
    }

    /// Maximum hop depth of the tree (= broadcast latency in store-and-
    /// forward rounds along the critical path).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of servers in the tree (including the root).
    pub fn member_count(&self) -> usize {
        self.members
    }

    /// `true` if `server` is covered by this tree.
    pub fn contains(&self, server: NodeId) -> bool {
        server == self.root || self.parent[server.index()].is_some()
    }

    /// The hop path from the root to `server` (server nodes only).
    ///
    /// # Panics
    ///
    /// Panics if `server` is not a member.
    pub fn path_to(&self, server: NodeId) -> Vec<NodeId> {
        assert!(self.contains(server), "{server} is not in the tree");
        let mut path = vec![server];
        let mut cur = server;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Validates the tree against the ABCCC parameterization: acyclic,
    /// every edge physically exists, depth is consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self, p: &AbcccParams) -> Result<(), String> {
        let mut seen_depth = 0u32;
        for raw in 0..p.server_count() {
            let id = NodeId(raw as u32);
            if !self.contains(id) {
                continue;
            }
            let path = self.path_to(id); // panics on cycles via stack overflow
            if path.len() > p.server_count() as usize {
                return Err(format!("path to {id} longer than the server count"));
            }
            if path[0] != self.root {
                return Err(format!("path to {id} does not start at the root"));
            }
            seen_depth = seen_depth.max((path.len() - 1) as u32);
            if let Some((parent, via)) = self.parent[id.index()] {
                // The connecting switch must be adjacent to both ends.
                let pa = ServerAddr::from_node_id(p, parent);
                let ca = ServerAddr::from_node_id(p, id);
                let ok = match SwitchAddr::from_node_id(p, via) {
                    SwitchAddr::Crossbar(l) => pa.label == l && ca.label == l,
                    SwitchAddr::Level { level, rest } => {
                        pa.pos == p.owner(level)
                            && ca.pos == p.owner(level)
                            && pa.label.rest_index(p, level) == rest
                            && ca.label.rest_index(p, level) == rest
                    }
                };
                if !ok {
                    return Err(format!("edge {parent} –{via}– {id} is not physical"));
                }
            }
        }
        if seen_depth != self.depth {
            return Err(format!(
                "depth {} but longest path {seen_depth}",
                self.depth
            ));
        }
        Ok(())
    }
}

/// Builds the one-to-all broadcast tree from `src`, covering every server.
///
/// The depth is at most `diameter + 1` and every server receives the
/// message exactly once (verified by [`BroadcastTree::validate`] in the
/// test suite).
///
/// # Errors
///
/// Returns [`RouteError::NotAServer`] if `src` is not a server id.
pub fn one_to_all(p: &AbcccParams, src: NodeId) -> Result<BroadcastTree, RouteError> {
    if u64::from(src.0) >= p.server_count() {
        return Err(RouteError::NotAServer(src));
    }
    let sa = ServerAddr::from_node_id(p, src);
    let m = p.group_size();
    let mut parent: Vec<Option<(NodeId, NodeId)>> = vec![None; p.server_count() as usize];

    // Arrival position of a label: where the message first lands there.
    let arrival = |label: CubeLabel| -> u32 {
        if label == sa.label {
            sa.pos
        } else {
            let max_diff = *sa
                .label
                .differing_levels(p, label)
                .last()
                .expect("labels differ");
            p.owner(max_diff)
        }
    };

    for raw_label in 0..p.label_space() {
        let label = CubeLabel(raw_label);
        let arr = arrival(label);
        // Cube edge into this label (for non-source labels).
        if label != sa.label {
            let max_diff = *sa
                .label
                .differing_levels(p, label)
                .last()
                .expect("labels differ");
            let prev = label.with_digit(p, max_diff, sa.label.digit(p, max_diff));
            let via = SwitchAddr::Level {
                level: max_diff,
                rest: label.rest_index(p, max_diff),
            }
            .node_id(p);
            let from = ServerAddr::new(p, prev, arr).node_id(p);
            let to = ServerAddr::new(p, label, arr).node_id(p);
            parent[to.index()] = Some((from, via));
        }
        // Crossbar fan-out within the group.
        if m > 1 {
            let hub = ServerAddr::new(p, label, arr).node_id(p);
            let via = SwitchAddr::Crossbar(label).node_id(p);
            for j in 0..m {
                if j == arr {
                    continue;
                }
                let member = ServerAddr::new(p, label, j).node_id(p);
                parent[member.index()] = Some((hub, via));
            }
        }
    }

    finish_tree(p, src, parent)
}

/// Builds a one-to-many tree: the one-to-all tree pruned to the branches
/// needed to reach `dests` (a Steiner-tree-style subtree).
///
/// # Errors
///
/// Returns [`RouteError::NotAServer`] if `src` or any destination is not a
/// server id.
pub fn one_to_many(
    p: &AbcccParams,
    src: NodeId,
    dests: &[NodeId],
) -> Result<BroadcastTree, RouteError> {
    let full = one_to_all(p, src)?;
    let mut keep = vec![false; p.server_count() as usize];
    keep[src.index()] = true;
    for &d in dests {
        if u64::from(d.0) >= p.server_count() {
            return Err(RouteError::NotAServer(d));
        }
        let mut cur = d;
        while !keep[cur.index()] {
            keep[cur.index()] = true;
            match full.parent(cur) {
                Some((par, _)) => cur = par,
                None => break,
            }
        }
    }
    let parent = (0..p.server_count() as usize)
        .map(|i| if keep[i] { full.parent[i] } else { None })
        .collect();
    finish_tree(p, src, parent)
}

impl BroadcastTree {
    /// The tree read in reverse: an **aggregation** (all-to-one) schedule.
    /// Returns the servers grouped by depth, deepest first — running the
    /// rounds in this order lets every server combine its children's
    /// partial results before forwarding one message to its parent (the
    /// in-network reduction pattern of MapReduce/all-reduce workloads).
    pub fn aggregation_rounds(&self) -> Vec<Vec<NodeId>> {
        let mut depth_of = std::collections::HashMap::new();
        let mut max_depth = 0usize;
        for idx in 0..self.parent.len() {
            let id = NodeId(idx as u32);
            if !self.contains(id) {
                continue;
            }
            let d = self.path_to(id).len() - 1;
            depth_of.insert(id, d);
            max_depth = max_depth.max(d);
        }
        let mut rounds: Vec<Vec<NodeId>> = vec![Vec::new(); max_depth];
        for (id, d) in depth_of {
            if d > 0 {
                rounds[max_depth - d].push(id);
            }
        }
        for r in &mut rounds {
            r.sort_unstable();
        }
        rounds
    }
}

/// Computes depth/membership and packages the tree.
fn finish_tree(
    p: &AbcccParams,
    src: NodeId,
    parent: Vec<Option<(NodeId, NodeId)>>,
) -> Result<BroadcastTree, RouteError> {
    let mut depth_cache = vec![u32::MAX; p.server_count() as usize];
    depth_cache[src.index()] = 0;
    let mut max_depth = 0;
    let mut members = 1usize;
    for raw in 0..p.server_count() as usize {
        if parent[raw].is_none() {
            continue;
        }
        // Walk up until a cached depth, then unwind.
        let mut stack = Vec::new();
        let mut cur = raw;
        while depth_cache[cur] == u32::MAX {
            stack.push(cur);
            cur = match parent[cur] {
                Some((par, _)) => par.index(),
                None => break,
            };
        }
        let mut d = depth_cache[cur];
        while let Some(node) = stack.pop() {
            d += 1;
            depth_cache[node] = d;
            members += 1;
            max_depth = max_depth.max(d);
        }
    }
    Ok(BroadcastTree {
        root: src,
        parent,
        depth: max_depth,
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abccc;
    use netgraph::Topology;

    fn check_full(p: AbcccParams) {
        let tree = one_to_all(&p, NodeId(3 % p.server_count() as u32)).unwrap();
        tree.validate(&p).unwrap();
        assert_eq!(tree.member_count() as u64, p.server_count());
        // Depth is bounded by diameter + 1 (final crossbar fan-out).
        assert!(
            u64::from(tree.depth()) <= p.diameter() + 1,
            "{p}: depth {} > diameter {} + 1",
            tree.depth(),
            p.diameter()
        );
        // Tree paths are real paths of the materialized network.
        let topo = Abccc::new(p).unwrap();
        for raw in (0..p.server_count()).step_by(5) {
            let id = NodeId(raw as u32);
            let path = tree.path_to(id);
            for w in path.windows(2) {
                let (parent, via) = tree.parent(w[1]).unwrap();
                assert_eq!(parent, w[0]);
                assert!(topo.network().find_link(w[0], via).is_some());
                assert!(topo.network().find_link(via, w[1]).is_some());
            }
        }
    }

    #[test]
    fn one_to_all_spans_everything() {
        for (n, k, h) in [(2, 1, 2), (3, 2, 2), (2, 3, 3), (3, 1, 3), (2, 2, 4)] {
            check_full(AbcccParams::new(n, k, h).unwrap());
        }
    }

    #[test]
    fn one_to_all_depth_near_eccentricity() {
        // Depth must be within +2 of the BFS eccentricity (crossbar
        // fan-outs at source and destination labels).
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let src = NodeId(0);
        let tree = one_to_all(&p, src).unwrap();
        let ecc = netgraph::bfs::server_eccentricity(topo.network(), src).unwrap();
        assert!(tree.depth() >= ecc);
        assert!(
            tree.depth() <= ecc + 2,
            "depth {} vs ecc {ecc}",
            tree.depth()
        );
    }

    #[test]
    fn every_nonroot_has_exactly_one_parent() {
        let p = AbcccParams::new(2, 2, 2).unwrap();
        let tree = one_to_all(&p, NodeId(7)).unwrap();
        for raw in 0..p.server_count() {
            let id = NodeId(raw as u32);
            if id == tree.root() {
                assert!(tree.parent(id).is_none());
            } else {
                assert!(tree.parent(id).is_some(), "{id} unreached");
            }
        }
    }

    #[test]
    fn one_to_many_covers_exactly_the_needed_branches() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let src = NodeId(0);
        let dests = [NodeId(11), NodeId(42), NodeId(80)];
        let tree = one_to_many(&p, src, &dests).unwrap();
        tree.validate(&p).unwrap();
        for d in dests {
            assert!(tree.contains(d));
            assert_eq!(tree.path_to(d)[0], src);
        }
        // Strictly smaller than the full broadcast.
        let full = one_to_all(&p, src).unwrap();
        assert!(tree.member_count() < full.member_count());
        // Every member lies on a root→dest path (no dangling branches).
        let mut on_path = std::collections::HashSet::new();
        for d in dests {
            on_path.extend(tree.path_to(d));
        }
        on_path.insert(src);
        for raw in 0..p.server_count() {
            let id = NodeId(raw as u32);
            if tree.contains(id) {
                assert!(on_path.contains(&id), "{id} dangles");
            }
        }
    }

    #[test]
    fn one_to_many_with_all_servers_is_one_to_all() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let all: Vec<NodeId> = (0..p.server_count()).map(|r| NodeId(r as u32)).collect();
        let many = one_to_many(&p, NodeId(0), &all).unwrap();
        let full = one_to_all(&p, NodeId(0)).unwrap();
        assert_eq!(many, full);
    }

    #[test]
    fn aggregation_rounds_reduce_everything_once() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let tree = one_to_all(&p, NodeId(5)).unwrap();
        let rounds = tree.aggregation_rounds();
        assert_eq!(rounds.len() as u32, tree.depth());
        // Every non-root server appears in exactly one round.
        let mut seen = std::collections::HashSet::new();
        for round in &rounds {
            for &s in round {
                assert!(seen.insert(s), "{s} reduced twice");
                assert_ne!(s, tree.root());
            }
        }
        assert_eq!(seen.len() as u64, p.server_count() - 1);
        // A node's parent is never scheduled in an earlier round than the
        // node itself (children reduce first).
        let mut round_of = std::collections::HashMap::new();
        for (i, round) in rounds.iter().enumerate() {
            for &s in round {
                round_of.insert(s, i);
            }
        }
        for (&s, &r) in &round_of {
            if let Some((parent, _)) = tree.parent(s) {
                if parent != tree.root() {
                    assert!(round_of[&parent] > r, "{parent} before child {s}");
                }
            }
        }
    }

    #[test]
    fn rejects_bad_endpoints() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let sw = NodeId(p.server_count() as u32);
        assert!(one_to_all(&p, sw).is_err());
        assert!(one_to_many(&p, NodeId(0), &[sw]).is_err());
    }
}
