//! The unified routing surface: the [`Router`] trait.
//!
//! The crate historically grew four disconnected entry points
//! (`route_addrs`, `route_ids`, `route_vlb`, `route_avoiding`) with
//! different signatures, RNG plumbing and fault-mask conventions. Every
//! router now implements one trait:
//!
//! * [`DigitRouter`](crate::routing::DigitRouter) — deterministic
//!   digit-correction routing with a [`PermStrategy`](crate::PermStrategy);
//!   fault-oblivious (a mask only gates acceptance of the produced route);
//! * [`VlbRouter`](crate::vlb::VlbRouter) — Valiant load balancing through
//!   a per-pair seeded intermediate, deterministic and call-order
//!   independent;
//! * [`ResilientRouter`](crate::fault::ResilientRouter) — the escalating
//!   fault-tolerant scheme (deterministic permutations → randomized
//!   permutations → proxy detours → omniscient BFS), parameterized by a
//!   [`RetryBudget`](crate::fault::RetryBudget).
//!
//! Every route comes back as a [`RouteOutcome`] that records *which
//! escalation tier* produced it, how many candidates were examined and how
//! much deterministic backoff was accrued — the observables the resilience
//! campaign engine aggregates into degradation reports.
//!
//! The four original free functions (`route_addrs`, `route_ids`,
//! `route_vlb`, `route_avoiding`) lived on as `#[deprecated]` shims for one
//! release and are now gone; external implementations of the trait (e.g.
//! the compiled forwarding tables of `dcn-fib`) share the exact endpoint
//! and seeding semantics through [`check_endpoints`] and [`pair_seed`].

use crate::Abccc;
use netgraph::{FaultMask, NodeId, Route, RouteError};
use serde::{Deserialize, Serialize};

/// Which escalation tier produced a route (cheapest first).
///
/// [`DigitRouter`](crate::routing::DigitRouter) and
/// [`VlbRouter`](crate::vlb::VlbRouter) always answer from
/// [`RouteTier::Primary`]; the
/// [`ResilientRouter`](crate::fault::ResilientRouter) climbs the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteTier {
    /// The primary (destination-aware shortest-path) route was usable.
    Primary,
    /// Another deterministic permutation strategy succeeded.
    Deterministic,
    /// A randomized digit-correction permutation succeeded.
    RandomPerm,
    /// A detour through a random proxy server succeeded.
    Proxy,
    /// The omniscient BFS fallback on the surviving graph succeeded.
    Bfs,
}

impl RouteTier {
    /// Stable lowercase label (used in reports and telemetry).
    pub fn label(self) -> &'static str {
        match self {
            RouteTier::Primary => "primary",
            RouteTier::Deterministic => "deterministic",
            RouteTier::RandomPerm => "random_perm",
            RouteTier::Proxy => "proxy",
            RouteTier::Bfs => "bfs",
        }
    }
}

/// A routed path plus the cost accounting of finding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteOutcome {
    /// The usable route.
    pub route: Route,
    /// The escalation tier that produced it.
    pub tier: RouteTier,
    /// Candidate routes examined (including rejected ones).
    pub attempts: u32,
    /// Deterministic backoff accrued between escalation tiers, in abstract
    /// backoff units (see [`RetryBudget`](crate::fault::RetryBudget)); zero
    /// when the primary tier answered.
    pub backoff_units: u64,
}

impl RouteOutcome {
    /// Wraps a route that the primary tier produced on the first attempt.
    pub fn primary(route: Route) -> Self {
        RouteOutcome {
            route,
            tier: RouteTier::Primary,
            attempts: 1,
            backoff_units: 0,
        }
    }
}

/// The unified routing interface over a materialized [`Abccc`] network.
///
/// Implementations must be deterministic: the same router value, topology,
/// endpoints and mask yield the same [`RouteOutcome`] on every call.
pub trait Router {
    /// Human-readable router name for reports (e.g. `"resilient"`).
    fn name(&self) -> String;

    /// Routes `src → dst`, optionally under a fault mask.
    ///
    /// # Errors
    ///
    /// * [`RouteError::NotAServer`] — an endpoint is not a server id of the
    ///   topology;
    /// * [`RouteError::Unreachable`] — an endpoint is failed, or (for
    ///   complete routers) the pair is disconnected in the surviving graph;
    /// * [`RouteError::GaveUp`] — the router's budget was exhausted even
    ///   though the pair might be connected (fault-oblivious routers under
    ///   a mask, or a [`ResilientRouter`](crate::fault::ResilientRouter)
    ///   with its BFS fallback disabled).
    fn route(
        &self,
        topo: &Abccc,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<RouteOutcome, RouteError>;

    /// Convenience: the fault-free route alone, without cost accounting.
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::route`].
    fn route_simple(&self, topo: &Abccc, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        Ok(self.route(topo, src, dst, None)?.route)
    }
}

/// Shared endpoint validation for every router: both ids name servers and
/// neither endpoint is failed under the mask.
///
/// Exposed so external [`Router`] implementations (the compiled forwarding
/// tables of `dcn-fib`) reproduce the in-crate routers bit for bit: same
/// error order (`src` checked before `dst`), same
/// [`RouteError::Unreachable`] on a dead endpoint, same telemetry counter.
///
/// # Errors
///
/// * [`RouteError::NotAServer`] — an endpoint is not a server id;
/// * [`RouteError::Unreachable`] — an endpoint is failed under `mask`.
pub fn check_endpoints(
    topo: &Abccc,
    src: NodeId,
    dst: NodeId,
    mask: Option<&FaultMask>,
) -> Result<(), RouteError> {
    let p = topo.params();
    if u64::from(src.0) >= p.server_count() {
        return Err(RouteError::NotAServer(src));
    }
    if u64::from(dst.0) >= p.server_count() {
        return Err(RouteError::NotAServer(dst));
    }
    if let Some(m) = mask {
        if !m.node_alive(src) || !m.node_alive(dst) {
            dcn_telemetry::counter!("abccc.fault.endpoint_failed").inc();
            return Err(RouteError::Unreachable { src, dst });
        }
    }
    Ok(())
}

/// Mixes a pair of endpoints into a router seed: distinct pairs get
/// decorrelated, deterministic streams. Public so alternative data planes
/// can reproduce [`VlbRouter`](crate::vlb::VlbRouter)-style per-pair
/// streams exactly.
pub fn pair_seed(seed: u64, src: NodeId, dst: NodeId) -> u64 {
    seed ^ (u64::from(src.0) << 32) ^ u64::from(dst.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ResilientRouter;
    use crate::routing::DigitRouter;
    use crate::vlb::VlbRouter;
    use crate::AbcccParams;
    use netgraph::Topology;

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap()
    }

    #[test]
    fn tier_labels_are_ordered_and_stable() {
        assert!(RouteTier::Primary < RouteTier::Bfs);
        assert_eq!(RouteTier::RandomPerm.label(), "random_perm");
    }

    #[test]
    fn routers_are_object_safe_and_agree_fault_free() {
        let t = topo();
        let routers: Vec<Box<dyn Router>> = vec![
            Box::new(DigitRouter::shortest()),
            Box::new(VlbRouter::new(7)),
            Box::new(ResilientRouter::default()),
        ];
        let (a, b) = (NodeId(0), NodeId((t.params().server_count() - 1) as u32));
        for r in &routers {
            let out = r.route(&t, a, b, None).unwrap();
            out.route.validate(t.network(), None).unwrap();
            assert_eq!(out.route.src(), a);
            assert_eq!(out.route.dst(), b);
            assert_eq!(out.tier, RouteTier::Primary, "{}", r.name());
            assert_eq!(out.backoff_units, 0);
        }
    }

    #[test]
    fn every_router_rejects_switch_endpoints() {
        let t = topo();
        let sw = NodeId(t.params().server_count() as u32);
        let routers: Vec<Box<dyn Router>> = vec![
            Box::new(DigitRouter::shortest()),
            Box::new(VlbRouter::new(0)),
            Box::new(ResilientRouter::default()),
        ];
        for r in &routers {
            assert!(matches!(
                r.route(&t, sw, NodeId(0), None),
                Err(RouteError::NotAServer(_))
            ));
            assert!(matches!(
                r.route(&t, NodeId(0), sw, None),
                Err(RouteError::NotAServer(_))
            ));
        }
    }

    #[test]
    fn route_simple_strips_accounting() {
        let t = topo();
        let r = DigitRouter::shortest();
        let simple = r.route_simple(&t, NodeId(0), NodeId(5)).unwrap();
        let full = r.route(&t, NodeId(0), NodeId(5), None).unwrap();
        assert_eq!(simple, full.route);
    }
}
