//! Permutation generation for ABCCC routing.
//!
//! The one-to-one routing algorithm corrects the differing address digits
//! in some order; the order (the "permutation" of the ICC'15 companion
//! paper *Permutation Generation for Routing in BCube Connected Crossbars*)
//! determines how many intra-group crossbar hops the route pays. A level
//! can only be corrected at the group position that owns it, so a good
//! permutation groups levels by owner and sequences the owners to start at
//! the source's position and end at the destination's.

use crate::{AbcccParams, ServerAddr};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Strategy for ordering the digit corrections of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PermStrategy {
    /// Correct levels in ascending order (`0, 1, …, k`). The naive order of
    /// the original BCube routing; pays an owner change every `h − 1`
    /// levels plus whatever the start/end positions cost.
    Ascending,
    /// Correct levels in descending order.
    Descending,
    /// Group levels by owner and visit owners cyclically starting at the
    /// source's position (ICC'15 "take advantage of the structure").
    CyclicFromSource,
    /// Like [`PermStrategy::CyclicFromSource`], but additionally rotates the
    /// owner sequence so that the destination's position is corrected
    /// *last*, saving the final crossbar hop when possible. This is the
    /// default strategy of [`crate::Abccc`].
    DestinationAware,
    /// Greedy nearest-owner: repeatedly correct every remaining level owned
    /// by the current position, then jump to the owner at minimum position
    /// distance with work remaining.
    Greedy,
    /// Uniform random order, derandomized per (seed, src, dst) pair; the
    /// "no discussion yet about how to choose the permutation" baseline.
    Random(u64),
}

impl PermStrategy {
    /// Produces the correction order for routing `src → dst`: a permutation
    /// of exactly the levels where the two cube labels differ.
    pub fn order(&self, p: &AbcccParams, src: ServerAddr, dst: ServerAddr) -> Vec<u32> {
        let mut diff = src.label.differing_levels(p, dst.label);
        match self {
            PermStrategy::Ascending => diff,
            PermStrategy::Descending => {
                diff.reverse();
                diff
            }
            PermStrategy::CyclicFromSource => {
                let m = p.group_size();
                diff.sort_by_key(|&i| ((p.owner(i) + m - src.pos) % m, i));
                diff
            }
            PermStrategy::DestinationAware => {
                let m = p.group_size();
                let key = |i: u32| (p.owner(i) + m - src.pos) % m;
                diff.sort_by_key(|&i| (key(i), i));
                // If the destination's position owns some differing levels
                // and is not already last in the cyclic order, rotate its
                // block to the end (when it is not also the source block).
                if dst.pos != src.pos {
                    let dst_key = (dst.pos + m - src.pos) % m;
                    let (mut rest, tail): (Vec<u32>, Vec<u32>) =
                        diff.into_iter().partition(|&i| key(i) != dst_key);
                    rest.extend(tail);
                    return rest;
                }
                diff
            }
            PermStrategy::Greedy => {
                let mut remaining = diff;
                let mut order = Vec::with_capacity(remaining.len());
                let mut cur = src.pos;
                while !remaining.is_empty() {
                    let here: Vec<u32> = remaining
                        .iter()
                        .copied()
                        .filter(|&i| p.owner(i) == cur)
                        .collect();
                    if here.is_empty() {
                        // Jump to the owner at minimum |distance| with work.
                        cur = remaining
                            .iter()
                            .map(|&i| p.owner(i))
                            .min_by_key(|&o| (o.abs_diff(cur), o))
                            .expect("non-empty");
                    } else {
                        remaining.retain(|&i| p.owner(i) != cur);
                        order.extend(here);
                    }
                }
                order
            }
            PermStrategy::Random(seed) => {
                let salt = u64::from(src.node_id(p).0) << 32 | u64::from(dst.node_id(p).0);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ salt);
                diff.shuffle(&mut rng);
                diff
            }
        }
    }

    /// The first entry of [`PermStrategy::order`] without materializing the
    /// permutation: `first(p, src, dst) == order(p, src, dst).first().copied()`
    /// for every strategy (pinned by tests).
    ///
    /// Compiled forwarding tables only ever consume the *first* correction
    /// level of a route — the suffix property means the rest of the journey
    /// is re-derived hop by hop — so the hierarchical FIB calls this on the
    /// lookup path where an `order()` allocation per query would dominate.
    /// All deterministic strategies run in O(levels) with no heap use;
    /// [`PermStrategy::Random`] has no closed form and falls back to
    /// `order()`.
    pub fn first(&self, p: &AbcccParams, src: ServerAddr, dst: ServerAddr) -> Option<u32> {
        if matches!(self, PermStrategy::Random(_)) {
            return self.order(p, src, dst).first().copied();
        }
        // Bitmask of differing levels (levels ≤ 20, so u32 suffices).
        let n = u64::from(p.n());
        let levels = p.levels();
        let mut mask = 0u32;
        let (mut ra, mut rb) = (src.label.0, dst.label.0);
        for lvl in 0..levels {
            if ra % n != rb % n {
                mask |= 1 << lvl;
            }
            ra /= n;
            rb /= n;
        }
        if mask == 0 {
            return None;
        }
        let diff = |m: u32| (0..levels).filter(move |&i| m & (1 << i) != 0);
        let m = p.group_size();
        let key = |i: u32| (p.owner(i) + m - src.pos) % m;
        Some(match self {
            PermStrategy::Ascending => mask.trailing_zeros(),
            PermStrategy::Descending => 31 - mask.leading_zeros(),
            PermStrategy::CyclicFromSource => {
                diff(mask).min_by_key(|&i| (key(i), i)).expect("non-empty")
            }
            PermStrategy::DestinationAware => {
                // The destination's block moves to the back of the cyclic
                // order, so the first entry is the cyclic minimum over the
                // other blocks — unless every differing level sits in the
                // destination block (or src and dst share a position).
                let dst_key = (dst.pos + m - src.pos) % m;
                let skip_dst = dst.pos != src.pos;
                diff(mask)
                    .filter(|&i| !skip_dst || key(i) != dst_key)
                    .min_by_key(|&i| (key(i), i))
                    .unwrap_or_else(|| diff(mask).min_by_key(|&i| (key(i), i)).expect("non-empty"))
            }
            PermStrategy::Greedy => {
                // Levels owned by the source's position come first (ascending
                // within the block); otherwise jump to the nearest owner with
                // work remaining and take its lowest level.
                match diff(mask).find(|&i| p.owner(i) == src.pos) {
                    Some(i) => i,
                    None => {
                        let target = diff(mask)
                            .map(|i| p.owner(i))
                            .min_by_key(|&o| (o.abs_diff(src.pos), o))
                            .expect("non-empty");
                        diff(mask)
                            .find(|&i| p.owner(i) == target)
                            .expect("owner has work")
                    }
                }
            }
            PermStrategy::Random(_) => unreachable!("handled above"),
        })
    }

    /// All strategies with a representative random seed — handy for sweeps.
    pub fn all() -> Vec<PermStrategy> {
        vec![
            PermStrategy::Ascending,
            PermStrategy::Descending,
            PermStrategy::CyclicFromSource,
            PermStrategy::DestinationAware,
            PermStrategy::Greedy,
            PermStrategy::Random(0xABCC_C015),
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PermStrategy::Ascending => "ascending",
            PermStrategy::Descending => "descending",
            PermStrategy::CyclicFromSource => "cyclic-from-source",
            PermStrategy::DestinationAware => "destination-aware",
            PermStrategy::Greedy => "greedy",
            PermStrategy::Random(_) => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CubeLabel;

    fn setup() -> (AbcccParams, ServerAddr, ServerAddr) {
        // L = 6, h = 3 → m = 3 owners: 0:{0,1} 1:{2,3} 2:{4,5}
        let p = AbcccParams::new(2, 5, 3).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0; 6]), 1);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[1; 6]), 0);
        (p, src, dst)
    }

    fn is_perm_of_diff(p: &AbcccParams, src: ServerAddr, dst: ServerAddr, order: &[u32]) {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, src.label.differing_levels(p, dst.label));
    }

    #[test]
    fn every_strategy_yields_a_permutation_of_diff() {
        let (p, src, dst) = setup();
        for s in PermStrategy::all() {
            is_perm_of_diff(&p, src, dst, &s.order(&p, src, dst));
        }
    }

    #[test]
    fn ascending_and_descending() {
        let (p, src, dst) = setup();
        assert_eq!(
            PermStrategy::Ascending.order(&p, src, dst),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(
            PermStrategy::Descending.order(&p, src, dst),
            vec![5, 4, 3, 2, 1, 0]
        );
    }

    #[test]
    fn cyclic_starts_at_source_position() {
        let (p, src, dst) = setup();
        // src.pos = 1 owns levels 2,3 → they come first, then owner 2, then 0.
        assert_eq!(
            PermStrategy::CyclicFromSource.order(&p, src, dst),
            vec![2, 3, 4, 5, 0, 1]
        );
    }

    #[test]
    fn destination_aware_puts_dst_block_last() {
        let (p, src, dst) = setup();
        // dst.pos = 0 owns levels 0,1 → moved to the very end.
        assert_eq!(
            PermStrategy::DestinationAware.order(&p, src, dst),
            vec![2, 3, 4, 5, 0, 1]
        );
        // With dst at position 2 the block {4,5} goes last instead.
        let dst2 = ServerAddr::new(&p, dst.label, 2);
        assert_eq!(
            PermStrategy::DestinationAware.order(&p, src, dst2),
            vec![2, 3, 0, 1, 4, 5]
        );
    }

    #[test]
    fn greedy_consumes_current_owner_first() {
        let (p, src, dst) = setup();
        let order = PermStrategy::Greedy.order(&p, src, dst);
        assert_eq!(&order[..2], &[2, 3]); // src.pos = 1 owns 2,3
        is_perm_of_diff(&p, src, dst, &order);
    }

    #[test]
    fn random_is_deterministic_per_pair() {
        let (p, src, dst) = setup();
        let s = PermStrategy::Random(42);
        assert_eq!(s.order(&p, src, dst), s.order(&p, src, dst));
        is_perm_of_diff(&p, src, dst, &s.order(&p, src, dst));
    }

    #[test]
    fn identical_labels_give_empty_order() {
        let (p, src, _) = setup();
        for s in PermStrategy::all() {
            assert!(s.order(&p, src, src).is_empty());
        }
    }

    #[test]
    fn first_matches_order_head_on_exhaustive_small_instance() {
        // Every (src, dst) pair of ABCCC(2,3,3) and ABCCC(3,2,2), every
        // strategy: the allocation-free fast path must equal order()[0].
        for (n, k, h) in [(2, 3, 3), (3, 2, 2), (2, 5, 3)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let servers = p.server_count() as u32;
            for s in PermStrategy::all() {
                for a in 0..servers {
                    for b in 0..servers {
                        let src = ServerAddr::from_node_id(&p, netgraph::NodeId(a));
                        let dst = ServerAddr::from_node_id(&p, netgraph::NodeId(b));
                        assert_eq!(
                            s.first(&p, src, dst),
                            s.order(&p, src, dst).first().copied(),
                            "{s:?} src={a} dst={b} in ABCCC({n},{k},{h})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn first_matches_order_head_on_sampled_large_instance() {
        // Wide-radix, deep instance where digit arithmetic could overflow a
        // naive implementation: sampled pairs, all strategies.
        let p = AbcccParams::new(16, 4, 4).unwrap();
        let servers = p.server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1257);
        use rand::Rng;
        for _ in 0..256 {
            let a = rng.gen_range(0..servers) as u32;
            let b = rng.gen_range(0..servers) as u32;
            let src = ServerAddr::from_node_id(&p, netgraph::NodeId(a));
            let dst = ServerAddr::from_node_id(&p, netgraph::NodeId(b));
            for s in PermStrategy::all() {
                assert_eq!(
                    s.first(&p, src, dst),
                    s.order(&p, src, dst).first().copied(),
                    "{s:?} src={a} dst={b}"
                );
            }
        }
    }

    #[test]
    fn sparse_diff_only_contains_differing_levels() {
        let p = AbcccParams::new(3, 3, 2).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 0, 0, 0]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 2, 0, 1]), 3);
        for s in PermStrategy::all() {
            let order = s.order(&p, src, dst);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 3]);
        }
    }
}
