//! ABCCC parameters and derived structural quantities.

use netgraph::NetworkError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of an `ABCCC(n, k, h)` network.
///
/// * `n` — radix of the cube-level COTS switches (and number of values each
///   address digit takes), `n ≥ 2`;
/// * `k` — the **order**: addresses have `k + 1` digits; the network grows
///   by incrementing `k`, `k ≥ 0`;
/// * `h` — number of NIC ports per server, `h ≥ 2`. Every server uses one
///   port towards its group crossbar and up to `h − 1` ports towards cube
///   levels.
///
/// Degenerate endpoints: `h = 2` yields BCCC(n, k); `h ≥ k + 2` yields
/// BCube(n, k) (group size 1, crossbars vanish).
///
/// ```
/// use abccc::AbcccParams;
/// let p = AbcccParams::new(4, 2, 3).unwrap();
/// assert_eq!(p.levels(), 3);       // k + 1 digit positions
/// assert_eq!(p.group_size(), 2);   // ceil(3 / (3 - 1))
/// assert_eq!(p.server_count(), 2 * 4u64.pow(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AbcccParams {
    n: u32,
    k: u32,
    h: u32,
}

impl AbcccParams {
    /// Creates and validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] if `n < 2`, `h < 2`, or
    /// the address space `n^(k+1)` would overflow `u64` practicality
    /// bounds (we cap digit count at 20 and `n` at 1024).
    pub fn new(n: u32, k: u32, h: u32) -> Result<Self, NetworkError> {
        if !(2..=1024).contains(&n) {
            return Err(NetworkError::InvalidParameter {
                name: "n",
                reason: format!("switch radix must be in 2..=1024, got {n}"),
            });
        }
        if h < 2 {
            return Err(NetworkError::InvalidParameter {
                name: "h",
                reason: format!("servers need at least 2 NIC ports, got {h}"),
            });
        }
        if k > 19 {
            return Err(NetworkError::InvalidParameter {
                name: "k",
                reason: format!("order must be at most 19, got {k}"),
            });
        }
        let p = AbcccParams { n, k, h };
        if p.label_space() == 0 {
            return Err(NetworkError::InvalidParameter {
                name: "k",
                reason: format!("address space n^(k+1) = {n}^{} overflows u64", k + 1),
            });
        }
        // Flat node ids are u32 (see `crate::address`); reject configs whose
        // id space would not fit rather than let the codecs truncate.
        let nodes = p.server_count().saturating_add(p.switch_count());
        if nodes > u64::from(u32::MAX) {
            return Err(NetworkError::InvalidParameter {
                name: "k",
                reason: format!("{nodes} nodes exceed the u32 id space"),
            });
        }
        Ok(p)
    }

    /// Switch radix / digit base `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Order `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// NIC ports per server `h`.
    #[inline]
    pub fn h(&self) -> u32 {
        self.h
    }

    /// Number of cube levels `L = k + 1` (digit positions).
    #[inline]
    pub fn levels(&self) -> u32 {
        self.k + 1
    }

    /// Group size `m = ceil(L / (h − 1))`: servers per crossbar.
    #[inline]
    pub fn group_size(&self) -> u32 {
        self.levels().div_ceil(self.h - 1)
    }

    /// Number of distinct cube labels `n^(k+1)`, or 0 on overflow.
    pub fn label_space(&self) -> u64 {
        let mut acc: u64 = 1;
        for _ in 0..self.levels() {
            acc = match acc.checked_mul(u64::from(self.n)) {
                Some(v) => v,
                None => return 0,
            };
        }
        acc
    }

    /// `n^k` — the number of level switches per level.
    pub fn rest_space(&self) -> u64 {
        self.label_space() / u64::from(self.n)
    }

    /// Total number of servers `m · n^(k+1)` (saturating; out-of-range
    /// configurations are rejected by [`AbcccParams::new`]).
    pub fn server_count(&self) -> u64 {
        u64::from(self.group_size()).saturating_mul(self.label_space())
    }

    /// Number of crossbar switches (`n^(k+1)`, or 0 when the group size is
    /// 1 and crossbars degenerate away).
    pub fn crossbar_count(&self) -> u64 {
        if self.group_size() == 1 {
            0
        } else {
            self.label_space()
        }
    }

    /// Number of cube-level switches `(k+1) · n^k`.
    pub fn level_switch_count(&self) -> u64 {
        u64::from(self.levels()).saturating_mul(self.rest_space())
    }

    /// Total switches.
    pub fn switch_count(&self) -> u64 {
        self.crossbar_count()
            .saturating_add(self.level_switch_count())
    }

    /// Total cables: `m · n^(k+1)` crossbar cables (0 if no crossbars) plus
    /// `(k+1) · n^(k+1)` level cables.
    pub fn wire_count(&self) -> u64 {
        let crossbar = if self.group_size() == 1 {
            0
        } else {
            u64::from(self.group_size()).saturating_mul(self.label_space())
        };
        crossbar.saturating_add(u64::from(self.levels()).saturating_mul(self.label_space()))
    }

    /// The group position that owns cube level `i` —
    /// `owner(i) = floor(i / (h − 1))`.
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[inline]
    pub fn owner(&self, level: u32) -> u32 {
        assert!(level <= self.k, "level {level} out of range 0..={}", self.k);
        level / (self.h - 1)
    }

    /// The inclusive range of levels owned by group position `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= group_size()`.
    pub fn owned_levels(&self, j: u32) -> std::ops::RangeInclusive<u32> {
        assert!(j < self.group_size(), "position {j} out of range");
        let lo = j * (self.h - 1);
        let hi = (lo + self.h - 2).min(self.k);
        lo..=hi
    }

    /// Number of NIC ports used by the server at group position `j`
    /// (crossbar port, if crossbars exist, plus owned levels).
    pub fn ports_used(&self, j: u32) -> u32 {
        let owned = {
            let r = self.owned_levels(j);
            r.end() - r.start() + 1
        };
        if self.group_size() == 1 {
            owned
        } else {
            owned + 1
        }
    }

    /// Closed-form diameter in server hops (validated against BFS in the
    /// test suite):
    /// `k + 1` when `m = 1` (BCube), else `(k + 1) + m`.
    pub fn diameter(&self) -> u64 {
        let m = u64::from(self.group_size());
        let l = u64::from(self.levels());
        if m == 1 {
            l
        } else {
            l + m
        }
    }

    /// Closed-form bisection width in links for even `n`: `n^(k+1) / 2`
    /// (cut one level's stars in half). Returns `None` for odd `n`, where
    /// the balanced-cut expression is not this clean — use
    /// `dcn_metrics::bisection` for an exact small-instance value.
    pub fn bisection_width(&self) -> Option<u64> {
        if self.n.is_multiple_of(2) {
            Some(self.label_space() / 2)
        } else {
            None
        }
    }

    /// Bisection links *per server* `1 / (2m)` for even `n` — the
    /// tunable-tradeoff headline of the paper (larger `h` ⇒ smaller `m` ⇒
    /// proportionally more bisection per server).
    pub fn bisection_per_server(&self) -> Option<f64> {
        self.bisection_width()
            .map(|b| b as f64 / self.server_count() as f64)
    }

    /// Parameters one expansion step later (`k + 1`, same `n`, `h`).
    ///
    /// # Errors
    ///
    /// Propagates the validation error if the grown network would exceed
    /// the supported address space.
    pub fn grown(&self) -> Result<AbcccParams, NetworkError> {
        AbcccParams::new(self.n, self.k + 1, self.h)
    }
}

impl fmt::Display for AbcccParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ABCCC({},{},{})", self.n, self.k, self.h)
    }
}

impl std::str::FromStr for AbcccParams {
    type Err = NetworkError;

    /// Parses the [`fmt::Display`] form, case-insensitively and with
    /// optional whitespace: `"ABCCC(4,2,3)"`, `"abccc(4, 2, 3)"` or the
    /// bare triple `"4,2,3"`.
    ///
    /// ```
    /// use abccc::AbcccParams;
    /// let p: AbcccParams = "ABCCC(4,2,3)".parse().unwrap();
    /// assert_eq!(p.to_string(), "ABCCC(4,2,3)");
    /// assert_eq!("4,2,3".parse::<AbcccParams>().unwrap(), p);
    /// assert!("ABCCC(1,0,0)".parse::<AbcccParams>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let inner = s
            .trim()
            .strip_prefix("ABCCC(")
            .or_else(|| s.trim().strip_prefix("abccc("))
            .map_or(s.trim(), |rest| rest.trim_end_matches(')'));
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(NetworkError::InvalidParameter {
                name: "params",
                reason: format!("expected `ABCCC(n,k,h)` or `n,k,h`, got `{s}`"),
            });
        }
        let num = |t: &str, name: &'static str| -> Result<u32, NetworkError> {
            t.parse().map_err(|_| NetworkError::InvalidParameter {
                name,
                reason: format!("`{t}` is not a number"),
            })
        };
        AbcccParams::new(
            num(parts[0], "n")?,
            num(parts[1], "k")?,
            num(parts[2], "h")?,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(AbcccParams::new(1, 0, 2).is_err());
        assert!(AbcccParams::new(2, 0, 1).is_err());
        assert!(AbcccParams::new(2, 25, 2).is_err());
        assert!(AbcccParams::new(2, 0, 2).is_ok());
        assert!(AbcccParams::new(1025, 0, 2).is_err());
        // u32 id-space guard: configs whose flat ids would truncate are
        // rejected at construction, not at materialization.
        assert!(AbcccParams::new(8, 19, 2).is_err()); // 8^20 labels
        assert!(AbcccParams::new(16, 7, 2).is_err()); // 16^8 ≈ 4.3e9 labels
        assert!(AbcccParams::new(2, 19, 2).is_ok()); // ~33M nodes fits u32
    }

    #[test]
    fn bccc_endpoint() {
        // h = 2: one level per server, m = k + 1.
        let p = AbcccParams::new(4, 3, 2).unwrap();
        assert_eq!(p.group_size(), 4);
        assert_eq!(p.server_count(), 4 * 256);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 3);
        assert_eq!(p.ports_used(0), 2);
        assert_eq!(p.diameter(), 4 + 4);
    }

    #[test]
    fn bcube_endpoint() {
        // h = k + 2: single-server groups, crossbars vanish.
        let p = AbcccParams::new(4, 2, 4).unwrap();
        assert_eq!(p.group_size(), 1);
        assert_eq!(p.crossbar_count(), 0);
        assert_eq!(p.server_count(), 64);
        assert_eq!(p.ports_used(0), 3); // k+1 level ports, no crossbar port
        assert_eq!(p.diameter(), 3); // BCube diameter k+1
        assert_eq!(p.wire_count(), 3 * 64);
    }

    #[test]
    fn intermediate_h() {
        let p = AbcccParams::new(4, 3, 3).unwrap(); // L=4, h-1=2, m=2
        assert_eq!(p.group_size(), 2);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(1), 0);
        assert_eq!(p.owner(2), 1);
        assert_eq!(p.owner(3), 1);
        assert_eq!(p.owned_levels(0), 0..=1);
        assert_eq!(p.owned_levels(1), 2..=3);
        assert_eq!(p.ports_used(0), 3);
        assert_eq!(p.server_count(), 2 * 256);
        assert_eq!(p.switch_count(), 256 + 4 * 64);
        assert_eq!(p.wire_count(), 2 * 256 + 4 * 256);
    }

    #[test]
    fn ragged_last_position() {
        // L = 5, h-1 = 3 → m = 2, last position owns only levels 3..=4.
        let p = AbcccParams::new(2, 4, 4).unwrap();
        assert_eq!(p.group_size(), 2);
        assert_eq!(p.owned_levels(0), 0..=2);
        assert_eq!(p.owned_levels(1), 3..=4);
        assert_eq!(p.ports_used(0), 4);
        assert_eq!(p.ports_used(1), 3);
    }

    #[test]
    fn bisection() {
        let p = AbcccParams::new(4, 2, 2).unwrap();
        assert_eq!(p.bisection_width(), Some(32));
        let odd = AbcccParams::new(3, 2, 2).unwrap();
        assert_eq!(odd.bisection_width(), None);
        // per-server bisection = 1/(2m)
        let p2 = AbcccParams::new(4, 3, 3).unwrap();
        assert!((p2.bisection_per_server().unwrap() - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn grown_increments_order() {
        let p = AbcccParams::new(4, 2, 3).unwrap();
        let g = p.grown().unwrap();
        assert_eq!(g.k(), 3);
        assert_eq!(g.n(), 4);
        assert_eq!(g.h(), 3);
    }

    #[test]
    fn display() {
        let p = AbcccParams::new(6, 2, 3).unwrap();
        assert_eq!(p.to_string(), "ABCCC(6,2,3)");
    }
}
