//! Valiant load balancing (VLB) — two-stage randomized routing.
//!
//! Deterministic shortest-path routing concentrates adversarial traffic
//! (e.g. every flow correcting the same digit) onto few switches. VLB
//! fixes the worst case by routing via a uniformly random intermediate
//! group: `src → w → dst`, each stage with the shortest-path router. The
//! price is up to 2× path length on benign traffic; the win is that *any*
//! permutation spreads like uniform random traffic (experiment F17).
//!
//! [`VlbRouter`] is the [`Router`] face of the scheme: it derives a
//! per-pair RNG from its seed (see [`pair_seed`](crate::router::pair_seed)
//! mixing), so the same router value always picks the same intermediate
//! for a pair regardless of call order — the determinism the campaign
//! engine relies on. [`route_two_stage_with`] exposes the scheme with a
//! pluggable stage router so alternative data planes (e.g. compiled
//! forwarding tables) reproduce it exactly.

use crate::router::{check_endpoints, pair_seed, RouteOutcome, RouteTier, Router};
use crate::routing::DigitRouter;
use crate::{Abccc, AbcccParams, CubeLabel, ServerAddr};
use netgraph::{FaultMask, NodeId, Route, RouteError, Topology};
use rand::{Rng, SeedableRng};

/// How many random intermediates to try before falling back to the direct
/// shortest-path route (rejections only happen when the stages intersect,
/// i.e. in tiny networks).
const INTERMEDIATE_ATTEMPTS: u32 = 16;

/// The two-stage scheme parameterized over the stage router: picks a
/// random intermediate from `rng` and concatenates `stage(src, mid)` with
/// `stage(mid, dst)`; returns the route plus how many candidates were
/// examined.
///
/// The RNG consumption (one label draw, then — only if the label is
/// usable — one position draw, per attempt) is the determinism contract of
/// [`VlbRouter`]: any caller that seeds the same stream and supplies a
/// stage router agreeing with [`DigitRouter::shortest`] reproduces its
/// routes bit for bit. The compiled forwarding tables of `dcn-fib` rely on
/// exactly this to serve VLB queries from table walks.
pub fn route_two_stage_with(
    p: &AbcccParams,
    src: ServerAddr,
    dst: ServerAddr,
    rng: &mut impl Rng,
    mut stage: impl FnMut(ServerAddr, ServerAddr) -> Route,
) -> (Route, u32) {
    for attempt in 1..=INTERMEDIATE_ATTEMPTS {
        let label = CubeLabel(rng.gen_range(0..p.label_space()));
        if label == src.label || label == dst.label {
            continue;
        }
        let pos = rng.gen_range(0..p.group_size());
        let mid = ServerAddr::new(p, label, pos);
        let first = stage(src, mid);
        let second = stage(mid, dst);
        let mut nodes = first.nodes().to_vec();
        nodes.extend_from_slice(&second.nodes()[1..]);
        // Stages can intersect (they share digit corrections); only accept
        // simple concatenations.
        let mut seen = std::collections::HashSet::with_capacity(nodes.len());
        if nodes.iter().all(|n| seen.insert(*n)) {
            return (Route::new(nodes), attempt);
        }
    }
    (stage(src, dst), INTERMEDIATE_ATTEMPTS + 1)
}

/// The canonical instantiation: both stages routed by
/// [`DigitRouter::shortest`].
fn route_two_stage(
    p: &AbcccParams,
    src: ServerAddr,
    dst: ServerAddr,
    rng: &mut impl Rng,
) -> (Route, u32) {
    let shortest = DigitRouter::shortest();
    route_two_stage_with(p, src, dst, rng, |a, b| shortest.route_addrs(p, a, b))
}

/// Valiant load-balancing router: the [`Router`] impl of the two-stage
/// randomized scheme.
///
/// The router owns a seed; each pair's intermediate is drawn from a fresh
/// stream mixed from `(seed, src, dst)`, so routes are deterministic and
/// independent of call order. Like
/// [`DigitRouter`](crate::routing::DigitRouter) it is *fault-oblivious* —
/// under a mask the produced route is validated and rejected with
/// [`RouteError::GaveUp`] rather than detoured around failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlbRouter {
    seed: u64,
}

impl VlbRouter {
    /// A VLB router whose per-pair intermediate choices derive from `seed`.
    pub fn new(seed: u64) -> Self {
        VlbRouter { seed }
    }

    /// The seed the per-pair streams are mixed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Routes between two server addresses, drawing the intermediate from
    /// the caller's RNG stream instead of the router's per-pair stream.
    /// This is the legacy entry point benches that interleave many draws
    /// on one RNG still use.
    pub fn route_addrs_with(
        p: &AbcccParams,
        src: ServerAddr,
        dst: ServerAddr,
        rng: &mut impl Rng,
    ) -> Route {
        route_two_stage(p, src, dst, rng).0
    }
}

impl Router for VlbRouter {
    fn name(&self) -> String {
        "vlb".to_string()
    }

    fn route(
        &self,
        topo: &Abccc,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<RouteOutcome, RouteError> {
        check_endpoints(topo, src, dst, mask)?;
        let p = topo.params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(pair_seed(self.seed, src, dst));
        let (route, attempts) = route_two_stage(
            p,
            ServerAddr::from_node_id(p, src),
            ServerAddr::from_node_id(p, dst),
            &mut rng,
        );
        if let Some(m) = mask {
            if route.validate(topo.network(), Some(m)).is_err() {
                return Err(RouteError::GaveUp {
                    src,
                    dst,
                    attempts: attempts as usize,
                });
            }
        }
        Ok(RouteOutcome {
            route,
            tier: RouteTier::Primary,
            attempts,
            backoff_units: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{routing, Abccc};
    use netgraph::Topology;
    use rand::SeedableRng;

    #[test]
    fn vlb_routes_are_valid_and_bounded() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let router = VlbRouter::new(7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            if s == d {
                continue;
            }
            let out = router.route(&topo, s, d, None).unwrap();
            out.route.validate(topo.network(), None).unwrap();
            assert_eq!(out.route.src(), s);
            assert_eq!(out.route.dst(), d);
            // Two stages ⇒ at most 2× diameter.
            assert!(routing::hops(&out.route) as u64 <= 2 * p.diameter());
        }
    }

    #[test]
    fn per_pair_streams_make_routes_call_order_independent() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let router = VlbRouter::new(42);
        let pairs = [(0u32, 40u32), (1, 33), (2, 57)];
        let forward: Vec<Route> = pairs
            .iter()
            .map(|&(s, d)| router.route_simple(&topo, NodeId(s), NodeId(d)).unwrap())
            .collect();
        let backward: Vec<Route> = pairs
            .iter()
            .rev()
            .map(|&(s, d)| router.route_simple(&topo, NodeId(s), NodeId(d)).unwrap())
            .collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(f, b);
        }
        // A different seed picks different intermediates for at least one pair.
        let other = VlbRouter::new(43);
        assert!(pairs.iter().any(|&(s, d)| {
            router.route_simple(&topo, NodeId(s), NodeId(d)).unwrap()
                != other.route_simple(&topo, NodeId(s), NodeId(d)).unwrap()
        }));
    }

    /// The convergent permutation: every group sends all `m` of its flows
    /// through its position-0 level-0 uplink under deterministic routing
    /// (`(x, j) → (x ± digit0, j)` must cross `S_0` at position 0).
    fn convergent_pairs(p: &AbcccParams) -> Vec<(ServerAddr, ServerAddr)> {
        let mut pairs = Vec::new();
        for raw in 0..p.label_space() {
            let label = CubeLabel(raw);
            let d0 = label.digit(p, 0);
            let dst_label = label.with_digit(p, 0, (d0 + 1) % p.n());
            for j in 0..p.group_size() {
                pairs.push((
                    ServerAddr::new(p, label, j),
                    ServerAddr::new(p, dst_label, j),
                ));
            }
        }
        pairs
    }

    fn max_directed_load(net: &netgraph::Network, routes: &[Route]) -> u32 {
        let mut load = vec![0u32; net.link_count() * 2];
        for r in routes {
            for w in r.nodes().windows(2) {
                let l = net.find_link(w[0], w[1]).expect("adjacent");
                load[l.index() * 2 + usize::from(net.link(l).a == w[0])] += 1;
            }
        }
        load.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn direct_routing_concentrates_the_convergent_pattern() {
        let p = AbcccParams::new(4, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let shortest = DigitRouter::shortest();
        let routes: Vec<Route> = convergent_pairs(&p)
            .iter()
            .map(|&(s, d)| shortest.route_addrs(&p, s, d))
            .collect();
        // All m flows of each group share the position-0 S0 uplink.
        assert_eq!(max_directed_load(topo.network(), &routes), p.group_size());
    }

    #[test]
    fn vlb_is_oblivious_to_the_traffic_pattern() {
        // VLB's hot-link load on the crafted convergent pattern stays close
        // to its load on a random permutation of the same size — the
        // obliviousness guarantee deterministic routing lacks.
        let p = AbcccParams::new(4, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let net = topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let adv: Vec<Route> = convergent_pairs(&p)
            .iter()
            .map(|&(s, d)| VlbRouter::route_addrs_with(&p, s, d, &mut rng))
            .collect();
        // Random permutation with the same flow count, also through VLB.
        use rand::seq::SliceRandom;
        let mut dsts: Vec<u32> = (0..p.server_count() as u32).collect();
        dsts.shuffle(&mut rng);
        let rand_routes: Vec<Route> = dsts
            .iter()
            .enumerate()
            .filter(|(i, &d)| *i as u32 != d)
            .map(|(i, &d)| {
                VlbRouter::route_addrs_with(
                    &p,
                    ServerAddr::from_node_id(&p, NodeId(i as u32)),
                    ServerAddr::from_node_id(&p, NodeId(d)),
                    &mut rng,
                )
            })
            .collect();
        let adv_load = max_directed_load(net, &adv);
        let rand_load = max_directed_load(net, &rand_routes);
        assert!(
            f64::from(adv_load) <= 2.5 * f64::from(rand_load),
            "adversarial {adv_load} vs random {rand_load}"
        );
    }

    #[test]
    fn two_stage_hook_reproduces_the_router() {
        // The contract dcn-fib builds on: seeding the per-pair stream and
        // supplying a shortest-path-agreeing stage router reproduces
        // `VlbRouter::route` bit for bit.
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let router = VlbRouter::new(9);
        let shortest = DigitRouter::shortest();
        for (s, d) in [(0u32, 50u32), (3, 44), (17, 2)] {
            let (s, d) = (NodeId(s), NodeId(d));
            let via_router = router.route(&topo, s, d, None).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(pair_seed(9, s, d));
            let (route, attempts) = route_two_stage_with(
                &p,
                ServerAddr::from_node_id(&p, s),
                ServerAddr::from_node_id(&p, d),
                &mut rng,
                |a, b| shortest.route_addrs(&p, a, b),
            );
            assert_eq!(via_router.route, route);
            assert_eq!(via_router.attempts, attempts);
        }
    }

    #[test]
    fn rejects_switch_endpoint() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let sw = NodeId(p.server_count() as u32);
        let router = VlbRouter::new(0);
        assert!(router.route(&topo, sw, NodeId(0), None).is_err());
    }
}
