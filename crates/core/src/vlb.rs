//! Valiant load balancing (VLB) — two-stage randomized routing.
//!
//! Deterministic shortest-path routing concentrates adversarial traffic
//! (e.g. every flow correcting the same digit) onto few switches. VLB
//! fixes the worst case by routing via a uniformly random intermediate
//! group: `src → w → dst`, each stage with the shortest-path router. The
//! price is up to 2× path length on benign traffic; the win is that *any*
//! permutation spreads like uniform random traffic (experiment F17).

use crate::{routing, AbcccParams, CubeLabel, PermStrategy, ServerAddr};
use netgraph::{NodeId, Route, RouteError};
use rand::Rng;

/// Routes `src → dst` through a uniformly random intermediate server
/// (excluding the endpoints' own labels to keep the path simple). Falls
/// back to direct routing if no valid intermediate is found quickly
/// (only possible in tiny networks).
pub fn route_vlb(p: &AbcccParams, src: ServerAddr, dst: ServerAddr, rng: &mut impl Rng) -> Route {
    for _ in 0..16 {
        let label = CubeLabel(rng.gen_range(0..p.label_space()));
        if label == src.label || label == dst.label {
            continue;
        }
        let pos = rng.gen_range(0..p.group_size());
        let mid = ServerAddr::new(p, label, pos);
        let first = routing::route_addrs(p, src, mid, &PermStrategy::DestinationAware);
        let second = routing::route_addrs(p, mid, dst, &PermStrategy::DestinationAware);
        let mut nodes = first.nodes().to_vec();
        nodes.extend_from_slice(&second.nodes()[1..]);
        // Stages can intersect (they share digit corrections); only accept
        // simple concatenations.
        let mut seen = std::collections::HashSet::with_capacity(nodes.len());
        if nodes.iter().all(|n| seen.insert(*n)) {
            return Route::new(nodes);
        }
    }
    routing::route_addrs(p, src, dst, &PermStrategy::DestinationAware)
}

/// Id-based convenience wrapper.
///
/// # Errors
///
/// Returns [`RouteError::NotAServer`] for non-server endpoints.
pub fn route_vlb_ids(
    p: &AbcccParams,
    src: NodeId,
    dst: NodeId,
    rng: &mut impl Rng,
) -> Result<Route, RouteError> {
    if u64::from(src.0) >= p.server_count() {
        return Err(RouteError::NotAServer(src));
    }
    if u64::from(dst.0) >= p.server_count() {
        return Err(RouteError::NotAServer(dst));
    }
    Ok(route_vlb(
        p,
        ServerAddr::from_node_id(p, src),
        ServerAddr::from_node_id(p, dst),
        rng,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abccc;
    use netgraph::Topology;
    use rand::SeedableRng;

    #[test]
    fn vlb_routes_are_valid_and_bounded() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            if s == d {
                continue;
            }
            let r = route_vlb_ids(&p, s, d, &mut rng).unwrap();
            r.validate(topo.network(), None).unwrap();
            assert_eq!(r.src(), s);
            assert_eq!(r.dst(), d);
            // Two stages ⇒ at most 2× diameter.
            assert!(routing::hops(&r) as u64 <= 2 * p.diameter());
        }
    }

    /// The convergent permutation: every group sends all `m` of its flows
    /// through its position-0 level-0 uplink under deterministic routing
    /// (`(x, j) → (x ± digit0, j)` must cross `S_0` at position 0).
    fn convergent_pairs(p: &AbcccParams) -> Vec<(ServerAddr, ServerAddr)> {
        let mut pairs = Vec::new();
        for raw in 0..p.label_space() {
            let label = CubeLabel(raw);
            let d0 = label.digit(p, 0);
            let dst_label = label.with_digit(p, 0, (d0 + 1) % p.n());
            for j in 0..p.group_size() {
                pairs.push((
                    ServerAddr::new(p, label, j),
                    ServerAddr::new(p, dst_label, j),
                ));
            }
        }
        pairs
    }

    fn max_directed_load(net: &netgraph::Network, routes: &[Route]) -> u32 {
        let mut load = vec![0u32; net.link_count() * 2];
        for r in routes {
            for w in r.nodes().windows(2) {
                let l = net.find_link(w[0], w[1]).expect("adjacent");
                load[l.index() * 2 + usize::from(net.link(l).a == w[0])] += 1;
            }
        }
        load.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn direct_routing_concentrates_the_convergent_pattern() {
        let p = AbcccParams::new(4, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let routes: Vec<Route> = convergent_pairs(&p)
            .iter()
            .map(|&(s, d)| routing::route_addrs(&p, s, d, &PermStrategy::DestinationAware))
            .collect();
        // All m flows of each group share the position-0 S0 uplink.
        assert_eq!(max_directed_load(topo.network(), &routes), p.group_size());
    }

    #[test]
    fn vlb_is_oblivious_to_the_traffic_pattern() {
        // VLB's hot-link load on the crafted convergent pattern stays close
        // to its load on a random permutation of the same size — the
        // obliviousness guarantee deterministic routing lacks.
        let p = AbcccParams::new(4, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let net = topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let adv: Vec<Route> = convergent_pairs(&p)
            .iter()
            .map(|&(s, d)| route_vlb(&p, s, d, &mut rng))
            .collect();
        // Random permutation with the same flow count, also through VLB.
        use rand::seq::SliceRandom;
        let mut dsts: Vec<u32> = (0..p.server_count() as u32).collect();
        dsts.shuffle(&mut rng);
        let rand_routes: Vec<Route> = dsts
            .iter()
            .enumerate()
            .filter(|(i, &d)| *i as u32 != d)
            .map(|(i, &d)| {
                route_vlb(
                    &p,
                    ServerAddr::from_node_id(&p, NodeId(i as u32)),
                    ServerAddr::from_node_id(&p, NodeId(d)),
                    &mut rng,
                )
            })
            .collect();
        let adv_load = max_directed_load(net, &adv);
        let rand_load = max_directed_load(net, &rand_routes);
        assert!(
            f64::from(adv_load) <= 2.5 * f64::from(rand_load),
            "adversarial {adv_load} vs random {rand_load}"
        );
    }

    #[test]
    fn rejects_switch_endpoint() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let sw = NodeId(p.server_count() as u32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(route_vlb_ids(&p, sw, NodeId(0), &mut rng).is_err());
    }
}
