//! Parallel (internally vertex-disjoint) path construction.
//!
//! BCCC/ABCCC advertise "multiple near-equal parallel paths between any
//! pair of servers". This module constructs such sets natively: candidate
//! routes are generated from (a) the `m` rotations of the owner-group
//! correction order — which traverse disjoint intermediate groups when many
//! digits differ — and (b) digit detours through a proxy value `z`, then a
//! greedy filter keeps a maximal internally-disjoint subset.
//!
//! The construction is a fast heuristic: it achieves the full `min(deg)`
//! disjoint-path count for label-differing pairs in practice (asserted in
//! tests), while the exact maximum is always available from
//! [`netgraph::paths::vertex_disjoint_paths`] for comparison.

use crate::{routing, AbcccParams, PermStrategy, ServerAddr};
use netgraph::Route;

/// Builds up to `want` internally vertex-disjoint routes from `src` to
/// `dst`. The first returned route is always the primary
/// (destination-aware) shortest path; the set is pairwise internally
/// disjoint. At least one route is always returned for `src != dst`.
///
/// # Panics
///
/// Panics if `src == dst`.
pub fn parallel_routes(
    p: &AbcccParams,
    src: ServerAddr,
    dst: ServerAddr,
    want: usize,
) -> Vec<Route> {
    assert_ne!(
        (src.label, src.pos),
        (dst.label, dst.pos),
        "parallel paths need distinct endpoints"
    );
    let mut chosen: Vec<Route> = Vec::new();
    let push_if_disjoint = |r: Route, chosen: &mut Vec<Route>| {
        if chosen.len() >= want {
            return;
        }
        if is_simple(&r) && chosen.iter().all(|c| r.is_internally_disjoint_from(c)) {
            chosen.push(r);
        }
    };

    // Primary route first.
    push_if_disjoint(
        routing::DigitRouter::shortest().route_addrs(p, src, dst),
        &mut chosen,
    );

    // (a) Rotations of the owner-group cyclic order.
    let m = p.group_size();
    let diff = src.label.differing_levels(p, dst.label);
    for r in 0..m {
        let mut order = diff.clone();
        order.sort_by_key(|&i| ((p.owner(i) + m - r) % m, i));
        push_if_disjoint(routing::route_with_order(p, src, dst, &order), &mut chosen);
        let mut rev = diff.clone();
        rev.sort_by_key(|&i| ((p.owner(i) + m - r) % m, u32::MAX - i));
        push_if_disjoint(routing::route_with_order(p, src, dst, &rev), &mut chosen);
    }

    // (b) Arbitrary correction orders: interleaved owner visits produce the
    // zig-zag paths that grouped orders cannot express (e.g. the third
    // disjoint path between 3-port servers corrects levels 1,3,0,2).
    // Exhaustive for small digit sets, randomized otherwise.
    if diff.len() <= 5 {
        permute_all(&diff, &mut |order| {
            push_if_disjoint(routing::route_with_order(p, src, dst, order), &mut chosen);
        });
    } else {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            0x_9A7A ^ (u64::from(src.node_id(p).0) << 32) ^ u64::from(dst.node_id(p).0),
        );
        let mut order = diff.clone();
        for _ in 0..64 {
            order.shuffle(&mut rng);
            push_if_disjoint(routing::route_with_order(p, src, dst, &order), &mut chosen);
        }
    }
    if chosen.len() >= want {
        return chosen;
    }

    // (c) Digit detours: first move digit `level` to a proxy value `z`,
    // finish the normal corrections, and let the final stage restore it.
    for level in 0..p.levels() {
        for z in 0..p.n() {
            if chosen.len() >= want {
                return chosen;
            }
            if z == src.label.digit(p, level) || z == dst.label.digit(p, level) {
                continue;
            }
            let mid = ServerAddr::new(p, src.label.with_digit(p, level, z), p.owner(level));
            if (mid.label, mid.pos) == (dst.label, dst.pos) {
                continue;
            }
            // The two stages easily collide (the detoured digit is crossed
            // twice), so try several correction-order combinations.
            let stage_strategies = [
                PermStrategy::CyclicFromSource,
                PermStrategy::Ascending,
                PermStrategy::Descending,
                PermStrategy::DestinationAware,
            ];
            for s1 in &stage_strategies {
                for s2 in &stage_strategies {
                    let first = routing::DigitRouter::new(*s1).route_addrs(p, src, mid);
                    let second = routing::DigitRouter::new(*s2).route_addrs(p, mid, dst);
                    let mut nodes = first.nodes().to_vec();
                    nodes.extend_from_slice(&second.nodes()[1..]);
                    push_if_disjoint(Route::new(nodes), &mut chosen);
                }
            }
        }
    }
    chosen
}

/// Calls `f` with every permutation of `items` (items.len() ≤ 5 in use).
fn permute_all(items: &[u32], f: &mut impl FnMut(&[u32])) {
    fn rec(prefix: &mut Vec<u32>, remaining: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        if remaining.is_empty() {
            f(prefix);
            return;
        }
        for i in 0..remaining.len() {
            let x = remaining.remove(i);
            prefix.push(x);
            rec(prefix, remaining, f);
            prefix.pop();
            remaining.insert(i, x);
        }
    }
    rec(&mut Vec::new(), &mut items.to_vec(), f);
}

fn is_simple(r: &Route) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(r.nodes().len());
    r.nodes().iter().all(|n| seen.insert(*n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abccc, CubeLabel};
    use netgraph::Topology;

    fn check_set(topo: &Abccc, routes: &[Route]) {
        for r in routes {
            r.validate(topo.network(), None).unwrap();
        }
        for i in 0..routes.len() {
            for j in (i + 1)..routes.len() {
                assert!(
                    routes[i].is_internally_disjoint_from(&routes[j]),
                    "routes {i} and {j} intersect"
                );
            }
        }
    }

    #[test]
    fn bccc_pairs_get_two_disjoint_paths() {
        let p = AbcccParams::new(3, 2, 2).unwrap(); // h = 2: degree 2 servers
        let topo = Abccc::new(p).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 0, 0]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[1, 2, 1]), 1);
        let routes = parallel_routes(&p, src, dst, 8);
        check_set(&topo, &routes);
        assert!(routes.len() >= 2, "got {}", routes.len());
    }

    #[test]
    fn higher_h_gives_more_paths() {
        let p = AbcccParams::new(3, 3, 3).unwrap(); // L=4, m=2, degree 3
        let topo = Abccc::new(p).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 0, 0, 0]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[2, 1, 2, 1]), 1);
        let routes = parallel_routes(&p, src, dst, 8);
        check_set(&topo, &routes);
        assert!(routes.len() >= 3, "got {}", routes.len());
    }

    #[test]
    fn bcube_endpoint_paths() {
        let p = AbcccParams::new(4, 1, 3).unwrap(); // m = 1: plain BCube(4,1)
        let topo = Abccc::new(p).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 0]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[1, 1]), 0);
        let routes = parallel_routes(&p, src, dst, 8);
        check_set(&topo, &routes);
        assert!(routes.len() >= 2, "got {}", routes.len());
    }

    #[test]
    fn first_route_is_primary_shortest() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 1, 2]), 1);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[2, 0, 1]), 0);
        let routes = parallel_routes(&p, src, dst, 4);
        assert_eq!(
            routing::hops(&routes[0]) as u64,
            routing::distance(&p, src, dst)
        );
    }

    #[test]
    fn near_equal_lengths() {
        // "multiple NEAR-EQUAL parallel paths": disjoint alternatives are at
        // most a small constant longer than the primary.
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 0, 0]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[1, 1, 1]), 2);
        let routes = parallel_routes(&p, src, dst, 8);
        let primary = routing::hops(&routes[0]);
        for r in &routes {
            assert!(routing::hops(r) <= primary + 4);
        }
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoint_panics() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let a = ServerAddr::new(&p, CubeLabel(0), 0);
        parallel_routes(&p, a, a, 2);
    }
}
