//! Hop-by-hop forwarding — the data-plane view of ABCCC routing.
//!
//! The routing algorithm is *source-routed* in the BCube tradition: the
//! sender computes the digit-correction order once and stamps it into a
//! small fixed-size header; every intermediate server then makes an O(1)
//! local decision from the header and its own address — no routing tables,
//! no global state. This module implements that data plane and proves (in
//! tests) that the per-hop walk reconstructs exactly the path the
//! source-route computed.

use crate::{AbcccParams, PermStrategy, ServerAddr, SwitchAddr};
use netgraph::{NodeId, RouteError};
use serde::{Deserialize, Serialize};

/// The forwarding header a source stamps onto a packet: destination plus
/// the remaining digit-correction order. At most `k + 1` one-byte-ish
/// entries — comparable to BCube's source-routing header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingHeader {
    /// Final destination.
    pub dst: ServerAddr,
    /// Levels still to correct, front = next.
    pub pending: Vec<u32>,
}

impl ForwardingHeader {
    /// Builds the header at the source, choosing the correction order with
    /// `strategy`.
    pub fn new(p: &AbcccParams, src: ServerAddr, dst: ServerAddr, strategy: &PermStrategy) -> Self {
        ForwardingHeader {
            dst,
            pending: strategy.order(p, src, dst),
        }
    }

    /// `true` once every digit is corrected.
    pub fn digits_done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Header size in bytes under the paper-style encoding (2 bytes flat
    /// destination id per digit group + 1 byte per pending level).
    pub fn wire_bytes(&self) -> usize {
        8 + self.pending.len()
    }
}

/// One forwarding decision: which switch to hand the packet to and which
/// server it will reach there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopDecision {
    /// The switch the current server transmits into.
    pub via: SwitchAddr,
    /// The next server.
    pub next: ServerAddr,
}

/// The local forwarding function: given the current server and the packet
/// header, decide the next hop (and pop the header when a digit is
/// corrected). Returns `None` when `here` already is the destination.
///
/// The decision uses only `here`, the header and the static parameters —
/// exactly the information a real ABCCC server NIC would hold.
pub fn next_hop(
    p: &AbcccParams,
    here: ServerAddr,
    header: &mut ForwardingHeader,
) -> Option<HopDecision> {
    let dst = header.dst;
    if (here.label, here.pos) == (dst.label, dst.pos) {
        return None;
    }
    match header.pending.first().copied() {
        Some(level) => {
            let owner = p.owner(level);
            if here.pos != owner {
                // First reach the group member that owns the level.
                let next = ServerAddr::new(p, here.label, owner);
                Some(HopDecision {
                    via: SwitchAddr::Crossbar(here.label),
                    next,
                })
            } else {
                // Correct the digit across the level switch.
                header.pending.remove(0);
                let next_label = here.label.with_digit(p, level, dst.label.digit(p, level));
                Some(HopDecision {
                    via: SwitchAddr::Level {
                        level,
                        rest: here.label.rest_index(p, level),
                    },
                    next: ServerAddr::new(p, next_label, owner),
                })
            }
        }
        None => {
            // Digits done; final crossbar hop to the destination position.
            debug_assert_eq!(here.label, dst.label);
            Some(HopDecision {
                via: SwitchAddr::Crossbar(here.label),
                next: dst,
            })
        }
    }
}

/// Drives [`next_hop`] from `src` until delivery and returns the full node
/// path (servers and switches) — the data-plane replay of the control
/// plane's route.
///
/// # Errors
///
/// Returns [`RouteError::GaveUp`] if forwarding loops longer than the
/// theoretical worst case (cannot happen for well-formed headers; guards
/// against corrupted ones).
pub fn forward(
    p: &AbcccParams,
    src: ServerAddr,
    mut header: ForwardingHeader,
) -> Result<Vec<NodeId>, RouteError> {
    let mut nodes = vec![src.node_id(p)];
    let mut here = src;
    let max_hops = 2 * (p.levels() as usize + 1) + 2;
    for _ in 0..max_hops {
        match next_hop(p, here, &mut header) {
            None => return Ok(nodes),
            Some(d) => {
                nodes.push(d.via.node_id(p));
                nodes.push(d.next.node_id(p));
                here = d.next;
            }
        }
    }
    Err(RouteError::GaveUp {
        src: src.node_id(p),
        dst: header.dst.node_id(p),
        attempts: max_hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{routing, CubeLabel};
    use rand::{Rng, SeedableRng};

    #[test]
    fn data_plane_replays_control_plane_exactly() {
        for (n, k, h) in [(3, 2, 2), (2, 3, 3), (4, 1, 3), (2, 2, 4)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(33);
            for _ in 0..64 {
                let s = rng.gen_range(0..p.server_count());
                let d = rng.gen_range(0..p.server_count());
                let src = ServerAddr::from_node_id(&p, NodeId(s as u32));
                let dst = ServerAddr::from_node_id(&p, NodeId(d as u32));
                for strat in [PermStrategy::DestinationAware, PermStrategy::Ascending] {
                    let control = routing::DigitRouter::new(strat).route_addrs(&p, src, dst);
                    let header = ForwardingHeader::new(&p, src, dst, &strat);
                    let data = forward(&p, src, header).unwrap();
                    assert_eq!(control.nodes(), &data[..], "{p} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn delivery_to_self_is_empty() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let a = ServerAddr::new(&p, CubeLabel(1), 1);
        let mut h = ForwardingHeader::new(&p, a, a, &PermStrategy::Ascending);
        assert!(h.digits_done());
        assert_eq!(next_hop(&p, a, &mut h), None);
        assert_eq!(forward(&p, a, h).unwrap(), vec![a.node_id(&p)]);
    }

    #[test]
    fn header_shrinks_monotonically() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 0, 0]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[2, 2, 2]), 2);
        let mut header = ForwardingHeader::new(&p, src, dst, &PermStrategy::DestinationAware);
        let initial = header.pending.len();
        assert_eq!(initial, 3);
        let mut here = src;
        let mut sizes = vec![header.pending.len()];
        while let Some(d) = next_hop(&p, here, &mut header) {
            here = d.next;
            sizes.push(header.pending.len());
        }
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]));
        assert!(header.digits_done());
        assert_eq!((here.label, here.pos), (dst.label, dst.pos));
    }

    #[test]
    fn corrupted_header_is_caught() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let src = ServerAddr::new(&p, CubeLabel(0), 0);
        let dst = ServerAddr::new(&p, CubeLabel(3), 1);
        // A header that claims no pending digits but a different label
        // would make the final crossbar assertion fire in debug; with a
        // bogus repeated level it must hit the hop guard in release.
        let bogus = ForwardingHeader {
            dst: ServerAddr::new(&p, src.label, 1), // reachable: same label
            pending: vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        };
        // Levels keep toggling digit 0 forever → guard trips.
        assert!(matches!(
            forward(&p, src, bogus),
            Err(RouteError::GaveUp { .. })
        ));
        let _ = dst;
    }

    #[test]
    fn wire_bytes_are_small() {
        let p = AbcccParams::new(4, 5, 2).unwrap();
        let src = ServerAddr::from_node_id(&p, NodeId(0));
        let dst = ServerAddr::from_node_id(&p, NodeId((p.server_count() - 1) as u32));
        let h = ForwardingHeader::new(&p, src, dst, &PermStrategy::DestinationAware);
        assert!(h.wire_bytes() <= 8 + p.levels() as usize);
    }
}
