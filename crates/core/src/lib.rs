//! # abccc — Advanced BCube Connected Crossbars
//!
//! A faithful, fully-tested implementation of the **ABCCC** server-centric
//! data-center network of Z. Li and Y. Yang, *"ABCCC: An Advanced Cube
//! Based Network for Data Centers"* (ICDCS 2015): topology construction,
//! the addressing scheme, permutation-driven one-to-one routing, parallel
//! path construction, fault-tolerant detour routing, and the incremental
//! expansion planner.
//!
//! ## The structure in one paragraph
//!
//! `ABCCC(n, k, h)` replaces each virtual vertex of a generalized
//! `(k+1)`-digit base-`n` cube by a **group** of `m = ceil((k+1)/(h-1))`
//! servers joined through a local **crossbar** switch (the cube-connected-
//! cycles pattern that names the family). Each group member *owns* up to
//! `h − 1` consecutive cube levels and attaches to one `n`-port COTS switch
//! per owned level. Setting `h = 2` recovers BCCC; `h = k + 2` recovers
//! BCube; intermediate `h` trades diameter against per-server cost — the
//! tunable trade-off the paper advertises.
//!
//! ## Quickstart
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use netgraph::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = AbcccParams::new(4, 2, 3)?; // n=4 switches, order 2, 3-port servers
//! assert_eq!(params.server_count(), 128);
//! assert_eq!(params.diameter(), 5); // (k+1) + m = 3 + 2
//!
//! let topo = Abccc::new(params)?;
//! let route = topo.route(netgraph::NodeId(0), netgraph::NodeId(127))?;
//! route.validate(topo.network(), None).map_err(|e| e.to_string())?;
//! assert!(abccc::routing::hops(&route) as u64 <= params.diameter());
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`AbcccParams`] | parameters, closed-form size/diameter/bisection formulas |
//! | [`address`] | cube labels, server/switch addresses, flat-id codecs |
//! | [`Abccc`] | materialization as a [`netgraph::Network`] |
//! | [`PermStrategy`] | digit-correction orders (ICC'15 companion paper) |
//! | [`router`] | the unified [`Router`] trait, [`RouteTier`], [`RouteOutcome`] |
//! | [`routing`] | one-to-one routing ([`DigitRouter`]), closed-form distance |
//! | [`parallel`] | internally vertex-disjoint parallel paths |
//! | [`fault`] | fault-tolerant detour routing ([`ResilientRouter`], [`RetryBudget`]) |
//! | [`broadcast`] | one-to-all / one-to-many trees (GBC3 journal extension) |
//! | [`forwarding`] | hop-by-hop data plane with source-routing headers |
//! | [`vlb`] | Valiant load balancing ([`VlbRouter`]) for adversarial traffic |
//! | [`expansion`] | incremental growth planning and embedding verification |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod broadcast;
pub mod expansion;
pub mod fault;
pub mod forwarding;
pub mod parallel;
mod params;
mod permutation;
pub mod router;
pub mod routing;
mod topology;
pub mod vlb;

pub use address::{CubeLabel, ServerAddr, SwitchAddr};
pub use broadcast::BroadcastTree;
pub use expansion::ExpansionStep;
pub use fault::{ResilientRouter, RetryBudget};
pub use params::AbcccParams;
pub use permutation::PermStrategy;
pub use router::{RouteOutcome, RouteTier, Router};
pub use routing::DigitRouter;
pub use topology::{Abccc, MAX_MATERIALIZED_NODES};
pub use vlb::VlbRouter;
