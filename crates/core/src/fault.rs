//! Fault-tolerant routing: permutation retry, proxy detours, BFS fallback.
//!
//! ABCCC inherits the parallel-path structure of BCCC, so when the primary
//! route hits a failed element there is usually an alternative that merely
//! corrects the digits in a different order or detours through a proxy
//! group. The scheme here, in order:
//!
//! 1. try the deterministic permutation strategies;
//! 2. try randomized permutations (different digit orders explore
//!    physically disjoint intermediate groups);
//! 3. try random proxy servers `w`, concatenating `src → w → dst`;
//! 4. fall back to omniscient BFS on the surviving graph — this keeps the
//!    router *complete* (it fails only if the pair is truly disconnected),
//!    while steps 1–3 are the cheap local strategies a real deployment
//!    would use.

use crate::{routing, Abccc, PermStrategy};
use netgraph::{FaultMask, NodeId, Route, RouteError, Topology};
use rand::Rng;
use rand::SeedableRng;

/// How many randomized permutations to try before proxying.
const RANDOM_PERM_ATTEMPTS: u64 = 8;
/// How many random proxies to try before falling back to BFS.
const PROXY_ATTEMPTS: usize = 16;

/// Fault-tolerant one-to-one routing (see module docs for the scheme).
///
/// # Errors
///
/// * [`RouteError::NotAServer`] — an endpoint is not a server id;
/// * [`RouteError::Unreachable`] — an endpoint is failed, or the pair is
///   genuinely disconnected in the surviving graph.
pub fn route_avoiding(
    topo: &Abccc,
    src: NodeId,
    dst: NodeId,
    mask: &FaultMask,
) -> Result<Route, RouteError> {
    let p = *topo.params();
    if u64::from(src.0) >= p.server_count() {
        return Err(RouteError::NotAServer(src));
    }
    if u64::from(dst.0) >= p.server_count() {
        return Err(RouteError::NotAServer(dst));
    }
    if !mask.node_alive(src) || !mask.node_alive(dst) {
        dcn_telemetry::counter!("abccc.fault.endpoint_failed").inc();
        return Err(RouteError::Unreachable { src, dst });
    }
    let _span = dcn_telemetry::span!("abccc.fault.route_avoiding");
    dcn_telemetry::counter!("abccc.fault.requests").inc();
    let net = topo.network();

    // 1. Deterministic strategies.
    for strat in [
        PermStrategy::DestinationAware,
        PermStrategy::CyclicFromSource,
        PermStrategy::Ascending,
        PermStrategy::Descending,
        PermStrategy::Greedy,
    ] {
        let r = routing::route_ids(&p, src, dst, &strat)?;
        if r.validate(net, Some(mask)).is_ok() {
            dcn_telemetry::counter!("abccc.fault.deterministic_hit").inc();
            return Ok(r);
        }
    }

    // 2. Randomized permutations.
    for seed in 0..RANDOM_PERM_ATTEMPTS {
        let r = routing::route_ids(&p, src, dst, &PermStrategy::Random(seed))?;
        if r.validate(net, Some(mask)).is_ok() {
            dcn_telemetry::counter!("abccc.fault.random_perm_hit").inc();
            return Ok(r);
        }
    }

    // 3. Random proxies.
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        0x_FA17_u64 ^ (u64::from(src.0) << 32) ^ u64::from(dst.0),
    );
    for _ in 0..PROXY_ATTEMPTS {
        let w = NodeId(rng.gen_range(0..p.server_count()) as u32);
        if w == src || w == dst || !mask.node_alive(w) {
            continue;
        }
        let first = routing::route_ids(&p, src, w, &PermStrategy::DestinationAware)?;
        let second = routing::route_ids(&p, w, dst, &PermStrategy::DestinationAware)?;
        let mut nodes = first.nodes().to_vec();
        nodes.extend_from_slice(&second.nodes()[1..]);
        let candidate = Route::new(nodes);
        // validate() also rejects non-simple concatenations.
        if candidate.validate(net, Some(mask)).is_ok() {
            dcn_telemetry::counter!("abccc.fault.proxy_hit").inc();
            return Ok(candidate);
        }
    }

    // 4. Complete fallback.
    dcn_telemetry::counter!("abccc.fault.bfs_fallback").inc();
    match netgraph::bfs::shortest_path(net, src, dst, Some(mask)).map(Route::new) {
        Some(r) => Ok(r),
        None => {
            dcn_telemetry::counter!("abccc.fault.unreachable").inc();
            Err(RouteError::Unreachable { src, dst })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbcccParams;

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap() // 81 labels, m=3
    }

    #[test]
    fn no_faults_returns_primary() {
        let t = topo();
        let mask = FaultMask::new(t.network());
        let a = NodeId(0);
        let b = NodeId((t.params().server_count() - 1) as u32);
        let r = route_avoiding(&t, a, b, &mask).unwrap();
        let primary = t.route(a, b).unwrap();
        assert_eq!(r, primary);
    }

    #[test]
    fn detours_around_failed_intermediate() {
        let t = topo();
        let a = NodeId(0);
        let b = NodeId((t.params().server_count() - 1) as u32);
        let primary = t.route(a, b).unwrap();
        // Fail every interior node of the primary route.
        let mut mask = FaultMask::new(t.network());
        for &n in &primary.nodes()[1..primary.nodes().len() - 1] {
            mask.fail_node(n);
        }
        let r = route_avoiding(&t, a, b, &mask).unwrap();
        r.validate(t.network(), Some(&mask)).unwrap();
        assert_eq!(r.src(), a);
        assert_eq!(r.dst(), b);
    }

    #[test]
    fn failed_endpoint_is_unreachable() {
        let t = topo();
        let mut mask = FaultMask::new(t.network());
        mask.fail_node(NodeId(5));
        assert!(matches!(
            route_avoiding(&t, NodeId(5), NodeId(0), &mask),
            Err(RouteError::Unreachable { .. })
        ));
        assert!(matches!(
            route_avoiding(&t, NodeId(0), NodeId(5), &mask),
            Err(RouteError::Unreachable { .. })
        ));
    }

    #[test]
    fn isolated_destination_is_unreachable() {
        let t = topo();
        let b = NodeId(7);
        let mut mask = FaultMask::new(t.network());
        // Cut every cable of b.
        for &(_, l) in t.network().neighbors(b) {
            mask.fail_link(l);
        }
        assert!(matches!(
            route_avoiding(&t, NodeId(0), b, &mask),
            Err(RouteError::Unreachable { .. })
        ));
    }

    #[test]
    fn survives_heavy_random_failures_when_connected() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let t = topo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let servers: Vec<NodeId> = t.network().server_ids().collect();
        let mut mask = FaultMask::new(t.network());
        // Fail 10% of servers.
        for s in servers.choose_multiple(&mut rng, servers.len() / 10) {
            mask.fail_node(*s);
        }
        let alive: Vec<NodeId> = servers
            .iter()
            .copied()
            .filter(|&s| mask.node_alive(s))
            .collect();
        let mut routed = 0;
        for pair in alive.chunks(2).take(40) {
            if pair.len() < 2 {
                continue;
            }
            match route_avoiding(&t, pair[0], pair[1], &mask) {
                Ok(r) => {
                    r.validate(t.network(), Some(&mask)).unwrap();
                    routed += 1;
                }
                Err(RouteError::Unreachable { .. }) => {
                    // Acceptable only if BFS agrees.
                    assert!(netgraph::bfs::shortest_path(
                        t.network(),
                        pair[0],
                        pair[1],
                        Some(&mask)
                    )
                    .is_none());
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(routed > 0);
    }

    #[test]
    fn rejects_switch_endpoint() {
        let t = topo();
        let mask = FaultMask::new(t.network());
        let sw = NodeId(t.params().server_count() as u32);
        assert!(matches!(
            route_avoiding(&t, sw, NodeId(0), &mask),
            Err(RouteError::NotAServer(_))
        ));
    }
}
