//! Fault-tolerant routing: permutation retry, proxy detours, BFS fallback.
//!
//! ABCCC inherits the parallel-path structure of BCCC, so when the primary
//! route hits a failed element there is usually an alternative that merely
//! corrects the digits in a different order or detours through a proxy
//! group. The escalation ladder of [`ResilientRouter`], in order:
//!
//! 1. try the deterministic permutation strategies;
//! 2. try randomized permutations (different digit orders explore
//!    physically disjoint intermediate groups);
//! 3. try random proxy servers `w`, concatenating `src → w → dst`;
//! 4. fall back to omniscient BFS on the surviving graph — this keeps the
//!    router *complete* (it fails only if the pair is truly disconnected),
//!    while steps 1–3 are the cheap local strategies a real deployment
//!    would use.
//!
//! Every ladder width is configurable through [`RetryBudget`] (the former
//! hard-coded `RANDOM_PERM_ATTEMPTS` / `PROXY_ATTEMPTS` constants are its
//! defaults), and each escalation past a tier accrues deterministic
//! *backoff units* — an abstract, seeded stand-in for the pacing delay a
//! deployment would insert between retry rounds, reported per route in
//! [`RouteOutcome::backoff_units`] and aggregated by the campaign engine.

use crate::router::{check_endpoints, pair_seed, RouteOutcome, RouteTier, Router};
use crate::routing::DigitRouter;
use crate::{Abccc, PermStrategy};
use netgraph::{FaultMask, NodeId, Route, RouteError, Topology};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt mixed into the pair seed for the backoff-jitter stream so it never
/// correlates with the proxy-selection stream.
const BACKOFF_SALT: u64 = 0xB0FF;

/// The deterministic strategies tried first, cheapest tier of the ladder.
const DETERMINISTIC_LADDER: [PermStrategy; 5] = [
    PermStrategy::DestinationAware,
    PermStrategy::CyclicFromSource,
    PermStrategy::Ascending,
    PermStrategy::Descending,
    PermStrategy::Greedy,
];

/// Attempt budgets and backoff parameters of a [`ResilientRouter`].
///
/// The defaults reproduce the historical hard-coded scheme exactly
/// (8 randomized permutations, 16 proxies, proxy RNG salted with
/// `0xFA17`, BFS fallback on), so `ResilientRouter::default()` routes
/// bit-identically to the old `route_avoiding` free function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryBudget {
    /// How many randomized permutations to try before proxying.
    pub random_perm_attempts: u64,
    /// How many random proxies to try before the final fallback.
    pub proxy_attempts: usize,
    /// Base seed for the per-pair proxy-selection and jitter streams.
    pub seed: u64,
    /// Whether to run the omniscient BFS fallback after the local tiers.
    /// With it on the router is complete; with it off the router fails
    /// with [`RouteError::GaveUp`] once the local budget is spent.
    pub bfs_fallback: bool,
    /// Backoff units accrued when escalating past tier `t` (1-based):
    /// `backoff_base << (t - 1)` — exponential pacing.
    pub backoff_base: u64,
    /// Upper bound (inclusive) of the seeded per-escalation jitter added
    /// on top of the exponential term.
    pub backoff_jitter: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            random_perm_attempts: 8,
            proxy_attempts: 16,
            seed: 0xFA17,
            bfs_fallback: true,
            backoff_base: 4,
            backoff_jitter: 3,
        }
    }
}

impl RetryBudget {
    /// Backoff accrued when escalating past 1-based tier `tier`.
    fn backoff_step(&self, tier: u32, rng: &mut impl Rng) -> u64 {
        let exp = self.backoff_base << (tier - 1);
        let jitter = if self.backoff_jitter == 0 {
            0
        } else {
            rng.gen_range(0..=self.backoff_jitter)
        };
        exp + jitter
    }
}

/// The escalating fault-tolerant [`Router`] (see module docs for the
/// ladder). `ResilientRouter::default()` is the historical scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilientRouter {
    budget: RetryBudget,
}

impl ResilientRouter {
    /// A router with an explicit attempt/backoff budget.
    pub fn new(budget: RetryBudget) -> Self {
        ResilientRouter { budget }
    }

    /// The budget this router escalates under.
    pub fn budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// Runs the full escalation ladder, reporting the tier that answered
    /// plus attempt/backoff accounting. `mask = None` behaves as a
    /// fault-free network (the primary tier always answers).
    ///
    /// # Errors
    ///
    /// * [`RouteError::NotAServer`] — an endpoint is not a server id;
    /// * [`RouteError::Unreachable`] — an endpoint is failed, or the pair
    ///   is genuinely disconnected in the surviving graph;
    /// * [`RouteError::GaveUp`] — the local budget was exhausted and
    ///   [`RetryBudget::bfs_fallback`] is off.
    pub fn route_explained(
        &self,
        topo: &Abccc,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<RouteOutcome, RouteError> {
        check_endpoints(topo, src, dst, mask)?;
        let _span = dcn_telemetry::span!("abccc.fault.route_avoiding");
        dcn_telemetry::counter!("abccc.fault.requests").inc();
        let p = *topo.params();
        let net = topo.network();
        let mut attempts: u32 = 0;
        let mut backoff: u64 = 0;
        let mut jitter_rng =
            rand::rngs::StdRng::seed_from_u64(pair_seed(self.budget.seed ^ BACKOFF_SALT, src, dst));

        // 1. Deterministic strategies.
        for (i, strat) in DETERMINISTIC_LADDER.iter().enumerate() {
            attempts += 1;
            let r = DigitRouter::new(*strat).route_ids(&p, src, dst)?;
            if r.validate(net, mask).is_ok() {
                dcn_telemetry::counter!("abccc.fault.deterministic_hit").inc();
                return Ok(RouteOutcome {
                    route: r,
                    tier: if i == 0 {
                        RouteTier::Primary
                    } else {
                        RouteTier::Deterministic
                    },
                    attempts,
                    backoff_units: backoff,
                });
            }
        }
        backoff += self.budget.backoff_step(1, &mut jitter_rng);

        // 2. Randomized permutations.
        for seed in 0..self.budget.random_perm_attempts {
            attempts += 1;
            let r = DigitRouter::new(PermStrategy::Random(seed)).route_ids(&p, src, dst)?;
            if r.validate(net, mask).is_ok() {
                dcn_telemetry::counter!("abccc.fault.random_perm_hit").inc();
                return Ok(RouteOutcome {
                    route: r,
                    tier: RouteTier::RandomPerm,
                    attempts,
                    backoff_units: backoff,
                });
            }
        }
        backoff += self.budget.backoff_step(2, &mut jitter_rng);

        // 3. Random proxies.
        let shortest = DigitRouter::shortest();
        let mut rng = rand::rngs::StdRng::seed_from_u64(pair_seed(self.budget.seed, src, dst));
        for _ in 0..self.budget.proxy_attempts {
            attempts += 1;
            let w = NodeId(rng.gen_range(0..p.server_count()) as u32);
            if w == src || w == dst || mask.is_some_and(|m| !m.node_alive(w)) {
                continue;
            }
            let first = shortest.route_ids(&p, src, w)?;
            let second = shortest.route_ids(&p, w, dst)?;
            let mut nodes = first.nodes().to_vec();
            nodes.extend_from_slice(&second.nodes()[1..]);
            let candidate = Route::new(nodes);
            // validate() also rejects non-simple concatenations.
            if candidate.validate(net, mask).is_ok() {
                dcn_telemetry::counter!("abccc.fault.proxy_hit").inc();
                return Ok(RouteOutcome {
                    route: candidate,
                    tier: RouteTier::Proxy,
                    attempts,
                    backoff_units: backoff,
                });
            }
        }
        backoff += self.budget.backoff_step(3, &mut jitter_rng);

        // 4. Complete fallback (when budgeted).
        if !self.budget.bfs_fallback {
            return Err(RouteError::GaveUp {
                src,
                dst,
                attempts: attempts as usize,
            });
        }
        dcn_telemetry::counter!("abccc.fault.bfs_fallback").inc();
        attempts += 1;
        match netgraph::bfs::shortest_path(net, src, dst, mask).map(Route::new) {
            Some(r) => Ok(RouteOutcome {
                route: r,
                tier: RouteTier::Bfs,
                attempts,
                backoff_units: backoff,
            }),
            None => {
                dcn_telemetry::counter!("abccc.fault.unreachable").inc();
                Err(RouteError::Unreachable { src, dst })
            }
        }
    }
}

impl Router for ResilientRouter {
    fn name(&self) -> String {
        "resilient".to_string()
    }

    fn route(
        &self,
        topo: &Abccc,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<RouteOutcome, RouteError> {
        self.route_explained(topo, src, dst, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbcccParams;
    use netgraph::{FaultScenario, Topology};

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap() // 81 labels, m=3
    }

    #[test]
    fn no_faults_returns_primary() {
        let t = topo();
        let mask = FaultMask::new(t.network());
        let a = NodeId(0);
        let b = NodeId((t.params().server_count() - 1) as u32);
        let out = ResilientRouter::default()
            .route_explained(&t, a, b, Some(&mask))
            .unwrap();
        let primary = t.route(a, b).unwrap();
        assert_eq!(out.route, primary);
        assert_eq!(out.tier, RouteTier::Primary);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_units, 0);
    }

    #[test]
    fn detours_around_failed_intermediate() {
        let t = topo();
        let a = NodeId(0);
        let b = NodeId((t.params().server_count() - 1) as u32);
        let primary = t.route(a, b).unwrap();
        // Fail every interior node of the primary route.
        let interior = primary.nodes()[1..primary.nodes().len() - 1].to_vec();
        let mask = FaultScenario::seeded(0)
            .fail_nodes(interior)
            .build(t.network());
        let out = ResilientRouter::default()
            .route_explained(&t, a, b, Some(&mask))
            .unwrap();
        out.route.validate(t.network(), Some(&mask)).unwrap();
        assert_eq!(out.route.src(), a);
        assert_eq!(out.route.dst(), b);
        assert!(out.tier > RouteTier::Primary);
        assert!(out.attempts > 1);
    }

    #[test]
    fn failed_endpoint_is_unreachable() {
        let t = topo();
        let r = ResilientRouter::default();
        let mask = FaultScenario::seeded(0)
            .fail_nodes([NodeId(5)])
            .build(t.network());
        assert!(matches!(
            r.route(&t, NodeId(5), NodeId(0), Some(&mask)),
            Err(RouteError::Unreachable { .. })
        ));
        assert!(matches!(
            r.route(&t, NodeId(0), NodeId(5), Some(&mask)),
            Err(RouteError::Unreachable { .. })
        ));
    }

    #[test]
    fn isolated_destination_is_unreachable() {
        let t = topo();
        let b = NodeId(7);
        // Cut every cable of b.
        let cables: Vec<_> = t.network().neighbors(b).iter().map(|&(_, l)| l).collect();
        let mask = FaultScenario::seeded(0)
            .fail_links(cables)
            .build(t.network());
        assert!(matches!(
            ResilientRouter::default().route(&t, NodeId(0), b, Some(&mask)),
            Err(RouteError::Unreachable { .. })
        ));
    }

    #[test]
    fn gives_up_without_bfs_when_budget_spent() {
        let t = topo();
        let b = NodeId(7);
        let cables: Vec<_> = t.network().neighbors(b).iter().map(|&(_, l)| l).collect();
        let mask = FaultScenario::seeded(0)
            .fail_links(cables)
            .build(t.network());
        let local_only = ResilientRouter::new(RetryBudget {
            bfs_fallback: false,
            ..RetryBudget::default()
        });
        assert!(matches!(
            local_only.route(&t, NodeId(0), b, Some(&mask)),
            Err(RouteError::GaveUp { .. })
        ));
    }

    #[test]
    fn budget_widths_are_respected_and_backoff_accrues() {
        let t = topo();
        let b = NodeId(7);
        let cables: Vec<_> = t.network().neighbors(b).iter().map(|&(_, l)| l).collect();
        let mask = FaultScenario::seeded(0)
            .fail_links(cables)
            .build(t.network());
        // Destination is isolated: every tier runs dry, so attempts hit the
        // whole configured budget before BFS reports unreachable.
        let budget = RetryBudget {
            random_perm_attempts: 3,
            proxy_attempts: 5,
            backoff_base: 2,
            backoff_jitter: 0,
            ..RetryBudget::default()
        };
        let r = ResilientRouter::new(budget);
        match r.route_explained(&t, NodeId(0), b, Some(&mask)) {
            Err(RouteError::Unreachable { .. }) => {}
            other => panic!("expected unreachable, got {other:?}"),
        }
        // A reachable-but-obstructed pair reports nonzero backoff once it
        // escalates past the deterministic tier.
        let a = NodeId(0);
        let c = NodeId((t.params().server_count() - 1) as u32);
        let primary = t.route(a, c).unwrap();
        let interior = primary.nodes()[1..primary.nodes().len() - 1].to_vec();
        let mask2 = FaultScenario::seeded(0)
            .fail_nodes(interior)
            .build(t.network());
        let out = r.route_explained(&t, a, c, Some(&mask2)).unwrap();
        if out.tier > RouteTier::Deterministic {
            assert!(out.backoff_units >= budget.backoff_base);
        }
    }

    #[test]
    fn trait_route_matches_route_explained() {
        let t = topo();
        let mask = FaultScenario::seeded(11)
            .fail_servers_frac(0.1)
            .build(t.network());
        let r = ResilientRouter::default();
        for (s, d) in [(0u32, 80u32), (3, 44), (9, 61)] {
            let (s, d) = (NodeId(s), NodeId(d));
            let via_trait = Router::route(&r, &t, s, d, Some(&mask));
            let explained = r.route_explained(&t, s, d, Some(&mask));
            assert_eq!(via_trait, explained);
        }
    }

    #[test]
    fn survives_heavy_random_failures_when_connected() {
        let t = topo();
        let router = ResilientRouter::default();
        let mask = FaultScenario::seeded(7)
            .fail_servers_frac(0.1)
            .build(t.network());
        let alive: Vec<NodeId> = t
            .network()
            .server_ids()
            .filter(|&s| mask.node_alive(s))
            .collect();
        let mut routed = 0;
        for pair in alive.chunks(2).take(40) {
            if pair.len() < 2 {
                continue;
            }
            match router.route_explained(&t, pair[0], pair[1], Some(&mask)) {
                Ok(out) => {
                    out.route.validate(t.network(), Some(&mask)).unwrap();
                    routed += 1;
                }
                Err(RouteError::Unreachable { .. }) => {
                    // Acceptable only if BFS agrees.
                    assert!(netgraph::bfs::shortest_path(
                        t.network(),
                        pair[0],
                        pair[1],
                        Some(&mask)
                    )
                    .is_none());
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(routed > 0);
    }

    #[test]
    fn rejects_switch_endpoint() {
        let t = topo();
        let mask = FaultMask::new(t.network());
        let sw = NodeId(t.params().server_count() as u32);
        assert!(matches!(
            ResilientRouter::default().route(&t, sw, NodeId(0), Some(&mask)),
            Err(RouteError::NotAServer(_))
        ));
    }
}
