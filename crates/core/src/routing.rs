//! One-to-one routing in ABCCC.
//!
//! `route_addrs` walks the differing address digits in the order chosen by
//! a [`PermStrategy`]: a digit at level `i` can only be corrected by the
//! group member that owns level `i`, so the walk interleaves crossbar hops
//! (to reach the owner) with level-switch hops (to correct the digit), and
//! finishes with at most one crossbar hop to the destination's position.
//!
//! With the [`PermStrategy::DestinationAware`] order the produced path is a
//! *shortest* path (verified against BFS in the test suite), and
//! [`distance`] gives its length in closed form.

use crate::router::{check_endpoints, RouteOutcome, Router};
use crate::{Abccc, AbcccParams, PermStrategy, ServerAddr, SwitchAddr};
use netgraph::{FaultMask, NodeId, Route, RouteError, Topology};

/// Deterministic digit-correction router: the [`Router`] impl of the
/// family's native one-to-one algorithm.
///
/// A `DigitRouter` is *fault-oblivious*: it always produces the route its
/// [`PermStrategy`] dictates. When [`Router::route`] is called with a
/// fault mask, the produced route is validated against it and rejected
/// with [`RouteError::GaveUp`] if it crosses a failed element — the router
/// does not detour (use
/// [`ResilientRouter`](crate::fault::ResilientRouter) for that).
///
/// ```
/// use abccc::{routing::DigitRouter, Abccc, AbcccParams, Router};
/// let topo = Abccc::new(AbcccParams::new(4, 1, 2).unwrap()).unwrap();
/// let out = DigitRouter::shortest()
///     .route(&topo, netgraph::NodeId(0), netgraph::NodeId(31), None)
///     .unwrap();
/// assert_eq!(out.tier, abccc::RouteTier::Primary);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigitRouter {
    strategy: PermStrategy,
}

impl DigitRouter {
    /// A router correcting digits in the order `strategy` dictates.
    pub fn new(strategy: PermStrategy) -> Self {
        DigitRouter { strategy }
    }

    /// The shortest-path router ([`PermStrategy::DestinationAware`]).
    pub fn shortest() -> Self {
        DigitRouter::new(PermStrategy::DestinationAware)
    }

    /// The strategy this router corrects digits with.
    pub fn strategy(&self) -> &PermStrategy {
        &self.strategy
    }

    /// Routes between two server addresses. Pure — needs only the
    /// parameterization, and always succeeds on a fault-free network.
    pub fn route_addrs(&self, p: &AbcccParams, src: ServerAddr, dst: ServerAddr) -> Route {
        let order = self.strategy.order(p, src, dst);
        route_with_order(p, src, dst, &order)
    }

    /// Routes between two server node ids.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NotAServer`] if an endpoint is not a server id
    /// of this parameterization.
    pub fn route_ids(
        &self,
        p: &AbcccParams,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Route, RouteError> {
        dcn_telemetry::counter!("abccc.routing.route_ids").inc();
        if u64::from(src.0) >= p.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= p.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        Ok(self.route_addrs(
            p,
            ServerAddr::from_node_id(p, src),
            ServerAddr::from_node_id(p, dst),
        ))
    }
}

impl Router for DigitRouter {
    fn name(&self) -> String {
        format!("digit:{}", self.strategy.label())
    }

    fn route(
        &self,
        topo: &Abccc,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<RouteOutcome, RouteError> {
        check_endpoints(topo, src, dst, mask)?;
        let route = self.route_ids(topo.params(), src, dst)?;
        if let Some(m) = mask {
            if route.validate(topo.network(), Some(m)).is_err() {
                return Err(RouteError::GaveUp {
                    src,
                    dst,
                    attempts: 1,
                });
            }
        }
        Ok(RouteOutcome::primary(route))
    }
}

/// Routes with an explicit correction order.
///
/// # Panics
///
/// Panics if `order` is not a permutation of exactly the levels where the
/// two labels differ.
pub fn route_with_order(p: &AbcccParams, src: ServerAddr, dst: ServerAddr, order: &[u32]) -> Route {
    {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            src.label.differing_levels(p, dst.label),
            "order must be a permutation of the differing levels"
        );
    }
    let mut nodes = vec![src.node_id(p)];
    let mut cur = src;
    for &level in order {
        let owner = p.owner(level);
        if cur.pos != owner {
            nodes.push(SwitchAddr::Crossbar(cur.label).node_id(p));
            cur.pos = owner;
            nodes.push(cur.node_id(p));
        }
        nodes.push(
            SwitchAddr::Level {
                level,
                rest: cur.label.rest_index(p, level),
            }
            .node_id(p),
        );
        cur.label = cur.label.with_digit(p, level, dst.label.digit(p, level));
        nodes.push(cur.node_id(p));
    }
    if cur.pos != dst.pos {
        nodes.push(SwitchAddr::Crossbar(cur.label).node_id(p));
        nodes.push(dst.node_id(p));
    }
    Route::new(nodes)
}

/// Server-hop length of an ABCCC route without needing the materialized
/// network (routes alternate server/switch nodes).
pub fn hops(route: &Route) -> usize {
    route.link_hops() / 2
}

/// Closed-form shortest-path length (server hops) between two servers —
/// the distance realized by [`PermStrategy::DestinationAware`] routing and
/// verified equal to BFS in the test suite.
///
/// Derivation: every differing digit costs one level-switch hop; in
/// addition the walk must visit each owner position with work, paying one
/// crossbar hop per position change. With `g` distinct owners among the
/// differing levels the position moves are `g − 1` transitions plus one
/// initial move if the source's position owns no work plus one final move
/// if the walk cannot end at the destination's position.
pub fn distance(p: &AbcccParams, src: ServerAddr, dst: ServerAddr) -> u64 {
    let diff = src.label.differing_levels(p, dst.label);
    if diff.is_empty() {
        return u64::from(src.pos != dst.pos);
    }
    let mut owners: Vec<u32> = diff.iter().map(|&i| p.owner(i)).collect();
    owners.dedup(); // diff ascending ⇒ owners non-decreasing
    let g = owners.len() as u64;
    let src_in = owners.contains(&src.pos);
    let dst_in = owners.contains(&dst.pos);
    let moves = match (src_in, dst_in) {
        (true, true) => {
            if src.pos != dst.pos {
                g - 1
            } else if g == 1 {
                0
            } else {
                g
            }
        }
        (true, false) | (false, true) => g,
        (false, false) => g + 1,
    };
    diff.len() as u64 + moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abccc, CubeLabel};
    use netgraph::Topology;

    fn all_pairs_check(n: u32, k: u32, h: u32) {
        let p = AbcccParams::new(n, k, h).unwrap();
        let topo = Abccc::new(p).unwrap();
        let net = topo.network();
        // Per-source sweeps share one scratch: this loop is the hot part
        // of the test suite and used to allocate a fresh distance vector
        // for every server.
        let engine = netgraph::DistanceEngine::new(net);
        let mut scratch = netgraph::BfsScratch::new();
        for s_raw in 0..p.server_count() {
            let src_id = NodeId(s_raw as u32);
            engine.distances_into(src_id, &mut scratch);
            let bfs = &scratch.dist;
            let src = ServerAddr::from_node_id(&p, src_id);
            for d_raw in 0..p.server_count() {
                let dst_id = NodeId(d_raw as u32);
                let dst = ServerAddr::from_node_id(&p, dst_id);
                let route = DigitRouter::shortest().route_addrs(&p, src, dst);
                route.validate(net, None).unwrap_or_else(|e| {
                    panic!("{p}: invalid route {src:?}->{dst:?}: {e}");
                });
                assert_eq!(route.src(), src_id);
                assert_eq!(route.dst(), dst_id);
                let exact = u64::from(bfs[dst_id.index()]);
                assert_eq!(
                    distance(&p, src, dst),
                    exact,
                    "{p}: distance formula wrong for {} -> {}",
                    src.display(&p),
                    dst.display(&p)
                );
                assert_eq!(
                    hops(&route) as u64,
                    exact,
                    "{p}: DestinationAware not optimal for {} -> {}",
                    src.display(&p),
                    dst.display(&p)
                );
            }
        }
    }

    #[test]
    fn destination_aware_is_shortest_bccc_like() {
        all_pairs_check(2, 2, 2); // m = 3
        all_pairs_check(3, 1, 2); // m = 2
    }

    #[test]
    fn destination_aware_is_shortest_intermediate_h() {
        all_pairs_check(2, 3, 3); // L = 4, m = 2
        all_pairs_check(2, 4, 4); // L = 5, m = 2, ragged ownership
    }

    #[test]
    fn destination_aware_is_shortest_bcube_endpoint() {
        all_pairs_check(3, 1, 3); // m = 1 (BCube)
        all_pairs_check(2, 2, 4); // m = 1 (BCube)
    }

    #[test]
    fn every_strategy_produces_valid_routes() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let topo = Abccc::new(p).unwrap();
        let net = topo.network();
        let src = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[0, 1, 2]), 0);
        let dst = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[2, 1, 0]), 2);
        for strat in PermStrategy::all() {
            let r = DigitRouter::new(strat).route_addrs(&p, src, dst);
            r.validate(net, None)
                .unwrap_or_else(|e| panic!("{}: {e}", strat.label()));
            assert!(hops(&r) as u64 >= distance(&p, src, dst));
        }
    }

    #[test]
    fn trivial_and_intragroup_routes() {
        let p = AbcccParams::new(4, 2, 2).unwrap();
        let a = ServerAddr::new(&p, CubeLabel(17), 0);
        let b = ServerAddr::new(&p, CubeLabel(17), 2);
        let r_self = DigitRouter::shortest().route_addrs(&p, a, a);
        assert_eq!(hops(&r_self), 0);
        let r = DigitRouter::shortest().route_addrs(&p, a, b);
        assert_eq!(hops(&r), 1); // one crossbar hop
        assert_eq!(distance(&p, a, b), 1);
    }

    #[test]
    fn route_ids_rejects_switch_endpoints() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let sw = NodeId(p.server_count() as u32); // first switch
        assert!(matches!(
            DigitRouter::new(PermStrategy::Ascending).route_ids(&p, sw, NodeId(0)),
            Err(RouteError::NotAServer(_))
        ));
        assert!(matches!(
            DigitRouter::new(PermStrategy::Ascending).route_ids(&p, NodeId(0), sw),
            Err(RouteError::NotAServer(_))
        ));
    }

    #[test]
    #[should_panic(expected = "permutation of the differing levels")]
    fn wrong_order_panics() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let a = ServerAddr::new(&p, CubeLabel(0), 0);
        let b = ServerAddr::new(&p, CubeLabel(3), 0); // differs at levels 0,1
        route_with_order(&p, a, b, &[0]);
    }

    #[test]
    fn worst_case_matches_diameter_formula() {
        for (n, k, h) in [(2, 2, 2), (3, 1, 2), (2, 3, 3), (3, 1, 3), (2, 4, 4)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let mut worst = 0u64;
            for s in 0..p.server_count() {
                for d in 0..p.server_count() {
                    let a = ServerAddr::from_node_id(&p, NodeId(s as u32));
                    let b = ServerAddr::from_node_id(&p, NodeId(d as u32));
                    worst = worst.max(distance(&p, a, b));
                }
            }
            assert_eq!(worst, p.diameter(), "{p}");
        }
    }
}
