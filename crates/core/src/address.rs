//! The ABCCC addressing scheme.
//!
//! A server is addressed `(x, j)` where `x = x_k x_{k-1} … x_0` is the
//! **cube label** (`k + 1` digits in base `n`) and `j` is the **group
//! position** (`0 ≤ j < m`). Switches are addressed either as the crossbar
//! of a cube label or as the level-`i` switch of a label-with-digit-`i`
//! deleted ("rest").
//!
//! Flat [`NodeId`]s are laid out servers-first (crate convention):
//!
//! ```text
//! server   (x, j)        ↦ x·m + j                            (0 .. N)
//! crossbar C_x           ↦ N + x                              (next n^(k+1), absent when m = 1)
//! level sw S_(i, rest)   ↦ N + #crossbars + i·n^k + rest
//! ```

use crate::AbcccParams;
use netgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cube label: the index form of the digit string `x_k … x_0`
/// (`index = Σ x_i · n^i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CubeLabel(pub u64);

impl CubeLabel {
    /// Builds a label from digits, least-significant (level 0) first.
    ///
    /// # Panics
    ///
    /// Panics if the digit count is not `k + 1` or any digit is `≥ n`.
    pub fn from_digits(p: &AbcccParams, digits: &[u32]) -> Self {
        assert_eq!(
            digits.len(),
            p.levels() as usize,
            "expected {} digits",
            p.levels()
        );
        let mut acc = 0u64;
        for (i, &d) in digits.iter().enumerate().rev() {
            assert!(d < p.n(), "digit {d} at level {i} out of base {}", p.n());
            acc = acc * u64::from(p.n()) + u64::from(d);
        }
        CubeLabel(acc)
    }

    /// The digit at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > k`.
    #[inline]
    pub fn digit(self, p: &AbcccParams, level: u32) -> u32 {
        assert!(level <= p.k(), "level {level} out of range");
        let n = u64::from(p.n());
        ((self.0 / n.pow(level)) % n) as u32
    }

    /// A copy of this label with the digit at `level` replaced by `d`.
    ///
    /// # Panics
    ///
    /// Panics if `level > k` or `d ≥ n`.
    #[inline]
    pub fn with_digit(self, p: &AbcccParams, level: u32, d: u32) -> CubeLabel {
        assert!(d < p.n(), "digit {d} out of base {}", p.n());
        let n = u64::from(p.n());
        let pw = n.pow(level);
        let old = self.digit(p, level);
        let delta = (i64::from(d) - i64::from(old)) * pw as i64;
        CubeLabel((self.0 as i64 + delta) as u64)
    }

    /// All digits, least-significant (level 0) first.
    pub fn digits(self, p: &AbcccParams) -> Vec<u32> {
        (0..p.levels()).map(|i| self.digit(p, i)).collect()
    }

    /// The "rest" index: this label with the digit at `level` deleted,
    /// interpreted as a `k`-digit base-`n` number. Two labels map to the
    /// same `(level, rest)` iff they differ only in digit `level` — i.e.
    /// they share a level-`level` switch.
    pub fn rest_index(self, p: &AbcccParams, level: u32) -> u64 {
        let n = u64::from(p.n());
        let pw = n.pow(level);
        let low = self.0 % pw;
        let high = self.0 / (pw * n);
        high * pw + low
    }

    /// Inverse of [`CubeLabel::rest_index`]: reinserts digit `d` at `level`.
    pub fn from_rest(p: &AbcccParams, level: u32, rest: u64, d: u32) -> CubeLabel {
        let n = u64::from(p.n());
        let pw = n.pow(level);
        let low = rest % pw;
        let high = rest / pw;
        CubeLabel(high * pw * n + u64::from(d) * pw + low)
    }

    /// Set of levels where `self` and `other` differ (ascending).
    pub fn differing_levels(self, p: &AbcccParams, other: CubeLabel) -> Vec<u32> {
        (0..p.levels())
            .filter(|&i| self.digit(p, i) != other.digit(p, i))
            .collect()
    }
}

/// A server address `(x, j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServerAddr {
    /// Cube label.
    pub label: CubeLabel,
    /// Group position, `0 ≤ pos < m`.
    pub pos: u32,
}

impl ServerAddr {
    /// Creates a server address, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if the label or position is out of range for `p`.
    pub fn new(p: &AbcccParams, label: CubeLabel, pos: u32) -> Self {
        assert!(label.0 < p.label_space(), "label out of range");
        assert!(pos < p.group_size(), "position {pos} out of range");
        ServerAddr { label, pos }
    }

    /// The flat node id of this server.
    #[inline]
    pub fn node_id(self, p: &AbcccParams) -> NodeId {
        NodeId((self.label.0 * u64::from(p.group_size()) + u64::from(self.pos)) as u32)
    }

    /// Decodes a flat node id back into a server address.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a server id of `p`.
    pub fn from_node_id(p: &AbcccParams, id: NodeId) -> Self {
        let m = u64::from(p.group_size());
        let flat = u64::from(id.0);
        assert!(flat < p.server_count(), "{id} is not a server id");
        ServerAddr {
            label: CubeLabel(flat / m),
            pos: (flat % m) as u32,
        }
    }

    /// Formats with explicit digits, e.g. `s(1,0,3):0` (most-significant
    /// digit first).
    pub fn display(self, p: &AbcccParams) -> String {
        let digits: Vec<String> = self
            .label
            .digits(p)
            .iter()
            .rev()
            .map(u32::to_string)
            .collect();
        format!("s({}):{}", digits.join(","), self.pos)
    }
}

/// A switch address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchAddr {
    /// The crossbar of cube label `x` (absent when the group size is 1).
    Crossbar(CubeLabel),
    /// The level-`level` switch shared by labels with the given rest index.
    Level {
        /// Cube level `0 ≤ level ≤ k`.
        level: u32,
        /// Label with digit `level` deleted.
        rest: u64,
    },
}

impl SwitchAddr {
    /// The flat node id of this switch.
    ///
    /// # Panics
    ///
    /// Panics for a [`SwitchAddr::Crossbar`] when `p.group_size() == 1`
    /// (degenerate crossbars are not materialized), or for out-of-range
    /// fields.
    pub fn node_id(self, p: &AbcccParams) -> NodeId {
        let servers = p.server_count();
        match self {
            SwitchAddr::Crossbar(label) => {
                assert!(p.group_size() > 1, "no crossbars when m = 1");
                assert!(label.0 < p.label_space(), "label out of range");
                NodeId((servers + label.0) as u32)
            }
            SwitchAddr::Level { level, rest } => {
                assert!(level <= p.k(), "level out of range");
                assert!(rest < p.rest_space(), "rest out of range");
                let base = servers + p.crossbar_count();
                NodeId((base + u64::from(level) * p.rest_space() + rest) as u32)
            }
        }
    }

    /// Decodes a flat node id back into a switch address.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a server id or beyond the switch range.
    pub fn from_node_id(p: &AbcccParams, id: NodeId) -> Self {
        let flat = u64::from(id.0);
        let servers = p.server_count();
        assert!(flat >= servers, "{id} is a server id");
        let off = flat - servers;
        if off < p.crossbar_count() {
            SwitchAddr::Crossbar(CubeLabel(off))
        } else {
            let off = off - p.crossbar_count();
            let level = (off / p.rest_space()) as u32;
            assert!(level <= p.k(), "{id} beyond the switch range");
            SwitchAddr::Level {
                level,
                rest: off % p.rest_space(),
            }
        }
    }
}

impl fmt::Display for SwitchAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchAddr::Crossbar(l) => write!(f, "C[{}]", l.0),
            SwitchAddr::Level { level, rest } => write!(f, "S[{level},{rest}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> AbcccParams {
        AbcccParams::new(4, 2, 3).unwrap() // L = 3, m = 2, 128 servers
    }

    #[test]
    fn digit_roundtrip() {
        let p = p();
        let l = CubeLabel::from_digits(&p, &[3, 0, 2]); // x0=3, x1=0, x2=2
        assert_eq!(l.digit(&p, 0), 3);
        assert_eq!(l.digit(&p, 1), 0);
        assert_eq!(l.digit(&p, 2), 2);
        assert_eq!(l.digits(&p), vec![3, 0, 2]);
        assert_eq!(l.0, 3 + 2 * 16);
    }

    #[test]
    fn with_digit() {
        let p = p();
        let l = CubeLabel::from_digits(&p, &[3, 0, 2]);
        let l2 = l.with_digit(&p, 1, 3);
        assert_eq!(l2.digits(&p), vec![3, 3, 2]);
        assert_eq!(l2.with_digit(&p, 1, 0), l);
    }

    #[test]
    fn rest_roundtrip() {
        let p = p();
        for raw in 0..p.label_space() {
            let l = CubeLabel(raw);
            for level in 0..p.levels() {
                let rest = l.rest_index(&p, level);
                assert!(rest < p.rest_space());
                let back = CubeLabel::from_rest(&p, level, rest, l.digit(&p, level));
                assert_eq!(back, l);
            }
        }
    }

    #[test]
    fn same_switch_iff_differ_in_one_digit() {
        let p = p();
        let a = CubeLabel::from_digits(&p, &[1, 2, 3]);
        let b = a.with_digit(&p, 1, 0);
        assert_eq!(a.rest_index(&p, 1), b.rest_index(&p, 1));
        assert_ne!(a.rest_index(&p, 0), b.rest_index(&p, 0));
    }

    #[test]
    fn differing_levels() {
        let p = p();
        let a = CubeLabel::from_digits(&p, &[1, 2, 3]);
        let b = CubeLabel::from_digits(&p, &[1, 0, 0]);
        assert_eq!(a.differing_levels(&p, b), vec![1, 2]);
        assert_eq!(a.differing_levels(&p, a), Vec::<u32>::new());
    }

    #[test]
    fn server_id_roundtrip() {
        let p = p();
        for raw in 0..p.server_count() {
            let id = NodeId(raw as u32);
            let addr = ServerAddr::from_node_id(&p, id);
            assert_eq!(addr.node_id(&p), id);
        }
    }

    #[test]
    fn switch_id_roundtrip() {
        let p = p();
        let total = p.server_count() + p.switch_count();
        for raw in p.server_count()..total {
            let id = NodeId(raw as u32);
            let addr = SwitchAddr::from_node_id(&p, id);
            assert_eq!(addr.node_id(&p), id);
        }
    }

    #[test]
    fn id_ranges_do_not_overlap() {
        let p = p();
        let sv = ServerAddr::new(&p, CubeLabel(5), 1).node_id(&p);
        let cb = SwitchAddr::Crossbar(CubeLabel(5)).node_id(&p);
        let lv = SwitchAddr::Level { level: 0, rest: 5 }.node_id(&p);
        assert!(u64::from(sv.0) < p.server_count());
        assert!(u64::from(cb.0) >= p.server_count());
        assert!(u64::from(lv.0) >= p.server_count() + p.crossbar_count());
    }

    #[test]
    #[should_panic(expected = "no crossbars")]
    fn degenerate_crossbar_id_panics() {
        let p = AbcccParams::new(4, 1, 4).unwrap(); // m = 1
        SwitchAddr::Crossbar(CubeLabel(0)).node_id(&p);
    }

    #[test]
    fn server_display() {
        let p = p();
        let a = ServerAddr::new(&p, CubeLabel::from_digits(&p, &[3, 0, 2]), 1);
        assert_eq!(a.display(&p), "s(2,0,3):1");
    }

    #[test]
    fn switch_display() {
        assert_eq!(SwitchAddr::Crossbar(CubeLabel(7)).to_string(), "C[7]");
        assert_eq!(
            SwitchAddr::Level { level: 2, rest: 9 }.to_string(),
            "S[2,9]"
        );
    }
}
