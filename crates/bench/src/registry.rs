//! The declarative experiment registry.
//!
//! Every table/figure of the evaluation is an [`Experiment`]: a name, a
//! paper reference, a parameter grid per scale [`Preset`], and a point
//! function returning serializable [`Row`]s. The registry is the single
//! index over them — `abccc-cli experiments list|run` and the 20
//! `fig*`/`table*` shim binaries all resolve specs here and hand them to
//! the shared [`engine`](crate::engine).
//!
//! Determinism contract: a point's randomness comes only from
//! [`PointCtx::seed`], derived from the experiment's base seed and the
//! point index — never from thread identity or scheduling — so a run's
//! JSON rows are byte-identical at any worker count.

use crate::cache::{SharedTopo, TopoCache, TopoKey};
use serde::{Serialize, Value};
use std::sync::Arc;

/// Scale preset of an experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Seconds-scale grid for tests and CI gates.
    Tiny,
    /// The grid reproducing the published tables/figures (the historical
    /// per-binary defaults).
    Paper,
    /// A larger grid exercising the library beyond figure sizes.
    Scale,
}

impl Preset {
    /// All presets, smallest first.
    pub const ALL: [Preset; 3] = [Preset::Tiny, Preset::Paper, Preset::Scale];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Preset::Tiny => "tiny",
            Preset::Paper => "paper",
            Preset::Scale => "scale",
        }
    }

    /// Parses a `--preset` value.
    pub fn parse(s: &str) -> Option<Preset> {
        match s {
            "tiny" => Some(Preset::Tiny),
            "paper" => Some(Preset::Paper),
            "scale" => Some(Preset::Scale),
            _ => None,
        }
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One grid point of an experiment: a display label plus the topologies
/// the point will request from the shared cache (declared up front so the
/// engine can prewarm and share them across points and experiments).
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Display label, e.g. `ABCCC(4,2,2)` or `k=3`.
    pub label: String,
    /// Topologies this point reads through the cache.
    pub topos: Vec<TopoKey>,
}

impl PointSpec {
    /// A point with no materialized topology (closed-form sweeps).
    pub fn pure(label: impl Into<String>) -> PointSpec {
        PointSpec {
            label: label.into(),
            topos: Vec::new(),
        }
    }

    /// A point over one topology.
    pub fn on(label: impl Into<String>, key: TopoKey) -> PointSpec {
        PointSpec {
            label: label.into(),
            topos: vec![key],
        }
    }
}

/// Execution context handed to [`Experiment::run_point`].
pub struct PointCtx<'a> {
    /// The preset the grid was generated for.
    pub preset: Preset,
    /// Index of this point in [`Experiment::points`] order.
    pub index: usize,
    /// The point's deterministic seed (see [`Experiment::point_seed`]).
    pub seed: u64,
    /// The run-wide shared topology cache.
    pub cache: &'a TopoCache,
}

impl PointCtx<'_> {
    /// Fetches (or builds) a cached topology.
    ///
    /// # Errors
    ///
    /// Propagates construction failures as a labeled message.
    pub fn topo(&self, key: &TopoKey) -> Result<Arc<SharedTopo>, String> {
        self.cache.get(key)
    }

    /// Fetches a cached ABCCC topology together with its parameters.
    ///
    /// # Errors
    ///
    /// Fails if the parameters are invalid or the key is not ABCCC.
    pub fn abccc(&self, n: u32, k: u32, h: u32) -> Result<Arc<SharedTopo>, String> {
        let t = self.cache.get(&TopoKey::abccc(n, k, h))?;
        if t.abccc().is_none() {
            return Err(format!(
                "ABCCC({n},{k},{h}): cache returned a non-ABCCC entry"
            ));
        }
        Ok(t)
    }
}

/// One output row: aligned table cells plus the JSON records it
/// contributes to the experiment's rows artifact.
///
/// Most experiments contribute exactly one record per table row; sweeps
/// that fan several series into one table line (e.g. `fig1_diameter`)
/// attach one record per series.
#[derive(Debug, Clone)]
pub struct Row {
    /// Table cells, in [`Experiment::headers`] order.
    pub cells: Vec<String>,
    /// JSON records for the rows artifact.
    pub records: Vec<Value>,
}

impl Row {
    /// A row contributing one serializable record.
    pub fn one<T: Serialize>(cells: Vec<String>, record: &T) -> Row {
        Row {
            cells,
            records: vec![record.to_value()],
        }
    }

    /// A row contributing several records (multi-series table lines).
    pub fn with_records<T: Serialize>(cells: Vec<String>, records: &[T]) -> Row {
        Row {
            cells,
            records: records.iter().map(Serialize::to_value).collect(),
        }
    }
}

/// A declarative experiment: everything the engine needs to run one
/// table/figure of the evaluation at any preset.
pub trait Experiment: Sync {
    /// Unique registry name — the historical binary name
    /// (e.g. `fig6_throughput`).
    fn name(&self) -> &'static str;

    /// Paper reference, e.g. `Figure 6` or `Table 1`.
    fn paper_ref(&self) -> &'static str;

    /// One-line description for `experiments list`.
    fn summary(&self) -> &'static str;

    /// Table title printed above the rows.
    fn title(&self, preset: Preset) -> String;

    /// Table column headers.
    fn headers(&self) -> &'static [&'static str];

    /// Shape notes printed after the table (historical stdout footer).
    fn footer(&self, preset: Preset) -> Vec<String> {
        let _ = preset;
        Vec::new()
    }

    /// Base RNG seed, when the experiment is randomized.
    fn base_seed(&self) -> Option<u64> {
        None
    }

    /// Seed for point `index` of a `preset` grid. The default decorrelates
    /// points by mixing the index into the base seed; experiments whose
    /// historical binaries re-seeded every configuration with the same
    /// constant override this to preserve their published numbers.
    fn point_seed(&self, preset: Preset, index: usize) -> u64 {
        let _ = preset;
        mix_seed(self.base_seed().unwrap_or(0), index as u64)
    }

    /// Named parameters recorded in the run manifest.
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)>;

    /// The parameter grid at `preset`.
    fn points(&self, preset: Preset) -> Vec<PointSpec>;

    /// Executes one grid point.
    ///
    /// # Errors
    ///
    /// Returns a message when the point cannot run or an internal
    /// consistency assertion fails; the engine aborts the run and
    /// reports it.
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String>;
}

/// SplitMix64 bijection — decorrelates per-point seed streams.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every registered experiment, in evaluation order (tables first, then
/// figures, then the scale demonstration).
pub fn all() -> &'static [&'static dyn Experiment] {
    crate::experiments::REGISTRY
}

/// Looks up an experiment by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    all().iter().copied().find(|e| e.name() == name)
}

/// Entry point of the `fig*`/`table*` shim binaries: runs the named
/// experiment at the `paper` preset, printing the historical stdout table
/// and honoring `ABCCC_BENCH_JSON` for artifacts. Exits non-zero on
/// failure.
pub fn shim_main(name: &str) {
    let Some(spec) = find(name) else {
        eprintln!("error: experiment `{name}` is not registered");
        std::process::exit(2);
    };
    let opts = crate::engine::RunOptions {
        preset: Preset::Paper,
        json_dir: std::env::var("ABCCC_BENCH_JSON").ok().map(Into::into),
        ..Default::default()
    };
    if let Err(e) = crate::engine::run(&[spec], &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_labels_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::parse(p.label()), Some(p));
        }
        assert_eq!(Preset::parse("huge"), None);
    }

    #[test]
    fn mix_seed_decorrelates_indices() {
        let a = mix_seed(7, 0);
        let b = mix_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, mix_seed(7, 0));
    }

    #[test]
    fn find_resolves_registered_names() {
        assert!(find("fig1_diameter").is_some());
        assert!(find("fig99_nonexistent").is_none());
    }

    #[test]
    fn row_collects_records() {
        #[derive(serde::Serialize)]
        struct P {
            x: u32,
        }
        let r = Row::with_records(vec!["a".into()], &[P { x: 1 }, P { x: 2 }]);
        assert_eq!(r.records.len(), 2);
        let r1 = Row::one(vec!["a".into()], &P { x: 3 });
        assert_eq!(r1.records.len(), 1);
    }
}
