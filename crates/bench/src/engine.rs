//! The shared sweep engine.
//!
//! [`run`] executes a set of registered [`Experiment`]s at one
//! [`Preset`]: it prewarms the unique topologies the grids declare, then
//! spreads every grid point of every experiment over a work-stealing
//! thread pool that shares one [`TopoCache`] — so two experiments sweeping
//! the same `(family, n, k, h)` reuse one constructed `Network` and one
//! fused all-pairs distance sweep instead of rebuilding per binary.
//!
//! Determinism: every point's randomness derives from
//! [`Experiment::point_seed`], and results land in slots indexed by
//! `(experiment, point)` before assembly — so stdout tables and the JSON
//! rows artifacts are byte-identical for a fixed seed at any thread count.
//! Only the `<name>.manifest.json` provenance files carry wall-clock
//! timings and are excluded from that guarantee.

use crate::cache::{TopoCache, TopoKey};
use crate::registry::{Experiment, PointCtx, Preset, Row};
use crate::Table;
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Options for one engine run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Scale preset selecting each experiment's grid.
    pub preset: Preset,
    /// Worker threads; `0` uses the available parallelism.
    pub threads: usize,
    /// Directory for `<name>.json` rows + `<name>.manifest.json`
    /// artifacts; created if missing. `None` writes no artifacts.
    pub json_dir: Option<PathBuf>,
    /// Print each experiment's stdout table + footer + config line.
    pub print_tables: bool,
    /// Print the engine summary line (cache sharing, wall-clock) at the
    /// end of the run.
    pub print_summary: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            preset: Preset::Paper,
            threads: 0,
            json_dir: None,
            print_tables: true,
            print_summary: false,
        }
    }
}

/// Per-experiment outcome of an engine run.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Registry name.
    pub name: &'static str,
    /// Grid points executed.
    pub points: usize,
    /// Table rows produced.
    pub rows: usize,
    /// JSON records contributed to the rows artifact.
    pub records: usize,
}

/// What one engine run did — the logged measurement behind the
/// "one engine run beats 20 sequential binaries" claim.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Preset the run executed.
    pub preset: Preset,
    /// Worker threads used.
    pub threads: usize,
    /// Per-experiment outcomes, in registry order.
    pub experiments: Vec<ExperimentOutcome>,
    /// Topology-cache hits across the run.
    pub cache_hits: u64,
    /// Topology-cache misses (actual constructions).
    pub cache_misses: u64,
    /// Distinct topologies materialized.
    pub cache_entries: usize,
    /// End-to-end wall clock, milliseconds.
    pub wall_ms: f64,
    /// Per-experiment provenance manifests, in registry order — the same
    /// records written as `<name>.manifest.json` under `json_dir`, kept
    /// in memory so callers (the perf sentinel) can consume them without
    /// an artifact directory.
    pub manifests: Vec<dcn_telemetry::RunManifest>,
}

impl EngineReport {
    /// Total grid points executed.
    pub fn total_points(&self) -> usize {
        self.experiments.iter().map(|e| e.points).sum()
    }

    /// Total JSON records produced.
    pub fn total_records(&self) -> usize {
        self.experiments.iter().map(|e| e.records).sum()
    }

    /// The one-line summary printed under `print_summary`.
    pub fn summary_line(&self) -> String {
        format!(
            "engine: {} experiments, {} points, {} records in {:.0} ms \
             (preset={}, threads={}, topo cache: {} built, {} reused)",
            self.experiments.len(),
            self.total_points(),
            self.total_records(),
            self.wall_ms,
            self.preset,
            self.threads,
            self.cache_misses,
            self.cache_hits,
        )
    }
}

/// Resolves `0` to the machine's available parallelism.
fn worker_count(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `specs` at the given options.
///
/// # Errors
///
/// Returns the first failing point (`<experiment>[<label>]: message`) or
/// artifact-write failure. Artifact errors are hard: a missing or
/// unwritable `json_dir` aborts the run instead of silently dropping data.
///
/// # Panics
///
/// Propagates panics from experiment point functions.
pub fn run(specs: &[&'static dyn Experiment], opts: &RunOptions) -> Result<EngineReport, String> {
    let t0 = Instant::now();
    let threads = worker_count(opts.threads);
    let preset = opts.preset;

    // Manifests carry memory provenance (peak RSS + `*_bytes` allocation
    // gauges), and gauges only record while telemetry is on — turn it on
    // for the sweep, restoring the caller's choice afterwards.
    let _telemetry = TelemetryScope::enable();

    // Root of the run's causal span tree. Worker-side spans parent under
    // it explicitly (they run on other threads, where the thread-local
    // stack cannot see it).
    let run_span = dcn_telemetry::SpanGuard::enter("bench.engine.run");
    let run_id = run_span.id();

    // Create the artifact directory up front so write failures surface
    // before any compute is spent.
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create artifact dir {}: {e}", dir.display()))?;
    }

    // Materialize every grid up front; tasks are (experiment, point) pairs.
    let grids: Vec<Vec<crate::registry::PointSpec>> =
        specs.iter().map(|s| s.points(preset)).collect();
    let tasks: Vec<(usize, usize)> = grids
        .iter()
        .enumerate()
        .flat_map(|(si, g)| (0..g.len()).map(move |pi| (si, pi)))
        .collect();

    let cache = TopoCache::new();

    // Phase 1 — prewarm: build each unique declared topology exactly once,
    // in parallel, so no two points race to construct the same key and the
    // expensive builds don't serialize behind unrelated points. Build
    // errors are deferred to the points that actually use the key.
    let unique_keys: Vec<TopoKey> = {
        let mut seen = std::collections::HashSet::new();
        grids
            .iter()
            .flatten()
            .flat_map(|p| p.topos.iter().cloned())
            .filter(|k| seen.insert(k.clone()))
            .collect()
    };
    {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(unique_keys.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = unique_keys.get(i) else { break };
                    let _span =
                        dcn_telemetry::SpanGuard::enter_under("bench.engine.prewarm", run_id);
                    let _ = cache.get(key);
                });
            }
        });
    }

    // Phase 2 — execute every point, work-stealing, results into
    // deterministic (experiment, point)-indexed slots.
    type PointResult = (Result<Vec<Row>, String>, u64);
    let slots: Mutex<Vec<Option<PointResult>>> = Mutex::new(vec![None; tasks.len()]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(tasks.len().max(1)) {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(si, pi)) = tasks.get(t) else { break };
                let spec = specs[si];
                let ctx = PointCtx {
                    preset,
                    index: pi,
                    seed: spec.point_seed(preset, pi),
                    cache: &cache,
                };
                let started = Instant::now();
                let result = {
                    // Two causal levels per point: the experiment the
                    // point belongs to (parented under the run root, so
                    // the tree reads run → experiment → point even
                    // across worker threads), then the point itself.
                    let _exp_span = dcn_telemetry::SpanGuard::enter_under(spec.name(), run_id);
                    let _span = dcn_telemetry::span!("bench.engine.point");
                    spec.run_point(&ctx)
                };
                let dur_ns = started.elapsed().as_nanos() as u64;
                dcn_telemetry::histogram!("bench.engine.point_ns").record(dur_ns);
                slots.lock().expect("slots lock")[t] = Some((result, dur_ns));
            });
        }
    });
    let slots = slots.into_inner().expect("slots lock");

    // Phase 3 — assemble in registry order: tables, artifacts, manifests.
    let mut outcomes = Vec::with_capacity(specs.len());
    let mut manifests = Vec::with_capacity(specs.len());
    let mut slot_base = 0usize;
    for (si, spec) in specs.iter().enumerate() {
        let grid = &grids[si];
        let mut rows: Vec<Row> = Vec::new();
        let mut point_ns: Vec<u64> = Vec::with_capacity(grid.len());
        for pi in 0..grid.len() {
            let (result, dur_ns) = slots[slot_base + pi]
                .clone()
                .unwrap_or_else(|| panic!("point {pi} of {} never ran", spec.name()));
            point_ns.push(dur_ns);
            let mut point_rows =
                result.map_err(|e| format!("{}[{}]: {e}", spec.name(), grid[pi].label))?;
            rows.append(&mut point_rows);
        }
        slot_base += grid.len();

        if opts.print_tables {
            let mut table = Table::new(&spec.title(preset), spec.headers());
            for row in &rows {
                table.add_row(row.cells.clone());
            }
            table.print();
            for line in spec.footer(preset) {
                println!("{line}");
            }
        }

        let manifest = build_manifest(*spec, preset, grid, &point_ns, threads);
        if opts.print_tables {
            println!("{}", manifest.config_line());
        }

        let records: Vec<Value> = rows
            .iter()
            .flat_map(|r| r.records.iter().cloned())
            .collect();
        let record_count = records.len();
        if let Some(dir) = &opts.json_dir {
            let rows_path = dir.join(format!("{}.json", spec.name()));
            let json = serde_json::to_string_pretty(&Value::Seq(records))
                .map_err(|e| format!("cannot serialize {}: {e}", spec.name()))?;
            std::fs::write(&rows_path, json)
                .map_err(|e| format!("cannot write {}: {e}", rows_path.display()))?;
            let manifest_path = dir.join(format!("{}.manifest.json", spec.name()));
            manifest
                .write(&manifest_path)
                .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;
        }
        manifests.push(manifest);

        outcomes.push(ExperimentOutcome {
            name: spec.name(),
            points: grid.len(),
            rows: rows.len(),
            records: record_count,
        });
    }

    let (cache_hits, cache_misses) = cache.stats();
    let report = EngineReport {
        preset,
        threads,
        experiments: outcomes,
        cache_hits,
        cache_misses,
        cache_entries: cache.len(),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        manifests,
    };
    if opts.print_summary {
        // The trailer carries run provenance (wall clock, worker count,
        // cache traffic) that varies between otherwise identical runs, so
        // it goes to stderr: report stdout stays byte-identical across
        // thread counts.
        eprintln!("{}", report.summary_line());
    }
    Ok(report)
}

/// Re-disables telemetry on drop unless it was already on when the engine
/// started (e.g. under the CLI's `--trace`).
struct TelemetryScope {
    was_on: bool,
}

impl TelemetryScope {
    fn enable() -> TelemetryScope {
        let was_on = dcn_telemetry::enabled();
        dcn_telemetry::set_enabled(true);
        TelemetryScope { was_on }
    }
}

impl Drop for TelemetryScope {
    fn drop(&mut self) {
        if !self.was_on {
            dcn_telemetry::set_enabled(false);
        }
    }
}

/// Builds the per-experiment provenance manifest: declared parameters,
/// base seed, the distinct topologies the grid touched, and per-point
/// timing as an aggregated phase.
fn build_manifest(
    spec: &dyn Experiment,
    preset: Preset,
    grid: &[crate::registry::PointSpec],
    point_ns: &[u64],
    threads: usize,
) -> dcn_telemetry::RunManifest {
    let mut manifest = dcn_telemetry::RunManifest::new(spec.name());
    manifest.param("preset", preset);
    for (k, v) in spec.manifest_params(preset) {
        manifest.param(k, v);
    }
    if let Some(seed) = spec.base_seed() {
        manifest.seed(seed);
    }
    let mut seen = std::collections::HashSet::new();
    for point in grid {
        for key in &point.topos {
            let label = key.label();
            if seen.insert(label.clone()) {
                manifest.topology(label);
            }
        }
    }
    manifest.phases = vec![dcn_telemetry::PhaseAgg {
        name: "engine.point".to_string(),
        count: point_ns.len() as u64,
        total_ns: point_ns.iter().sum(),
        max_ns: point_ns.iter().copied().max().unwrap_or(0),
        threads: threads.min(point_ns.len().max(1)) as u32,
    }];
    // The sweep interleaves experiments, so per-experiment "wall" time is
    // the summed point time — the thread-count-independent figure the
    // perf sentinel guards.
    manifest.wall_ns(point_ns.iter().sum());
    // Memory and histogram provenance: the process high-water mark,
    // whatever `*_bytes` allocation gauges the run's experiments set, and
    // the registry's histogram quantiles (process-level — shared across
    // the manifests of one sweep). Wall-clock, memory and quantiles live
    // only here — never in the row JSON, which must stay byte-identical
    // across runs.
    manifest.measure_memory();
    manifest.capture_histograms();
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_resolves_zero() {
        assert!(worker_count(0) >= 1);
        assert_eq!(worker_count(3), 3);
    }

    #[test]
    fn default_options_print_tables_only() {
        let opts = RunOptions::default();
        assert_eq!(opts.preset, Preset::Paper);
        assert!(opts.print_tables);
        assert!(!opts.print_summary);
        assert!(opts.json_dir.is_none());
    }

    #[test]
    fn summary_line_reports_cache_sharing() {
        let report = EngineReport {
            preset: Preset::Tiny,
            threads: 4,
            experiments: vec![ExperimentOutcome {
                name: "x",
                points: 2,
                rows: 3,
                records: 4,
            }],
            cache_hits: 7,
            cache_misses: 2,
            cache_entries: 2,
            wall_ms: 12.0,
            manifests: Vec::new(),
        };
        let line = report.summary_line();
        assert!(line.contains("1 experiments"));
        assert!(line.contains("2 built, 7 reused"));
        assert_eq!(report.total_points(), 2);
        assert_eq!(report.total_records(), 4);
    }
}
