//! # abccc-bench — the experiment harness
//!
//! Every table/figure of the ABCCC evaluation is a registered
//! [`registry::Experiment`] (see `EXPERIMENTS.md` at the repository root
//! for the index). The [`engine`] executes any set of them at a chosen
//! [`registry::Preset`] with a shared topology [`cache`] and
//! work-stealing parallelism; each experiment prints its paper-style
//! stdout table and, when a JSON directory is given, drops a
//! deterministic rows artifact plus a provenance manifest there.
//!
//! The historical one-binary-per-figure entry points still exist as thin
//! shims over the registry. Run e.g.:
//!
//! ```text
//! cargo run -p abccc-cli --release -- experiments run --all --preset tiny
//! cargo run -p abccc-bench --release --bin fig6_throughput
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod experiments;
pub mod registry;

use serde::Serialize;

/// A fixed-width text table that prints like the paper's tables.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Writes a JSON artifact next to the table when `ABCCC_BENCH_JSON` is set
/// to a directory; silently skips otherwise.
pub fn emit_json<T: Serialize>(name: &str, value: &T) {
    let Ok(dir) = std::env::var("ABCCC_BENCH_JSON") else {
        return;
    };
    let dir = std::path::Path::new(&dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Telemetry wrapper for one experiment binary.
///
/// [`BenchRun::start`] turns recording on; the builder methods collect the
/// run's topology parameters and RNG seed; [`BenchRun::finish`] prints the
/// one-line `config:` echo and — when `ABCCC_BENCH_JSON` names a directory
/// — writes `<name>.manifest.json` (provenance + per-phase timing) and
/// `<name>.metrics.jsonl` (raw span/metric events) next to the data
/// artifacts.
#[derive(Debug)]
pub struct BenchRun {
    manifest: dcn_telemetry::RunManifest,
}

impl BenchRun {
    /// Starts a telemetry-recorded experiment run.
    pub fn start(experiment: &str) -> BenchRun {
        dcn_telemetry::set_enabled(true);
        BenchRun {
            manifest: dcn_telemetry::RunManifest::new(experiment),
        }
    }

    /// Records a named parameter (e.g. `n`, `k`, `h`).
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.manifest.param(key, value);
        self
    }

    /// Records the RNG seed driving the run.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.manifest.seed(seed);
        self
    }

    /// Records a topology the run exercised.
    pub fn topology(&mut self, name: impl Into<String>) -> &mut Self {
        self.manifest.topology(name);
        self
    }

    /// Prints the `config:` line and writes the manifest + metrics
    /// artifacts (when `ABCCC_BENCH_JSON` is set).
    pub fn finish(mut self) {
        let spans = dcn_telemetry::drain_spans();
        let metrics = dcn_telemetry::registry().snapshot();
        self.manifest.set_phases(&spans);
        println!("{}", self.manifest.config_line());
        let Ok(dir) = std::env::var("ABCCC_BENCH_JSON") else {
            return;
        };
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
            return;
        }
        let name = &self.manifest.experiment;
        let manifest_path = dir.join(format!("{name}.manifest.json"));
        if let Err(e) = self.manifest.write(&manifest_path) {
            eprintln!("warning: could not write {}: {e}", manifest_path.display());
        }
        let metrics_path = dir.join(format!("{name}.metrics.jsonl"));
        if let Err(e) = dcn_telemetry::write_jsonl(&metrics_path, &spans, &metrics) {
            eprintln!("warning: could not write {}: {e}", metrics_path.display());
        }
    }
}

/// Formats an f64 with `digits` decimals.
pub fn fmt_f(v: f64, digits: usize) -> String {
    let v = if v == 0.0 { 0.0 } else { v }; // normalize -0.0
    format!("{v:.digits$}")
}

/// Formats an optional value, rendering `None` as `—`.
pub fn fmt_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "—".to_string(), |x| x.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["300".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-header"));
        // All data lines have equal width.
        let lines: Vec<&str> = r.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_opt::<u32>(None), "—");
        assert_eq!(fmt_opt(Some(7)), "7");
    }
}
