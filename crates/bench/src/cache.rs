//! The shared per-run topology cache.
//!
//! Every experiment point that sweeps the same `(family, parameters)`
//! configuration reuses one materialized [`Topology`] — and the expensive
//! derived artifacts (all-pairs [`TopologyStats::measure`] via the fused
//! `DistanceEngine`, exact max-flow bisection) are memoized per topology,
//! so e.g. `table1_properties` and `fig3_bisection` measure
//! `ABCCC(4,2,2)` exactly once per engine run instead of once per binary.

use abccc::{Abccc, AbcccParams};
use dcn_baselines::{
    BCube, BCubeParams, Bccc, BcccParams, DCell, DCellParams, FatTree, FatTreeParams, Hypercube,
    HypercubeParams,
};
use dcn_metrics::TopologyStats;
use netgraph::Topology;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Cache key naming one topology configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopoKey {
    /// `ABCCC(n,k,h)`.
    Abccc {
        /// Switch radix.
        n: u32,
        /// Order.
        k: u32,
        /// NIC ports per server.
        h: u32,
    },
    /// `BCCC(n,k)`.
    Bccc {
        /// Switch radix.
        n: u32,
        /// Order.
        k: u32,
    },
    /// `BCube(n,k)`.
    BCube {
        /// Switch radix.
        n: u32,
        /// Order.
        k: u32,
    },
    /// `DCell(n,k)`.
    DCell {
        /// Switch radix.
        n: u32,
        /// Level.
        k: u32,
    },
    /// `FatTree(p)`.
    FatTree {
        /// Port count.
        p: u32,
    },
    /// Generalized hypercube `GHC(n,d)`.
    Ghc {
        /// Radix per dimension.
        n: u32,
        /// Dimensions.
        d: u32,
    },
}

impl TopoKey {
    /// Shorthand for the ABCCC family.
    pub fn abccc(n: u32, k: u32, h: u32) -> TopoKey {
        TopoKey::Abccc { n, k, h }
    }

    /// Human-readable label, e.g. `ABCCC(4,2,3)`.
    pub fn label(&self) -> String {
        match *self {
            TopoKey::Abccc { n, k, h } => format!("ABCCC({n},{k},{h})"),
            TopoKey::Bccc { n, k } => format!("BCCC({n},{k})"),
            TopoKey::BCube { n, k } => format!("BCube({n},{k})"),
            TopoKey::DCell { n, k } => format!("DCell({n},{k})"),
            TopoKey::FatTree { p } => format!("FatTree({p})"),
            TopoKey::Ghc { n, d } => format!("GHC({n},{d})"),
        }
    }

    fn build(&self) -> Result<BuiltTopo, String> {
        let err = |e: netgraph::NetworkError| format!("{}: {e}", self.label());
        match *self {
            TopoKey::Abccc { n, k, h } => {
                let p = AbcccParams::new(n, k, h).map_err(err)?;
                Ok(BuiltTopo::Abccc(Abccc::new(p).map_err(err)?))
            }
            TopoKey::Bccc { n, k } => {
                let p = BcccParams::new(n, k).map_err(err)?;
                Ok(BuiltTopo::Bccc(Bccc::new(p).map_err(err)?))
            }
            TopoKey::BCube { n, k } => {
                let p = BCubeParams::new(n, k).map_err(err)?;
                Ok(BuiltTopo::BCube(BCube::new(p).map_err(err)?))
            }
            TopoKey::DCell { n, k } => {
                let p = DCellParams::new(n, k).map_err(err)?;
                Ok(BuiltTopo::DCell(DCell::new(p).map_err(err)?))
            }
            TopoKey::FatTree { p } => {
                let fp = FatTreeParams::new(p).map_err(err)?;
                Ok(BuiltTopo::FatTree(FatTree::new(fp).map_err(err)?))
            }
            TopoKey::Ghc { n, d } => {
                let p = HypercubeParams::new(n, d).map_err(err)?;
                Ok(BuiltTopo::Ghc(Hypercube::new(p).map_err(err)?))
            }
        }
    }
}

/// A materialized topology of any family.
#[derive(Debug)]
pub enum BuiltTopo {
    /// The paper's topology.
    Abccc(Abccc),
    /// BCCC baseline.
    Bccc(Bccc),
    /// BCube baseline.
    BCube(BCube),
    /// DCell baseline.
    DCell(DCell),
    /// Fat-tree baseline.
    FatTree(FatTree),
    /// Generalized hypercube baseline.
    Ghc(Hypercube),
}

impl BuiltTopo {
    /// The family-agnostic topology view.
    pub fn as_topology(&self) -> &dyn Topology {
        match self {
            BuiltTopo::Abccc(t) => t,
            BuiltTopo::Bccc(t) => t,
            BuiltTopo::BCube(t) => t,
            BuiltTopo::DCell(t) => t,
            BuiltTopo::FatTree(t) => t,
            BuiltTopo::Ghc(t) => t,
        }
    }
}

/// A cached topology plus its memoized derived measurements.
#[derive(Debug)]
pub struct SharedTopo {
    key: TopoKey,
    built: BuiltTopo,
    stats_quick: OnceLock<TopologyStats>,
    stats_full: OnceLock<TopologyStats>,
    bisection: OnceLock<u64>,
}

impl SharedTopo {
    /// The key this entry was built from.
    pub fn key(&self) -> TopoKey {
        self.key
    }

    /// The family-agnostic topology view.
    pub fn topology(&self) -> &dyn Topology {
        self.built.as_topology()
    }

    /// The concrete ABCCC topology, when this entry is one.
    pub fn abccc(&self) -> Option<&Abccc> {
        match &self.built {
            BuiltTopo::Abccc(t) => Some(t),
            _ => None,
        }
    }

    /// Structural counts without path metrics (memoized).
    pub fn stats_quick(&self) -> &TopologyStats {
        self.stats_quick
            .get_or_init(|| TopologyStats::quick(self.topology()))
    }

    /// Full stats including exact diameter/APL from the fused all-pairs
    /// `DistanceEngine` sweep (memoized — computed once per engine run).
    pub fn stats_full(&self) -> &TopologyStats {
        self.stats_full
            .get_or_init(|| TopologyStats::measure(self.topology()))
    }

    /// Exact max-flow bisection width in links (memoized).
    pub fn exact_bisection(&self) -> u64 {
        *self.bisection.get_or_init(|| {
            dcn_metrics::bisection::exact_bisection_by_id(self.topology().network())
        })
    }
}

/// Concurrent `TopoKey → SharedTopo` cache with hit/miss accounting.
#[derive(Debug, Default)]
pub struct TopoCache {
    map: RwLock<HashMap<TopoKey, Arc<SharedTopo>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TopoCache {
    /// An empty cache.
    pub fn new() -> TopoCache {
        TopoCache::default()
    }

    /// Returns the cached topology for `key`, building it on first use.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (invalid parameters, size guard)
    /// as a labeled message.
    pub fn get(&self, key: TopoKey) -> Result<Arc<SharedTopo>, String> {
        if let Some(hit) = self.map.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock; a racing builder of the same key loses
        // and its duplicate is dropped (first insert wins).
        let built = Arc::new(SharedTopo {
            key,
            built: {
                let _span = dcn_telemetry::span!("bench.cache.build");
                key.build()?
            },
            stats_quick: OnceLock::new(),
            stats_full: OnceLock::new(),
            bisection: OnceLock::new(),
        });
        let mut map = self.map.write().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            built
        });
        Ok(Arc::clone(entry))
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached topologies.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_arc() {
        let cache = TopoCache::new();
        let a = cache.get(TopoKey::abccc(3, 1, 2)).unwrap();
        let b = cache.get(TopoKey::abccc(3, 1, 2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn derived_measurements_are_memoized() {
        let cache = TopoCache::new();
        let t = cache.get(TopoKey::abccc(3, 1, 2)).unwrap();
        let s1 = t.stats_full() as *const _;
        let s2 = t.stats_full() as *const _;
        assert_eq!(s1, s2);
        assert_eq!(t.exact_bisection(), t.exact_bisection());
    }

    #[test]
    fn invalid_key_is_a_labeled_error() {
        let cache = TopoCache::new();
        let e = cache.get(TopoKey::abccc(1, 1, 2)).unwrap_err();
        assert!(e.contains("ABCCC(1,1,2)"), "{e}");
    }

    #[test]
    fn labels_match_topology_names() {
        let cache = TopoCache::new();
        for key in [
            TopoKey::abccc(3, 1, 2),
            TopoKey::Bccc { n: 3, k: 1 },
            TopoKey::BCube { n: 3, k: 1 },
            TopoKey::DCell { n: 3, k: 1 },
            TopoKey::FatTree { p: 4 },
            TopoKey::Ghc { n: 2, d: 3 },
        ] {
            let t = cache.get(key).unwrap();
            assert_eq!(t.topology().name(), key.label());
            assert_eq!(t.key(), key);
        }
    }
}
