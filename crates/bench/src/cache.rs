//! The shared per-run topology cache.
//!
//! Every experiment point that sweeps the same `(family, parameters)`
//! configuration reuses one materialized [`Topology`] — and the expensive
//! derived artifacts (all-pairs [`TopologyStats::measure`] via the fused
//! `DistanceEngine`, exact max-flow bisection) are memoized per topology,
//! so e.g. `table1_properties` and `fig3_bisection` measure
//! `ABCCC(4,2,2)` exactly once per engine run instead of once per binary.
//!
//! Keys are round-trip text specs resolved through the
//! [`dcn_baselines::family`] registry (`abccc:4,2,3`,
//! `jellyfish:v=16,r=4,s=1,seed=7`, …), so the cache supports every
//! registered family without a match arm of its own.

use abccc::{Abccc, AbcccParams};
use dcn_baselines::family::{self, TopologyFamily};
use dcn_metrics::TopologyStats;
use netgraph::Topology;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Cache key naming one topology configuration: a registered family id
/// plus its parameter text.
///
/// The canonical text form is `family:params` (`abccc:4,2,3`); it
/// round-trips through [`fmt::Display`]/[`FromStr`] and is the single spec
/// syntax of the CLI. Constructed keys carry whatever parameter text they
/// were given — even invalid text, so error labels can name the offending
/// configuration — and validation happens when the topology is built or
/// the key is parsed from text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopoKey {
    family: &'static str,
    params: String,
}

impl TopoKey {
    /// A key from a registered family id and raw parameter text. Prefer
    /// the per-family shorthands; this is the escape hatch for spec text.
    pub fn new(family: &'static dyn TopologyFamily, params: impl Into<String>) -> TopoKey {
        TopoKey {
            family: family.name(),
            params: params.into(),
        }
    }

    /// Shorthand for the ABCCC family.
    pub fn abccc(n: u32, k: u32, h: u32) -> TopoKey {
        TopoKey {
            family: "abccc",
            params: format!("{n},{k},{h}"),
        }
    }

    /// Shorthand for the BCCC family.
    pub fn bccc(n: u32, k: u32) -> TopoKey {
        TopoKey {
            family: "bccc",
            params: format!("{n},{k}"),
        }
    }

    /// Shorthand for the BCube family.
    pub fn bcube(n: u32, k: u32) -> TopoKey {
        TopoKey {
            family: "bcube",
            params: format!("{n},{k}"),
        }
    }

    /// Shorthand for the DCell family.
    pub fn dcell(n: u32, k: u32) -> TopoKey {
        TopoKey {
            family: "dcell",
            params: format!("{n},{k}"),
        }
    }

    /// Shorthand for the fat-tree family.
    pub fn fattree(p: u32) -> TopoKey {
        TopoKey {
            family: "fattree",
            params: format!("{p}"),
        }
    }

    /// Shorthand for the generalized hypercube family.
    pub fn ghc(n: u32, d: u32) -> TopoKey {
        TopoKey {
            family: "ghc",
            params: format!("{n},{d}"),
        }
    }

    /// Shorthand for the Jellyfish family.
    pub fn jellyfish(v: u32, r: u32, s: u32, seed: u64) -> TopoKey {
        TopoKey {
            family: "jellyfish",
            params: format!("v={v},r={r},s={s},seed={seed}"),
        }
    }

    /// Shorthand for the Space Shuffle family.
    pub fn spaceshuffle(v: u32, d: u32, s: u32, seed: u64) -> TopoKey {
        TopoKey {
            family: "spaceshuffle",
            params: format!("v={v},d={d},s={s},seed={seed}"),
        }
    }

    /// The registered family id, e.g. `"abccc"`.
    pub fn family(&self) -> &'static str {
        self.family
    }

    /// The parameter text, e.g. `"4,2,3"`.
    pub fn params(&self) -> &str {
        &self.params
    }

    /// The family's registry descriptor.
    pub fn descriptor(&self) -> &'static dyn TopologyFamily {
        family::find(self.family).expect("constructed keys name registered families")
    }

    /// Human-readable label, e.g. `ABCCC(4,2,3)` — formattable even for
    /// invalid parameter text, so error messages can name the key.
    pub fn label(&self) -> String {
        self.descriptor().label(&self.params)
    }

    /// The ABCCC parameters, when this key names the paper's family.
    pub fn as_abccc(&self) -> Option<AbcccParams> {
        if self.family == "abccc" {
            self.params.parse().ok()
        } else {
            None
        }
    }

    pub(crate) fn build(&self) -> Result<Box<dyn Topology + Send + Sync>, String> {
        self.descriptor()
            .build(&self.params)
            .map_err(|e| format!("{}: {e}", self.label()))
    }
}

impl fmt::Display for TopoKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.family, self.params)
    }
}

impl FromStr for TopoKey {
    type Err = String;

    /// Parses and canonicalizes a spec: `abccc:4,2,3`,
    /// `jellyfish:seed=7,r=4,v=256` (key order free — the canonical order
    /// is restored), or the label form `ABCCC(4,2,3)`.
    fn from_str(spec: &str) -> Result<Self, String> {
        let (fam, canonical) = family::parse_spec(spec).map_err(|e| e.to_string())?;
        Ok(TopoKey {
            family: fam.name(),
            params: canonical,
        })
    }
}

impl Serialize for TopoKey {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for TopoKey {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Str(s) => s.parse().map_err(serde::Error),
            _ => Err(serde::Error::expected("topology spec string")),
        }
    }
}

/// A cached topology plus its memoized derived measurements.
pub struct SharedTopo {
    key: TopoKey,
    built: Box<dyn Topology + Send + Sync>,
    stats_quick: OnceLock<TopologyStats>,
    stats_full: OnceLock<TopologyStats>,
    bisection: OnceLock<u64>,
}

impl fmt::Debug for SharedTopo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedTopo")
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

impl SharedTopo {
    /// The key this entry was built from.
    pub fn key(&self) -> &TopoKey {
        &self.key
    }

    /// The family-agnostic topology view (`Sync` so it can be handed
    /// straight to parallel drivers like `CampaignConfig::run_on`).
    pub fn topology(&self) -> &(dyn Topology + Sync) {
        self.built.as_ref()
    }

    /// The concrete ABCCC topology, when this entry is one.
    pub fn abccc(&self) -> Option<&Abccc> {
        self.topology().as_any().downcast_ref::<Abccc>()
    }

    /// Structural counts without path metrics (memoized).
    pub fn stats_quick(&self) -> &TopologyStats {
        self.stats_quick
            .get_or_init(|| TopologyStats::quick(self.topology()))
    }

    /// Full stats including exact diameter/APL from the fused all-pairs
    /// `DistanceEngine` sweep (memoized — computed once per engine run).
    pub fn stats_full(&self) -> &TopologyStats {
        self.stats_full
            .get_or_init(|| TopologyStats::measure(self.topology()))
    }

    /// Exact max-flow bisection width in links (memoized).
    pub fn exact_bisection(&self) -> u64 {
        *self.bisection.get_or_init(|| {
            dcn_metrics::bisection::exact_bisection_by_id(self.topology().network())
        })
    }
}

/// Concurrent `TopoKey → SharedTopo` cache with hit/miss accounting.
#[derive(Debug, Default)]
pub struct TopoCache {
    map: RwLock<HashMap<TopoKey, Arc<SharedTopo>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TopoCache {
    /// An empty cache.
    pub fn new() -> TopoCache {
        TopoCache::default()
    }

    /// Returns the cached topology for `key`, building it on first use.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (invalid parameters, size guard)
    /// as a labeled message.
    pub fn get(&self, key: &TopoKey) -> Result<Arc<SharedTopo>, String> {
        if let Some(hit) = self.map.read().expect("cache lock").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock; a racing builder of the same key loses
        // and its duplicate is dropped (first insert wins).
        let built = Arc::new(SharedTopo {
            key: key.clone(),
            built: {
                let _span = dcn_telemetry::span!("bench.cache.build");
                key.build()?
            },
            stats_quick: OnceLock::new(),
            stats_full: OnceLock::new(),
            bisection: OnceLock::new(),
        });
        let mut map = self.map.write().expect("cache lock");
        let entry = map.entry(key.clone()).or_insert_with(|| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            built
        });
        Ok(Arc::clone(entry))
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached topologies.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_arc() {
        let cache = TopoCache::new();
        let a = cache.get(&TopoKey::abccc(3, 1, 2)).unwrap();
        let b = cache.get(&TopoKey::abccc(3, 1, 2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn derived_measurements_are_memoized() {
        let cache = TopoCache::new();
        let t = cache.get(&TopoKey::abccc(3, 1, 2)).unwrap();
        let s1 = t.stats_full() as *const _;
        let s2 = t.stats_full() as *const _;
        assert_eq!(s1, s2);
        assert_eq!(t.exact_bisection(), t.exact_bisection());
    }

    #[test]
    fn invalid_key_is_a_labeled_error() {
        let cache = TopoCache::new();
        let e = cache.get(&TopoKey::abccc(1, 1, 2)).unwrap_err();
        assert!(e.contains("ABCCC(1,1,2)"), "{e}");
    }

    #[test]
    fn labels_match_topology_names() {
        let cache = TopoCache::new();
        for key in [
            TopoKey::abccc(3, 1, 2),
            TopoKey::bccc(3, 1),
            TopoKey::bcube(3, 1),
            TopoKey::dcell(3, 1),
            TopoKey::fattree(4),
            TopoKey::ghc(2, 3),
            TopoKey::jellyfish(8, 3, 1, 7),
            TopoKey::spaceshuffle(6, 2, 1, 7),
        ] {
            let t = cache.get(&key).unwrap();
            assert_eq!(t.topology().name(), key.label());
            assert_eq!(t.key(), &key);
        }
    }

    #[test]
    fn text_form_round_trips() {
        for key in [
            TopoKey::abccc(4, 2, 3),
            TopoKey::jellyfish(16, 4, 1, 7),
            TopoKey::spaceshuffle(8, 2, 1, 7),
            TopoKey::fattree(8),
        ] {
            let text = key.to_string();
            let back: TopoKey = text.parse().unwrap();
            assert_eq!(back, key);
            // Labels re-parse too.
            let from_label: TopoKey = key.label().parse().unwrap();
            assert_eq!(from_label, key);
        }
        // Key order in keyed specs is free; the canonical order returns.
        let k: TopoKey = "jellyfish:seed=7,r=4,v=256".parse().unwrap();
        assert_eq!(k, TopoKey::jellyfish(256, 4, 1, 7));
        assert_eq!(k.to_string(), "jellyfish:v=256,r=4,s=1,seed=7");
        assert!("martian:4,2".parse::<TopoKey>().is_err());
    }

    #[test]
    fn serde_round_trips_as_spec_string() {
        let key = TopoKey::abccc(4, 2, 3);
        let json = serde_json::to_string(&key).unwrap();
        assert_eq!(json, "\"abccc:4,2,3\"");
        let back: TopoKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, key);
    }

    #[test]
    fn abccc_accessors() {
        let key = TopoKey::abccc(4, 2, 3);
        assert_eq!(key.as_abccc(), Some(AbcccParams::new(4, 2, 3).unwrap()));
        assert_eq!(TopoKey::fattree(4).as_abccc(), None);
        let cache = TopoCache::new();
        assert!(cache.get(&key).unwrap().abccc().is_some());
        assert!(cache.get(&TopoKey::fattree(4)).unwrap().abccc().is_none());
    }
}
