//! The scale demonstration — laptop-scale large instances (10⁵–10⁶ node
//! networks): timed construction, routing throughput, sampled APL.

use super::titled;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use abccc::{Abccc, AbcccParams};
use netgraph::{NodeId, Topology};
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// The deterministic slice of a scale-demo row. Wall-clock build time and
/// routes/s appear only in the stdout table — never in the JSON artifact,
/// which must be byte-identical across runs and thread counts.
#[derive(Serialize)]
struct ScaleRow {
    config: String,
    servers: u64,
    nodes: usize,
    links: usize,
    route_pairs: usize,
    total_hops: u64,
    sampled_apl: f64,
}

/// Scale demonstration — construction and routing well beyond figure sizes.
pub struct ScaleDemo;

impl ScaleDemo {
    fn grid(preset: Preset) -> Vec<(u32, u32, u32)> {
        match preset {
            Preset::Tiny => vec![(8, 2, 2)],
            Preset::Paper => vec![(8, 3, 3), (8, 3, 2), (16, 3, 3), (6, 4, 3)],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push((12, 3, 3));
                g
            }
        }
    }

    fn route_pairs(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 2000,
            Preset::Paper | Preset::Scale => 20_000,
        }
    }

    fn apl_pairs(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 100,
            Preset::Paper | Preset::Scale => 1000,
        }
    }
}

impl Experiment for ScaleDemo {
    fn name(&self) -> &'static str {
        "scale_demo"
    }
    fn paper_ref(&self) -> &'static str {
        "Scale demo"
    }
    fn summary(&self) -> &'static str {
        "construction + routing at 10⁵–10⁶ nodes: build time, routes/s, sampled APL"
    }
    fn title(&self, preset: Preset) -> String {
        titled("Scale demo: construction + routing at large N", preset)
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "config",
            "servers",
            "nodes",
            "links",
            "build ms",
            "routes/s (1-to-1)",
            "sampled APL (1k pairs)",
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(1)
    }
    // The historical binary re-seeded every configuration with seed 1;
    // keep that to preserve the sampled pairs exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        1
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("route_pairs", Self::route_pairs(preset).to_string()),
            ("apl_pairs", Self::apl_pairs(preset).to_string()),
        ]
    }
    // Scale-demo points build their topologies fresh (PointSpec::pure, no
    // cache) — the build itself is the thing being timed, and the large
    // instances should be dropped as soon as the point completes.
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(n, k, h)| PointSpec::pure(format!("ABCCC({n},{k},{h})")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
        let t0 = Instant::now();
        let topo = Abccc::new(p).map_err(|e| format!("{p}: {e}"))?;
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let net = topo.network();

        // Routing throughput (address arithmetic only — no graph walk).
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs: Vec<(NodeId, NodeId)> = (0..Self::route_pairs(ctx.preset))
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..p.server_count()) as u32),
                    NodeId(rng.gen_range(0..p.server_count()) as u32),
                )
            })
            .collect();
        let t1 = Instant::now();
        let mut total_hops = 0u64;
        for &(s, d) in &pairs {
            let r = abccc::DigitRouter::shortest()
                .route_ids(&p, s, d)
                .map_err(|e| format!("{p}: {e}"))?;
            total_hops += abccc::routing::hops(&r) as u64;
        }
        let rps = pairs.len() as f64 / t1.elapsed().as_secs_f64();

        // Sampled APL via the closed-form distance (exact per pair).
        let apl_pairs = Self::apl_pairs(ctx.preset);
        let sampled_apl: f64 = pairs
            .iter()
            .take(apl_pairs)
            .map(|&(s, d)| {
                abccc::routing::distance(
                    &p,
                    abccc::ServerAddr::from_node_id(&p, s),
                    abccc::ServerAddr::from_node_id(&p, d),
                ) as f64
            })
            .sum::<f64>()
            / apl_pairs as f64;

        let row = ScaleRow {
            config: p.to_string(),
            servers: p.server_count(),
            nodes: net.node_count(),
            links: net.link_count(),
            route_pairs: pairs.len(),
            total_hops,
            sampled_apl,
        };
        Ok(vec![Row::one(
            vec![
                row.config.clone(),
                row.servers.to_string(),
                row.nodes.to_string(),
                row.links.to_string(),
                fmt_f(build_ms, 0),
                fmt_f(rps, 0),
                fmt_f(row.sampled_apl, 2),
            ],
            &row,
        )])
    }
}
