//! Fault experiments: Figures 7, 16 and 17 — uniform failure sweeps,
//! correlated outages, and adversarial traffic with VLB insurance, all on
//! the seeded resilience campaign engine / unified `Router` surface.

use super::titled;
use crate::cache::TopoKey;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use abccc::{Abccc, AbcccParams, PermStrategy, ResilientRouter, Router};
use dcn_resilience::{CampaignConfig, PairSampling, RouterSpec, ScenarioKind};
use dcn_workloads::correlated;
use netgraph::{FaultMask, NodeId, Topology};
use rand::{Rng, SeedableRng};
use serde::Serialize;

fn e(err: impl std::fmt::Display) -> String {
    err.to_string()
}

// ---------------------------------------------------------------- Figure 7

#[derive(Serialize)]
struct FaultPoint {
    structure: String,
    class: String,
    rate: f64,
    success_ratio: f64,
    connectivity_ceiling: f64,
    mean_stretch: f64,
    mean_hops_survivors: f64,
    throughput_retention: f64,
    bfs_fallback_share: f64,
}

/// **Figure 7** — routing under growing uniform failure rates.
pub struct Fig7Faults;

struct Fig7Cfg {
    k: u32,
    hs: Vec<u32>,
    rates: Vec<f64>,
    trials: usize,
    pairs: usize,
}

impl Fig7Faults {
    fn cfg(preset: Preset) -> Fig7Cfg {
        match preset {
            Preset::Tiny => Fig7Cfg {
                k: 1,
                hs: vec![2],
                rates: vec![0.0, 0.10],
                trials: 2,
                pairs: 50,
            },
            Preset::Paper => Fig7Cfg {
                k: 2,
                hs: vec![2, 3],
                rates: vec![0.0, 0.05, 0.10, 0.15, 0.20],
                trials: 5,
                pairs: 200,
            },
            Preset::Scale => Fig7Cfg {
                k: 2,
                hs: vec![2, 3, 4],
                rates: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.30],
                trials: 5,
                pairs: 400,
            },
        }
    }

    /// `(h, failed-class, rate)` in the historical row order: per `h`, all
    /// server-failure rates then all switch-failure rates.
    fn grid(preset: Preset) -> Vec<(u32, &'static str, f64)> {
        let cfg = Self::cfg(preset);
        let mut g = Vec::new();
        for &h in &cfg.hs {
            for class in ["servers", "switches"] {
                for &rate in &cfg.rates {
                    g.push((h, class, rate));
                }
            }
        }
        g
    }
}

impl Experiment for Fig7Faults {
    fn name(&self) -> &'static str {
        "fig7_faults"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 7"
    }
    fn summary(&self) -> &'static str {
        "fault sweeps: success ratio, stretch and throughput retention vs failure rate"
    }
    fn title(&self, preset: Preset) -> String {
        let cfg = Self::cfg(preset);
        titled(
            &format!(
                "Figure 7: routing under failures ({} trials × {} pairs per point)",
                cfg.trials, cfg.pairs
            ),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "failed class",
            "rate",
            "success",
            "conn ceiling",
            "stretch",
            "mean hops",
            "tput ret",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: success tracks the connectivity ceiling — the retry ladder".into(),
            " finds a path whenever one exists; stretch and throughput degrade".into(),
            " gracefully as the failure rate grows)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0xFA)
    }
    // The historical binary seeded every campaign from its failure rate
    // alone; keep that to preserve the published numbers exactly.
    fn point_seed(&self, preset: Preset, index: usize) -> u64 {
        let (_, _, rate) = Self::grid(preset)[index];
        (rate * 1000.0) as u64 ^ 0xFA
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let cfg = Self::cfg(preset);
        vec![
            ("n", "4".into()),
            ("k", cfg.k.to_string()),
            (
                "h",
                cfg.hs
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
            ("trials", cfg.trials.to_string()),
            ("pairs_per_trial", cfg.pairs.to_string()),
            (
                "rates",
                format!(
                    "{:.2}..{:.2}",
                    cfg.rates.first().copied().unwrap_or(0.0),
                    cfg.rates.last().copied().unwrap_or(0.0)
                ),
            ),
            ("engine", "resilience campaign".into()),
            ("seed_scheme", "(rate*1000) ^ 0xFA".into()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        let k = Self::cfg(preset).k;
        Self::grid(preset)
            .into_iter()
            .map(|(h, class, rate)| {
                PointSpec::on(
                    format!("ABCCC(4,{k},{h}) {class} rate={rate:.2}"),
                    TopoKey::abccc(4, k, h),
                )
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let cfg = Self::cfg(ctx.preset);
        let (h, class, rate) = Self::grid(ctx.preset)[ctx.index];
        let t = ctx.abccc(4, cfg.k, h)?;
        let topo = t.abccc().ok_or("non-ABCCC cache entry")?;
        let scenario = match class {
            "servers" => ScenarioKind::Uniform {
                server_rate: rate,
                switch_rate: 0.0,
                link_rate: 0.0,
            },
            _ => ScenarioKind::Uniform {
                server_rate: 0.0,
                switch_rate: rate,
                link_rate: 0.0,
            },
        };
        let report = CampaignConfig::new()
            .scenario(scenario)
            .sampling(PairSampling::UniformRandom { pairs: cfg.pairs })
            .trials(cfg.trials)
            .seed(ctx.seed)
            .run_on(topo)
            .map_err(e)?;
        let s = &report.summary;
        let point = FaultPoint {
            structure: report.topology.clone(),
            class: class.to_string(),
            rate,
            success_ratio: s.route_completion,
            connectivity_ceiling: s.connectivity_fraction,
            mean_stretch: s.mean_stretch,
            mean_hops_survivors: report
                .trials
                .iter()
                .map(|t| t.mean_hops / report.trials.len() as f64)
                .sum(),
            throughput_retention: s.throughput_retention,
            bfs_fallback_share: if s.routed == 0 {
                0.0
            } else {
                s.tier_counts.bfs as f64 / s.routed as f64
            },
        };
        Ok(vec![Row::one(
            vec![
                point.structure.clone(),
                point.class.clone(),
                fmt_f(point.rate, 2),
                fmt_f(point.success_ratio, 4),
                fmt_f(point.connectivity_ceiling, 4),
                fmt_f(point.mean_stretch, 3),
                fmt_f(point.mean_hops_survivors, 2),
                fmt_f(point.throughput_retention, 3),
            ],
            &point,
        )])
    }
}

// ---------------------------------------------------------------- Figure 16

#[derive(Serialize)]
struct CorrelatedRow {
    structure: String,
    scenario: String,
    failed_nodes: usize,
    failed_links: usize,
    largest_component: f64,
    routing_success: f64,
}

/// **Figure 16** — correlated outages: rack loss, level outage, bundle cut.
pub struct Fig16Correlated;

struct Fig16Cfg {
    configs: Vec<(u32, u32, u32)>,
    racks: usize,
    bundle: usize,
    pairs: usize,
}

impl Fig16Correlated {
    fn cfg(preset: Preset) -> Fig16Cfg {
        match preset {
            Preset::Tiny => Fig16Cfg {
                configs: vec![(4, 1, 2)],
                racks: 2,
                bundle: 8,
                pairs: 100,
            },
            Preset::Paper => Fig16Cfg {
                configs: vec![(4, 2, 2), (4, 2, 3)],
                racks: 4,
                bundle: 32,
                pairs: 400,
            },
            Preset::Scale => Fig16Cfg {
                configs: vec![(4, 2, 2), (4, 2, 3), (4, 2, 4)],
                racks: 4,
                bundle: 32,
                pairs: 400,
            },
        }
    }

    fn evaluate(
        topo: &Abccc,
        scenario: &str,
        mask: &FaultMask,
        pairs: usize,
    ) -> Result<Row, String> {
        let net = topo.network();
        let frac = netgraph::connectivity::largest_component_server_fraction(net, Some(mask));
        let alive: Vec<NodeId> = net.server_ids().filter(|&s| mask.node_alive(s)).collect();
        if alive.is_empty() {
            return Err(format!("{}: no servers survive `{scenario}`", topo.name()));
        }
        let router = ResilientRouter::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FF);
        let mut ok = 0usize;
        let mut total = 0usize;
        for _ in 0..pairs {
            let s = alive[rng.gen_range(0..alive.len())];
            let d = alive[rng.gen_range(0..alive.len())];
            if s == d {
                continue;
            }
            total += 1;
            if router.route(topo, s, d, Some(mask)).is_ok() {
                ok += 1;
            }
        }
        let row = CorrelatedRow {
            structure: topo.name(),
            scenario: scenario.to_string(),
            failed_nodes: mask.failed_node_count(),
            failed_links: mask.failed_link_count(),
            largest_component: frac,
            routing_success: ok as f64 / total as f64,
        };
        Ok(Row::one(
            vec![
                row.structure.clone(),
                row.scenario.clone(),
                row.failed_nodes.to_string(),
                row.failed_links.to_string(),
                fmt_f(row.largest_component, 3),
                fmt_f(row.routing_success, 3),
            ],
            &row,
        ))
    }
}

impl Experiment for Fig16Correlated {
    fn name(&self) -> &'static str {
        "fig16_correlated"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 16"
    }
    fn summary(&self) -> &'static str {
        "correlated outages: rack loss, level firmware outage, cable-bundle cut"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            &format!(
                "Figure 16: correlated outages ({} alive pairs per scenario)",
                Self::cfg(preset).pairs
            ),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "scenario",
            "nodes down",
            "links down",
            "largest comp",
            "route success",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: rack losses and bundle cuts are absorbed — success tracks the".into(),
            " surviving component. A whole-level outage is the Achilles heel: the cube".into(),
            " partitions into n components, so deployments must diversify per level)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0xFEE1)
    }
    // The historical binary drew all three scenario masks per config from
    // one 0xFEE1 stream; one point per config with that seed preserves the
    // published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0xFEE1
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let cfg = Self::cfg(preset);
        vec![
            ("n", "4".into()),
            ("k", cfg.configs[0].1.to_string()),
            (
                "h",
                cfg.configs
                    .iter()
                    .map(|c| c.2.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
            ("pairs_per_scenario", cfg.pairs.to_string()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::cfg(preset)
            .configs
            .into_iter()
            .map(|(n, k, h)| {
                let key = TopoKey::abccc(n, k, h);
                PointSpec::on(key.label(), key)
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let cfg = Self::cfg(ctx.preset);
        let (n, k, h) = cfg.configs[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(e)?;
        let t = ctx.abccc(n, k, h)?;
        let topo = t.abccc().ok_or("non-ABCCC cache entry")?;
        let net = topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let scenarios = [
            (
                format!("{} racks lost", cfg.racks),
                correlated::fail_abccc_groups(&p, net, cfg.racks, &mut rng),
            ),
            (
                "level-1 firmware outage".to_string(),
                correlated::fail_abccc_level(&p, net, 1),
            ),
            (
                format!("{}-cable bundle cut", cfg.bundle),
                correlated::fail_cable_bundle(net, cfg.bundle, &mut rng),
            ),
        ];
        scenarios
            .iter()
            .map(|(label, mask)| Self::evaluate(topo, label, mask, cfg.pairs))
            .collect()
    }
}

// ---------------------------------------------------------------- Figure 17

#[derive(Serialize)]
struct AdversarialRow {
    structure: String,
    pattern: String,
    router: String,
    aggregate: f64,
    min_rate: f64,
    mean_hops: f64,
    completion_under_faults: f64,
}

const FIG17_SEED: u64 = 0xAD7;
const FIG17_FAULT_RATE: f64 = 0.05;

/// **Figure 17** — adversarial traffic: deterministic vs VLB routing.
pub struct Fig17Adversarial;

struct Fig17Cfg {
    k: u32,
    hs: Vec<u32>,
    faulted_trials: usize,
}

impl Fig17Adversarial {
    fn cfg(preset: Preset) -> Fig17Cfg {
        match preset {
            Preset::Tiny => Fig17Cfg {
                k: 1,
                hs: vec![2],
                faulted_trials: 2,
            },
            Preset::Paper => Fig17Cfg {
                k: 2,
                hs: vec![2, 3],
                faulted_trials: 3,
            },
            Preset::Scale => Fig17Cfg {
                k: 2,
                hs: vec![2, 3, 4],
                faulted_trials: 3,
            },
        }
    }

    /// `(h, pattern-label, sampling, router-label, router)` in the
    /// historical row order.
    fn grid(preset: Preset) -> Vec<(u32, &'static str, PairSampling, &'static str, RouterSpec)> {
        let cfg = Self::cfg(preset);
        let mut g = Vec::new();
        for &h in &cfg.hs {
            for (pattern, sampling) in [
                ("convergent", PairSampling::Convergent),
                ("random perm", PairSampling::Permutation),
            ] {
                g.push((
                    h,
                    pattern,
                    sampling,
                    "direct",
                    RouterSpec::Digit(PermStrategy::DestinationAware),
                ));
                g.push((
                    h,
                    pattern,
                    sampling,
                    "VLB",
                    RouterSpec::Vlb { seed: FIG17_SEED },
                ));
            }
        }
        g
    }
}

impl Experiment for Fig17Adversarial {
    fn name(&self) -> &'static str {
        "fig17_adversarial"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 17"
    }
    fn summary(&self) -> &'static str {
        "adversarial convergent traffic: deterministic routing vs VLB insurance"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 17: adversarial traffic — deterministic vs VLB routing",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "pattern",
            "router",
            "aggregate Gbps",
            "min rate",
            "mean hops",
            "completion@5%",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: VLB is pattern-OBLIVIOUS — its rates are nearly identical on".into(),
            " the crafted and the random pattern, unlike direct routing whose".into(),
            " aggregate collapses between them; the price is ~2× hops and roughly".into(),
            " halved aggregate, the textbook Valiant capacity factor. Use VLB as".into(),
            " insurance against worst-case patterns, not as the default)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(FIG17_SEED)
    }
    // The historical binary seeded every campaign with the same constant;
    // keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        FIG17_SEED
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let cfg = Self::cfg(preset);
        vec![
            ("n", "4".into()),
            ("k", cfg.k.to_string()),
            (
                "h",
                cfg.hs
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
            ("patterns", "convergent random-perm".into()),
            ("engine", "resilience campaign".into()),
            ("fault_rate", fmt_f(FIG17_FAULT_RATE, 2)),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        let k = Self::cfg(preset).k;
        Self::grid(preset)
            .into_iter()
            .map(|(h, pattern, _, router, _)| {
                PointSpec::on(
                    format!("ABCCC(4,{k},{h}) {pattern} {router}"),
                    TopoKey::abccc(4, k, h),
                )
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let cfg = Self::cfg(ctx.preset);
        let (h, pattern, sampling, router_label, router) = Self::grid(ctx.preset)[ctx.index];
        let t = ctx.abccc(4, cfg.k, h)?;
        let topo = t.abccc().ok_or("non-ABCCC cache entry")?;
        let campaign = |switch_rate: f64, trials: usize| {
            CampaignConfig::new()
                .scenario(ScenarioKind::Uniform {
                    server_rate: 0.0,
                    switch_rate,
                    link_rate: 0.0,
                })
                .sampling(sampling)
                .router(router)
                .seed(ctx.seed)
                .trials(trials)
                .run_on(topo)
                .map_err(e)
        };
        // Fault-free pass: the classic figure-17 numbers.
        let clean = campaign(0.0, 1)?;
        // Faulted pass: how many pairs the fault-oblivious router still
        // completes.
        let faulted = campaign(FIG17_FAULT_RATE, cfg.faulted_trials)?;
        let t0 = &clean.trials[0];
        let row = AdversarialRow {
            structure: clean.topology.clone(),
            pattern: pattern.into(),
            router: router_label.into(),
            aggregate: t0.aggregate_rate,
            min_rate: t0.min_rate,
            mean_hops: t0.mean_hops,
            completion_under_faults: faulted.summary.route_completion,
        };
        Ok(vec![Row::one(
            vec![
                row.structure.clone(),
                row.pattern.clone(),
                row.router.clone(),
                fmt_f(row.aggregate, 1),
                fmt_f(row.min_rate, 3),
                fmt_f(row.mean_hops, 2),
                fmt_f(row.completion_under_faults, 3),
            ],
            &row,
        )])
    }
}
