//! The route-server saturation experiment: the `dcn-serve` loopback load
//! generator swept over shard count × connections × batch size.
//!
//! Every row's JSON record carries only deterministic fields — the config
//! echo, request/reject tallies and the FNV reply digest — so artifacts
//! are byte-identical at any engine worker-thread count. Wall-clock
//! throughput and client RTT quantiles appear in the stdout cells only
//! (the `fib_throughput` convention).

use super::titled;
use crate::fmt_f;
use crate::registry::{mix_seed, Experiment, PointCtx, PointSpec, Preset, Row};
use abccc::{Abccc, AbcccParams};
use dcn_fib::RouteService;
use dcn_serve::loadgen::{run_loopback, LoadgenConfig};
use dcn_serve::ServeConfig;
use serde::Serialize;

/// The deterministic slice of a saturation row.
#[derive(Serialize)]
struct ServeRow {
    config: String,
    shards: usize,
    connections: usize,
    frames: usize,
    batch: usize,
    window: usize,
    seed: u64,
    requests: u64,
    ok: u64,
    route_errors: u64,
    rejects: u64,
    digest: String,
}

/// TCP route-server saturation sweep.
pub struct RouteServerExperiment;

impl RouteServerExperiment {
    fn grid(preset: Preset) -> (u32, u32, u32) {
        match preset {
            Preset::Tiny => (2, 2, 2),
            Preset::Paper | Preset::Scale => (3, 2, 2),
        }
    }

    /// Shard counts — one experiment point each.
    fn shard_points(preset: Preset) -> Vec<usize> {
        match preset {
            Preset::Tiny => vec![1, 4],
            Preset::Paper => vec![1, 4, 8],
            Preset::Scale => vec![1, 4, 8, 16],
        }
    }

    /// (connections, batch) combos swept inside each point.
    fn combos(preset: Preset) -> Vec<(usize, usize)> {
        match preset {
            Preset::Tiny => vec![(2, 4), (4, 8)],
            Preset::Paper => vec![(2, 1), (4, 16), (8, 64)],
            // (8, 256) is the saturation point: >1M lookups/s over TCP in
            // release builds (window 8 × batch 256 = 2048, half the budget).
            Preset::Scale => vec![(2, 1), (4, 16), (8, 64), (8, 256)],
        }
    }

    fn frames(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 32,
            Preset::Paper => 256,
            Preset::Scale => 512,
        }
    }

    /// Pipeline window: with the default 4096-item budget, the largest
    /// combo (window × batch = 8 × 64 = 512) never saturates — rejects
    /// would be timing-dependent and break artifact determinism.
    const WINDOW: usize = 8;
}

impl Experiment for RouteServerExperiment {
    fn name(&self) -> &'static str {
        "route_server"
    }
    fn paper_ref(&self) -> &'static str {
        "Route service"
    }
    fn summary(&self) -> &'static str {
        "TCP route-server saturation: shard x connection x batch loopback sweep"
    }
    fn title(&self, preset: Preset) -> String {
        titled("Route server: loopback saturation sweep", preset)
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "config",
            "shards",
            "conns",
            "batch",
            "requests",
            "rejects",
            "lookups/s",
            "rtt p50 ns",
            "rtt p99 ns",
            "digest",
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(25)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("frames", Self::frames(preset).to_string()),
            ("window", Self::WINDOW.to_string()),
        ]
    }
    // Each combo compiles a fresh service (the server consumes it), so
    // points skip the shared topology cache.
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        let (n, k, h) = Self::grid(preset);
        Self::shard_points(preset)
            .into_iter()
            .map(|s| PointSpec::pure(format!("ABCCC({n},{k},{h}) shards={s}")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset);
        let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
        let shards = Self::shard_points(ctx.preset)[ctx.index];
        let frames = Self::frames(ctx.preset);

        let mut rows = Vec::new();
        for (ci, (connections, batch)) in Self::combos(ctx.preset).into_iter().enumerate() {
            let topo = Abccc::new(p).map_err(|e| format!("{p}: {e}"))?;
            let svc = RouteService::compile(topo, shards).map_err(|e| format!("{p}: {e}"))?;
            // Seed from the combo alone, NOT the point: the same combo at
            // a different shard count must reproduce the same digest, so
            // every artifact doubles as a shard-invariance pin.
            let cfg = LoadgenConfig {
                connections,
                frames,
                batch,
                window: Self::WINDOW,
                seed: mix_seed(self.base_seed().unwrap_or(0), ci as u64),
            };
            let (report, drain) = run_loopback(svc, ServeConfig::default(), &cfg)
                .map_err(|e| format!("{p} shards={shards}: {e}"))?;
            if report.rejects != 0 {
                return Err(format!(
                    "{p} shards={shards}: {} rejects under a window-bounded load",
                    report.rejects
                ));
            }
            if drain.connections != connections {
                return Err(format!(
                    "{p} shards={shards}: drained {} of {connections} connections",
                    drain.connections
                ));
            }
            let row = ServeRow {
                config: p.to_string(),
                shards,
                connections,
                frames,
                batch: report.batch,
                window: report.window,
                seed: cfg.seed,
                requests: report.requests,
                ok: report.ok,
                route_errors: report.route_errors,
                rejects: report.rejects,
                digest: report.digest.clone(),
            };
            rows.push(Row::one(
                vec![
                    row.config.clone(),
                    shards.to_string(),
                    connections.to_string(),
                    row.batch.to_string(),
                    row.requests.to_string(),
                    row.rejects.to_string(),
                    fmt_f(report.lookups_per_sec, 0),
                    report.rtt_p50_ns.to_string(),
                    report.rtt_p99_ns.to_string(),
                    row.digest.clone(),
                ],
                &row,
            ));
        }
        Ok(rows)
    }
}
