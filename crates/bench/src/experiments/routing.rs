//! Routing-quality experiments: Figures 5, 8, 9 and 14 — native vs
//! BFS-optimal path length, the digit-permutation strategy studies of the
//! ICC'15 companion, and broadcast/one-to-many trees.

use super::titled;
use crate::cache::TopoKey;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use abccc::{broadcast, routing, AbcccParams, PermStrategy, ServerAddr};
use dcn_metrics::routing_quality;
use dcn_workloads::traffic;
use netgraph::{NodeId, Route};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

fn e(err: impl std::fmt::Display) -> String {
    err.to_string()
}

// ---------------------------------------------------------------- Figure 5

/// **Figure 5** — native routing vs the BFS-optimal baseline.
pub struct Fig5PathLength;

impl Fig5PathLength {
    fn grid(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![TopoKey::abccc(4, 1, 2), TopoKey::bcube(4, 1)],
            Preset::Paper => {
                let mut g: Vec<TopoKey> = [(1, 2), (2, 2), (3, 2), (2, 3), (3, 3), (2, 4), (3, 4)]
                    .iter()
                    .map(|&(k, h)| TopoKey::abccc(4, k, h))
                    .collect();
                g.push(TopoKey::bcube(4, 1));
                g.push(TopoKey::bcube(4, 2));
                g.push(TopoKey::dcell(4, 2));
                g
            }
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push(TopoKey::abccc(4, 4, 3));
                g.push(TopoKey::bcube(4, 3));
                g
            }
        }
    }

    fn pairs(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 100,
            Preset::Paper => 1000,
            Preset::Scale => 2000,
        }
    }
}

impl Experiment for Fig5PathLength {
    fn name(&self) -> &'static str {
        "fig5_path_length"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 5"
    }
    fn summary(&self) -> &'static str {
        "native routing vs BFS-optimal over sampled pairs; ABCCC stretch exactly 1"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            &format!(
                "Figure 5: native routing vs BFS-optimal ({} random pairs each)",
                Self::pairs(preset)
            ),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "mean native",
            "mean optimal",
            "stretch",
            "max native",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec!["(shape: ABCCC/BCube stretch = 1.000 exactly; DCellRouting slightly above 1)".into()]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0xF165)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("n", "4".into()),
            ("pairs", Self::pairs(preset).to_string()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec::on(key.label(), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let q = routing_quality(t.topology(), Self::pairs(ctx.preset), &mut rng);
        if let Some(p) = key.as_abccc() {
            if (q.mean_stretch - 1.0).abs() >= 1e-12 {
                return Err(format!("{p}: ABCCC routing must be shortest"));
            }
            if u64::from(q.native_max) > p.diameter() {
                return Err(format!("{p}: exceeded diameter"));
            }
        }
        Ok(vec![Row::one(
            vec![
                q.name.clone(),
                fmt_f(q.native_mean, 3),
                fmt_f(q.optimal_mean, 3),
                fmt_f(q.mean_stretch, 3),
                q.native_max.to_string(),
            ],
            &q,
        )])
    }
}

// ---------------------------------------------------------------- Figure 8

#[derive(Serialize)]
struct PermRow {
    structure: String,
    strategy: String,
    mean_hops: f64,
    mean_crossbar_hops: f64,
    max_hops: u32,
}

/// **Figure 8** — digit-correction permutation strategies (ICC'15).
pub struct Fig8Permutations;

impl Fig8Permutations {
    fn grid(preset: Preset) -> Vec<(u32, u32, u32)> {
        match preset {
            Preset::Tiny => vec![(3, 1, 2)],
            Preset::Paper => vec![(4, 2, 2), (2, 5, 2), (4, 3, 3)],
            Preset::Scale => vec![(4, 2, 2), (2, 5, 2), (4, 3, 3), (4, 3, 4)],
        }
    }

    fn pairs(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 200,
            Preset::Paper | Preset::Scale => 2000,
        }
    }
}

impl Experiment for Fig8Permutations {
    fn name(&self) -> &'static str {
        "fig8_permutations"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 8"
    }
    fn summary(&self) -> &'static str {
        "permutation strategies: mean/max hops and crossbar share per generator"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            &format!(
                "Figure 8: permutation strategies ({} random pairs each)",
                Self::pairs(preset)
            ),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "strategy",
            "mean hops",
            "mean crossbar hops",
            "max hops",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: destination-aware ≤ cyclic-from-source < greedy/ascending < random;".into(),
            " the gap is entirely in crossbar hops — level crossings are fixed by the digit set)"
                .into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x9E12)
    }
    // The historical binary re-seeded every configuration with the same
    // constant; keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x9E12
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let configs = Self::grid(preset)
            .iter()
            .map(|&(n, k, h)| format!("({n},{k},{h})"))
            .collect::<Vec<_>>()
            .join(" ");
        vec![
            ("pairs", Self::pairs(preset).to_string()),
            ("configs", configs),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(n, k, h)| {
                let key = TopoKey::abccc(n, k, h);
                PointSpec::on(key.label(), key)
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(e)?;
        let _topo = ctx.abccc(n, k, h)?; // ensures the config materializes
        let pairs = Self::pairs(ctx.preset);
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let sample: Vec<(ServerAddr, ServerAddr)> = (0..pairs)
            .map(|_| {
                let a = rng.gen_range(0..p.server_count());
                let b = loop {
                    let b = rng.gen_range(0..p.server_count());
                    if b != a {
                        break b;
                    }
                };
                (
                    ServerAddr::from_node_id(&p, NodeId(a as u32)),
                    ServerAddr::from_node_id(&p, NodeId(b as u32)),
                )
            })
            .collect();
        let mut rows = Vec::new();
        for strat in PermStrategy::all() {
            let router = abccc::DigitRouter::new(strat);
            let mut hop_sum = 0u64;
            let mut xbar_sum = 0u64;
            let mut max_hops = 0u32;
            for &(src, dst) in &sample {
                let r = router.route_addrs(&p, src, dst);
                let hops = routing::hops(&r) as u32;
                let diff = src.label.differing_levels(&p, dst.label).len() as u32;
                hop_sum += u64::from(hops);
                xbar_sum += u64::from(hops - diff); // crossbar hops = total − level crossings
                max_hops = max_hops.max(hops);
            }
            let row = PermRow {
                structure: p.to_string(),
                strategy: strat.label().to_string(),
                mean_hops: hop_sum as f64 / pairs as f64,
                mean_crossbar_hops: xbar_sum as f64 / pairs as f64,
                max_hops,
            };
            rows.push(Row::one(
                vec![
                    row.structure.clone(),
                    row.strategy.clone(),
                    fmt_f(row.mean_hops, 3),
                    fmt_f(row.mean_crossbar_hops, 3),
                    row.max_hops.to_string(),
                ],
                &row,
            ));
        }
        Ok(rows)
    }
}

// ---------------------------------------------------------------- Figure 9

#[derive(Serialize)]
struct BroadcastRow {
    structure: String,
    servers: u64,
    tree_depth: u32,
    eccentricity: u32,
    one_to_many_dests: usize,
    tree_messages: usize,
    unicast_messages: u64,
}

/// **Figure 9** — one-to-all and one-to-many routing trees.
pub struct Fig9Broadcast;

impl Fig9Broadcast {
    fn grid(preset: Preset) -> Vec<(u32, u32, u32)> {
        match preset {
            Preset::Tiny => vec![(4, 1, 2)],
            Preset::Paper => vec![(4, 1, 2), (4, 2, 2), (4, 2, 3), (2, 4, 3), (4, 2, 4)],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push((4, 3, 3));
                g
            }
        }
    }
}

impl Experiment for Fig9Broadcast {
    fn name(&self) -> &'static str {
        "fig9_broadcast"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 9"
    }
    fn summary(&self) -> &'static str {
        "broadcast-tree depth vs eccentricity; one-to-many savings over unicast"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 9: one-to-all / one-to-many (src = server 0, 32 random dests)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "servers",
            "bcast depth",
            "ecc",
            "tree msgs(1:many)",
            "unicast msgs",
            "saving",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: broadcast depth tracks the eccentricity within +2 crossbar fan-outs;".into(),
            " one-to-many trees send far fewer messages than repeated unicast)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0xB0A5)
    }
    fn manifest_params(&self, _preset: Preset) -> Vec<(&'static str, String)> {
        vec![("src", "0".into()), ("one_to_many_dests", "32".into())]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(n, k, h)| {
                let key = TopoKey::abccc(n, k, h);
                PointSpec::on(key.label(), key)
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(e)?;
        let t = ctx.abccc(n, k, h)?;
        let net = t.topology().network();
        let src = NodeId(0);
        let tree = broadcast::one_to_all(&p, src).map_err(e)?;
        tree.validate(&p).map_err(e)?;
        let ecc = netgraph::bfs::server_eccentricity(net, src)
            .ok_or_else(|| format!("{p}: disconnected"))?;

        // One-to-many to 32 random destinations.
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let servers: Vec<NodeId> = net.server_ids().filter(|&s| s != src).collect();
        let dests: Vec<NodeId> = servers
            .choose_multiple(&mut rng, 32.min(servers.len()))
            .copied()
            .collect();
        let many = broadcast::one_to_many(&p, src, &dests).map_err(e)?;
        many.validate(&p).map_err(e)?;
        let tree_msgs = many.member_count() - 1; // one message per tree edge
        let unicast_msgs: u64 = dests
            .iter()
            .map(|&d| {
                routing::distance(
                    &p,
                    ServerAddr::from_node_id(&p, src),
                    ServerAddr::from_node_id(&p, d),
                )
            })
            .sum();
        let row = BroadcastRow {
            structure: p.to_string(),
            servers: p.server_count(),
            tree_depth: tree.depth(),
            eccentricity: ecc,
            one_to_many_dests: dests.len(),
            tree_messages: tree_msgs,
            unicast_messages: unicast_msgs,
        };
        Ok(vec![Row::one(
            vec![
                row.structure.clone(),
                row.servers.to_string(),
                row.tree_depth.to_string(),
                row.eccentricity.to_string(),
                row.tree_messages.to_string(),
                row.unicast_messages.to_string(),
                fmt_f(
                    1.0 - row.tree_messages as f64 / row.unicast_messages as f64,
                    2,
                ),
            ],
            &row,
        )])
    }
}

// ---------------------------------------------------------------- Figure 14

#[derive(Serialize)]
struct LoadRow {
    structure: String,
    strategy: String,
    max_load: u32,
    imbalance: f64,
    cv: f64,
    mean_hops: f64,
}

/// **Figure 14** — link-load balance of the permutation strategies.
pub struct Fig14LoadBalance;

impl Fig14LoadBalance {
    fn grid(preset: Preset) -> Vec<(u32, u32, u32)> {
        match preset {
            Preset::Tiny => vec![(3, 1, 2)],
            Preset::Paper => vec![(4, 2, 2), (4, 3, 3)],
            Preset::Scale => vec![(4, 2, 2), (4, 3, 3), (4, 3, 4)],
        }
    }
}

impl Experiment for Fig14LoadBalance {
    fn name(&self) -> &'static str {
        "fig14_load_balance"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 14"
    }
    fn summary(&self) -> &'static str {
        "link-load spread of a permutation workload per strategy generator"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 14: link-load balance by permutation strategy (random permutation)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "strategy",
            "max link load",
            "imbalance",
            "cv",
            "mean hops",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: the structure-aware strategies minimize mean path length at a".into(),
            " comparable hot-link load; naive orders pay ~0.5–1.0 extra hops for no".into(),
            " balance gain — permutation choice is a real tunable, per the companion)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x10AD)
    }
    // The historical binary re-seeded every configuration with the same
    // constant; keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x10AD
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let configs = Self::grid(preset)
            .iter()
            .map(|&(n, k, h)| format!("({n},{k},{h})"))
            .collect::<Vec<_>>()
            .join(" ");
        vec![("configs", configs)]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(n, k, h)| {
                let key = TopoKey::abccc(n, k, h);
                PointSpec::on(key.label(), key)
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(e)?;
        let t = ctx.abccc(n, k, h)?;
        let net = t.topology().network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs = traffic::random_permutation(net.server_count(), &mut rng);
        let mut rows = Vec::new();
        for strat in PermStrategy::all() {
            let router = abccc::DigitRouter::new(strat);
            let routes: Vec<Route> = pairs
                .iter()
                .map(|&(s, d)| router.route_ids(&p, s, d).map_err(e))
                .collect::<Result<_, _>>()?;
            let load = dcn_metrics::load::link_load(net, &routes);
            let mean_hops =
                routes.iter().map(routing::hops).sum::<usize>() as f64 / routes.len() as f64;
            let row = LoadRow {
                structure: p.to_string(),
                strategy: strat.label().to_string(),
                max_load: load.max_load,
                imbalance: load.imbalance(),
                cv: load.cv,
                mean_hops,
            };
            rows.push(Row::one(
                vec![
                    row.structure.clone(),
                    row.strategy.clone(),
                    row.max_load.to_string(),
                    fmt_f(row.imbalance, 2),
                    fmt_f(row.cv, 3),
                    fmt_f(row.mean_hops, 3),
                ],
                &row,
            ));
        }
        Ok(rows)
    }
}
