//! The registered experiments — every table/figure of the evaluation as a
//! declarative spec (see [`crate::registry`]). Each module ports the
//! historical `fig*`/`table*` binary: same paper grids, seeds, stdout
//! tables and JSON record shapes, now with `tiny`/`scale` presets and
//! engine-shared topologies.

mod arena;
mod faults;
mod fib;
mod frontier;
mod packet;
mod routing;
mod scale;
mod serve;
mod structural;
mod traffic_arena;
mod traffic_sims;

use crate::registry::{Experiment, Preset};

/// The historical table title for the `paper` preset; other presets get a
/// `[preset]` suffix so reduced/enlarged grids are not mistaken for the
/// published numbers.
pub(crate) fn titled(base: &str, preset: Preset) -> String {
    match preset {
        Preset::Paper => base.to_string(),
        p => format!("{base} [{p}]"),
    }
}

/// Every experiment, in evaluation order: tables first, then figures,
/// then the scale demonstration.
pub static REGISTRY: &[&dyn Experiment] = &[
    &structural::Table1Properties,
    &structural::Table2Capex,
    &structural::Fig1Diameter,
    &structural::Fig2Size,
    &structural::Fig3Bisection,
    &structural::Fig4Expansion,
    &routing::Fig5PathLength,
    &traffic_sims::Fig6Throughput,
    &faults::Fig7Faults,
    &routing::Fig8Permutations,
    &routing::Fig9Broadcast,
    &traffic_sims::Fig10Multipath,
    &packet::Fig11Latency,
    &structural::Fig12Headroom,
    &traffic_sims::Fig13Shuffle,
    &routing::Fig14LoadBalance,
    &packet::Fig15Incast,
    &faults::Fig16Correlated,
    &faults::Fig17Adversarial,
    &scale::ScaleDemo,
    &fib::FibThroughput,
    &frontier::ScaleFrontier,
    &arena::Arena,
    &traffic_arena::TrafficArena,
    &serve::RouteServerExperiment,
];
