//! Flow-level simulation experiments: Figures 6, 10 and 13 — max-min fair
//! throughput by traffic pattern, the multipath striping ablation, and the
//! MapReduce shuffle workload.

use super::titled;
use crate::cache::TopoKey;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use dcn_sim::{FlowSim, FlowSimReport};
use dcn_sim::{FlowSpec, PacketSim, PacketSimConfig};
use dcn_workloads::traffic;
use rand::SeedableRng;
use serde::Serialize;

// ---------------------------------------------------------------- Figure 6

#[derive(Serialize)]
struct PatternRow {
    pattern: String,
    report: FlowSimReport,
}

/// **Figure 6** — aggregate max-min fair throughput by traffic pattern.
pub struct Fig6Throughput;

impl Fig6Throughput {
    fn grid(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![TopoKey::abccc(4, 1, 2), TopoKey::bcube(4, 1)],
            Preset::Paper => vec![
                TopoKey::abccc(4, 2, 2),
                TopoKey::abccc(4, 2, 3),
                TopoKey::abccc(4, 2, 4),
                TopoKey::bcube(4, 2),
                TopoKey::dcell(4, 1),
                TopoKey::fattree(8),
            ],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push(TopoKey::abccc(4, 3, 3));
                g.push(TopoKey::fattree(16));
                g
            }
        }
    }
}

impl Experiment for Fig6Throughput {
    fn name(&self) -> &'static str {
        "fig6_throughput"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 6"
    }
    fn summary(&self) -> &'static str {
        "max-min fair throughput: permutation, bisection, uniform patterns per structure"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 6: max-min fair throughput by traffic pattern (1 Gbps links)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "pattern",
            "flows",
            "aggregate Gbps",
            "per-flow mean",
            "per-flow min",
            "ABT",
            "mean hops",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: per-flow throughput rises with h — shorter paths contend less;".into(),
            " fat-tree wins per-flow at equal N but at far higher switch cost — see Table 2)"
                .into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x7_86)
    }
    // The historical binary re-seeded every structure with the same
    // constant; keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x7_86
    }
    fn manifest_params(&self, _preset: Preset) -> Vec<(&'static str, String)> {
        vec![("patterns", "permutation bisection uniform-2n".into())]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec::on(key.label(), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let topo = t.topology();
        let n = topo.network().server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let sim = FlowSim::new(topo);
        let patterns: Vec<(&str, Vec<(netgraph::NodeId, netgraph::NodeId)>)> = vec![
            ("permutation", traffic::random_permutation(n, &mut rng)),
            ("bisection", traffic::bisection_pairs(n, &mut rng)),
            ("uniform-2n", traffic::uniform_random(n, 2 * n, &mut rng)),
        ];
        let mut rows = Vec::new();
        for (name, pairs) in patterns {
            let mut report = sim
                .run(&pairs)
                .map_err(|e| format!("{}: {e}", key.label()))?;
            report.rates.clear(); // keep JSON artifacts small
            let row = PatternRow {
                pattern: name.to_string(),
                report,
            };
            rows.push(Row::one(
                vec![
                    row.report.topology.clone(),
                    row.pattern.clone(),
                    row.report.flows.to_string(),
                    fmt_f(row.report.aggregate_rate, 1),
                    fmt_f(row.report.mean_rate, 3),
                    fmt_f(row.report.min_rate, 3),
                    fmt_f(row.report.abt, 1),
                    fmt_f(row.report.mean_hops, 2),
                ],
                &row,
            ));
        }
        Ok(rows)
    }
}

// ---------------------------------------------------------------- Figure 10

#[derive(Serialize)]
struct MultipathRow {
    structure: String,
    paths: usize,
    aggregate: f64,
    mean: f64,
    min: f64,
    abt: f64,
}

/// **Figure 10** — single-path vs multipath striping.
pub struct Fig10Multipath;

impl Fig10Multipath {
    fn grid(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![TopoKey::abccc(4, 1, 2)],
            Preset::Paper => vec![
                TopoKey::abccc(4, 2, 2),
                TopoKey::abccc(4, 2, 3),
                TopoKey::bcube(4, 2),
            ],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push(TopoKey::abccc(4, 3, 3));
                g
            }
        }
    }
}

impl Experiment for Fig10Multipath {
    fn name(&self) -> &'static str {
        "fig10_multipath"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 10"
    }
    fn summary(&self) -> &'static str {
        "striping across internally disjoint parallel paths vs single-path rates"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 10: single-path vs multipath striping (random permutation)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "paths/flow",
            "aggregate Gbps",
            "per-flow mean",
            "per-flow min",
            "ABT",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: striping lifts aggregate and mean per-flow throughput — the parallel".into(),
            " paths are physically disjoint, so a second path adds NIC-port bandwidth;".into(),
            " max-min fairness can trade some worst-flow rate for that aggregate gain)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x3AB)
    }
    // The historical binary re-seeded every structure with the same
    // constant; keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x3AB
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let structures = Self::grid(preset)
            .iter()
            .map(TopoKey::label)
            .collect::<Vec<_>>()
            .join(" ");
        vec![
            ("paths_per_flow", "1 2 3".into()),
            ("structures", structures),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec::on(key.label(), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let topo = t.topology();
        let n = topo.network().server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs = traffic::random_permutation(n, &mut rng);
        let sim = FlowSim::new(topo);
        let mut rows = Vec::new();
        for paths in [1usize, 2, 3] {
            let report = if paths == 1 {
                sim.run(&pairs)
            } else {
                sim.run_multipath(&pairs, paths)
            }
            .map_err(|e| format!("{}: {e}", key.label()))?;
            let row = MultipathRow {
                structure: report.topology.clone(),
                paths,
                aggregate: report.aggregate_rate,
                mean: report.mean_rate,
                min: report.min_rate,
                abt: report.abt,
            };
            rows.push(Row::one(
                vec![
                    row.structure.clone(),
                    row.paths.to_string(),
                    fmt_f(row.aggregate, 1),
                    fmt_f(row.mean, 3),
                    fmt_f(row.min, 3),
                    fmt_f(row.abt, 1),
                ],
                &row,
            ));
        }
        Ok(rows)
    }
}

// ---------------------------------------------------------------- Figure 13

#[derive(Serialize)]
struct ShuffleRow {
    structure: String,
    flows: usize,
    min_rate: f64,
    flow_shuffle_time: f64,
    fairness: f64,
    pkt_mean_fct_us: Option<f64>,
    pkt_loss: f64,
}

const DATA_GBITS_PER_FLOW: f64 = 1.0;

/// **Figure 13** — MapReduce shuffle completion across the families.
pub struct Fig13Shuffle;

impl Fig13Shuffle {
    /// `(topology, paths_per_flow)` runs, single-path families first, then
    /// the ABCCC multipath lever.
    fn grid(preset: Preset) -> Vec<(TopoKey, usize)> {
        match preset {
            Preset::Tiny => vec![(TopoKey::abccc(4, 1, 2), 1), (TopoKey::abccc(4, 1, 2), 2)],
            Preset::Paper => vec![
                (TopoKey::abccc(4, 2, 2), 1),
                (TopoKey::abccc(4, 2, 3), 1),
                (TopoKey::bcube(4, 2), 1),
                (TopoKey::fattree(8), 1),
                (TopoKey::dcell(4, 1), 1),
                (TopoKey::abccc(4, 2, 2), 2),
                (TopoKey::abccc(4, 2, 3), 3),
            ],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push((TopoKey::abccc(4, 2, 4), 1));
                g.push((TopoKey::abccc(4, 2, 4), 3));
                g
            }
        }
    }
}

impl Experiment for Fig13Shuffle {
    fn name(&self) -> &'static str {
        "fig13_shuffle"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 13"
    }
    fn summary(&self) -> &'static str {
        "MapReduce shuffle: max-min shuffle time, packet-level FCT, Jain fairness"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 13: MapReduce shuffle (m×r bulk transfers, 1 Gbit each)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "flows",
            "min rate Gbps",
            "shuffle time s",
            "Jain fairness",
            "pkt mean FCT µs",
            "pkt loss",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: single-path shuffle is incast-limited and similar across the".into(),
            " server-centric families; striping over ABCCC's disjoint parallel paths".into(),
            " is the lever — it engages all h NIC ports of the hot reducers)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x5_4F)
    }
    // The historical binary re-seeded every run with the same constant;
    // keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x5_4F
    }
    fn manifest_params(&self, _preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("mappers", "8".into()),
            ("reducers", "8".into()),
            ("gbits_per_flow", DATA_GBITS_PER_FLOW.to_string()),
            ("pkt_train", "50".into()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(key, paths)| {
                let label = if paths > 1 {
                    format!("{} ×{paths}path", key.label())
                } else {
                    key.label()
                };
                PointSpec::on(label, key)
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let (key, paths) = &grid[ctx.index];
        let paths = *paths;
        let t = ctx.topo(key)?;
        let topo = t.topology();
        let n = topo.network().server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        // Fixed 8×8 shuffle so every structure carries the same job.
        let (mappers, reducers) = (8.min(n / 2 - 1), 8.min(n / 2 - 1));
        let pairs = traffic::shuffle(n, mappers, reducers, &mut rng);
        let err = |e: netgraph::RouteError| format!("{}: {e}", key.label());

        let flow = if paths <= 1 {
            FlowSim::new(topo).run(&pairs)
        } else {
            FlowSim::new(topo).run_multipath(&pairs, paths)
        }
        .map_err(err)?;
        // Shuffle finishes when the slowest transfer finishes.
        let shuffle_time = DATA_GBITS_PER_FLOW / flow.min_rate;

        // Packet level: shorter trains (50 pkts) with generous buffers so FCT
        // reflects contention, not loss recovery.
        let specs: Vec<FlowSpec> = pairs
            .iter()
            .map(|&(s, d)| FlowSpec::bulk(s, d, 50))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 1024,
            ..Default::default()
        };
        let pkt = PacketSim::new(topo, cfg).run(&specs).map_err(err)?;

        let row = ShuffleRow {
            structure: if paths > 1 {
                format!("{} ×{paths}path", flow.topology)
            } else {
                flow.topology.clone()
            },
            flows: pairs.len(),
            min_rate: flow.min_rate,
            flow_shuffle_time: shuffle_time,
            fairness: flow.fairness_index(),
            pkt_mean_fct_us: pkt.mean_fct_ns().map(|v| v / 1000.0),
            pkt_loss: pkt.loss_rate(),
        };
        Ok(vec![Row::one(
            vec![
                row.structure.clone(),
                row.flows.to_string(),
                fmt_f(row.min_rate, 3),
                fmt_f(row.flow_shuffle_time, 2),
                fmt_f(row.fairness, 3),
                row.pkt_mean_fct_us.map_or("—".into(), |v| fmt_f(v, 0)),
                fmt_f(row.pkt_loss, 4),
            ],
            &row,
        )])
    }
}
