//! The compiled-forwarding experiment: `dcn-fib` table compilation and
//! route-service throughput against on-demand digit routing, healthy and
//! under faults.

use super::titled;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use abccc::{Abccc, AbcccParams, DigitRouter, RouteTier, Router};
use dcn_fib::RouteService;
use netgraph::{FaultScenario, NodeId, Topology};
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// The deterministic slice of a throughput row. Compile time and
/// lookups/s appear only in the stdout table — never in the JSON
/// artifact, which must be byte-identical across runs and worker counts.
#[derive(Serialize)]
struct FibRow {
    config: String,
    servers: u64,
    table_bytes: u64,
    shards: usize,
    queries: usize,
    total_link_hops: u64,
    healthy_matches: usize,
    faulted_ok: usize,
    faulted_fallbacks: usize,
    faulted_errors: usize,
    patches: usize,
}

/// Compiled forwarding tables vs on-demand routing.
pub struct FibThroughput;

impl FibThroughput {
    fn grid(preset: Preset) -> Vec<(u32, u32, u32)> {
        match preset {
            Preset::Tiny => vec![(2, 2, 2), (3, 1, 2)],
            Preset::Paper => vec![(3, 2, 2), (2, 3, 3), (4, 2, 2)],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push((4, 3, 2));
                g
            }
        }
    }

    fn queries(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 2000,
            Preset::Paper | Preset::Scale => 50_000,
        }
    }

    const SHARDS: usize = 8;
    const FAULT_FRAC: f64 = 0.05;
}

impl Experiment for FibThroughput {
    fn name(&self) -> &'static str {
        "fib_throughput"
    }
    fn paper_ref(&self) -> &'static str {
        "Route service"
    }
    fn summary(&self) -> &'static str {
        "compiled FIB tables + sharded route service vs on-demand digit routing"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Compiled forwarding: FIB compile + route-service throughput",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "config",
            "servers",
            "table KiB",
            "compile ms",
            "batch lookups/s",
            "single lookups/s",
            "on-demand routes/s",
            "faulted lookups/s",
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(21)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("queries", Self::queries(preset).to_string()),
            ("shards", Self::SHARDS.to_string()),
            ("fault_frac", Self::FAULT_FRAC.to_string()),
        ]
    }
    // Points build fresh topologies: the service consumes its topology and
    // the compile itself is part of what the point times.
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(n, k, h)| PointSpec::pure(format!("ABCCC({n},{k},{h})")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
        let topo = Abccc::new(p).map_err(|e| format!("{p}: {e}"))?;

        let t0 = Instant::now();
        let mut svc = RouteService::compile(topo, Self::SHARDS).map_err(|e| format!("{p}: {e}"))?;
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
        let table_bytes = svc.table().bytes() as u64;

        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs: Vec<(NodeId, NodeId)> = (0..Self::queries(ctx.preset))
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..p.server_count()) as u32),
                    NodeId(rng.gen_range(0..p.server_count()) as u32),
                )
            })
            .collect();

        // Healthy plane: batched, then single-query, then on-demand.
        let t1 = Instant::now();
        let batch = svc.query_batch(&pairs);
        let batch_qps = pairs.len() as f64 / t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let mut total_link_hops = 0u64;
        for &(s, d) in &pairs {
            let out = svc.query(s, d).map_err(|e| format!("{p}: {e}"))?;
            total_link_hops += out.route.link_hops() as u64;
        }
        let single_qps = pairs.len() as f64 / t2.elapsed().as_secs_f64();

        let digit = DigitRouter::shortest();
        let topo_ref = svc.topo();
        let t3 = Instant::now();
        let mut healthy_matches = 0usize;
        for (&(s, d), compiled) in pairs.iter().zip(&batch) {
            let want = digit
                .route(topo_ref, s, d, None)
                .map_err(|e| e.to_string())?;
            let got = compiled.as_ref().map_err(|e| e.to_string())?;
            if *got == want {
                healthy_matches += 1;
            }
        }
        let on_demand_qps = pairs.len() as f64 / t3.elapsed().as_secs_f64();
        if healthy_matches != pairs.len() {
            return Err(format!(
                "{p}: {}/{} compiled lookups diverged from DigitRouter",
                pairs.len() - healthy_matches,
                pairs.len()
            ));
        }

        // Faulted plane: 5% server faults, batched lookups with fallback.
        let mask = FaultScenario::seeded(ctx.seed)
            .fail_servers_frac(Self::FAULT_FRAC)
            .build(svc.topo().network());
        svc.apply_mask(mask);
        let t4 = Instant::now();
        let faulted = svc.query_batch(&pairs);
        let faulted_qps = pairs.len() as f64 / t4.elapsed().as_secs_f64();
        let faulted_ok = faulted.iter().filter(|r| r.is_ok()).count();
        let faulted_fallbacks = faulted
            .iter()
            .filter(|r| matches!(r, Ok(o) if o.tier > RouteTier::Primary))
            .count();

        let row = FibRow {
            config: p.to_string(),
            servers: p.server_count(),
            table_bytes,
            shards: svc.shard_count(),
            queries: pairs.len(),
            total_link_hops,
            healthy_matches,
            faulted_ok,
            faulted_fallbacks,
            faulted_errors: pairs.len() - faulted_ok,
            patches: svc.patch_count(),
        };
        Ok(vec![Row::one(
            vec![
                row.config.clone(),
                row.servers.to_string(),
                fmt_f(table_bytes as f64 / 1024.0, 1),
                fmt_f(compile_ms, 2),
                fmt_f(batch_qps, 0),
                fmt_f(single_qps, 0),
                fmt_f(on_demand_qps, 0),
                fmt_f(faulted_qps, 0),
            ],
            &row,
        )])
    }
}
