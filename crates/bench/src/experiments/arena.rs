//! The cross-topology arena: every registered [`TopologyFamily`] sized to
//! a matched server count, compared on structure (diameter, APL,
//! bisection), cost (table-2 CAPEX model), the largest configuration that
//! fits the ABCCC reference budget, and fault-degradation curves from the
//! resilience campaign engine — ABCCC through its router control plane,
//! every other family through its native `route_avoiding` plane.

use super::titled;
use crate::cache::TopoKey;
use crate::fmt_f;
use crate::registry::{mix_seed, Experiment, PointCtx, PointSpec, Preset, Row};
use dcn_baselines::family::{self, TopologyFamily};
use dcn_metrics::{CostModel, TopologyStats};
use dcn_resilience::{CampaignConfig, ScenarioKind};
use serde::Serialize;

fn e(err: impl std::fmt::Display) -> String {
    err.to_string()
}

/// Families in the arena, display order. GHC sits out: its ladder has no
/// configuration near the matched server counts without exploding degree.
const FAMILIES: [&str; 7] = [
    "abccc",
    "bccc",
    "bcube",
    "dcell",
    "fattree",
    "jellyfish",
    "spaceshuffle",
];

#[derive(Serialize)]
struct DegradationPoint {
    rate: f64,
    route_completion: f64,
    connectivity: f64,
    mean_stretch: f64,
}

#[derive(Serialize)]
struct ArenaRecord {
    structure: String,
    family: String,
    spec: String,
    servers: u64,
    diameter_server_hops: Option<u32>,
    avg_path_length: Option<f64>,
    bisection_links: u64,
    capex_total_usd: f64,
    capex_per_server_usd: f64,
    budget_usd: f64,
    budget_spec: Option<String>,
    budget_servers: Option<u64>,
    budget_capex_usd: Option<f64>,
    degradation: Vec<DegradationPoint>,
}

/// **Arena** — the cross-topology CAPEX/resilience report.
pub struct Arena;

struct ArenaCfg {
    target: u64,
    rates: Vec<f64>,
    trials: usize,
    pairs: usize,
}

impl Arena {
    fn cfg(preset: Preset) -> ArenaCfg {
        match preset {
            Preset::Tiny => ArenaCfg {
                target: 16,
                rates: vec![0.0, 0.10],
                trials: 2,
                pairs: 12,
            },
            Preset::Paper => ArenaCfg {
                target: 240,
                rates: vec![0.0, 0.05, 0.10, 0.20],
                trials: 4,
                pairs: 48,
            },
            Preset::Scale => ArenaCfg {
                target: 1024,
                rates: vec![0.0, 0.05, 0.10, 0.20],
                trials: 4,
                pairs: 64,
            },
        }
    }

    /// The family's matched-server-count key at `preset`, from its sizing
    /// ladder. Registered families always have a nonempty ladder.
    fn matched_key(fam: &'static dyn TopologyFamily, preset: Preset) -> TopoKey {
        let params = family::size_for_servers(fam, Self::cfg(preset).target)
            .expect("registered families have nonempty sizing ladders");
        TopoKey::new(fam, params)
    }

    fn grid(preset: Preset) -> Vec<TopoKey> {
        FAMILIES
            .iter()
            .map(|name| {
                let fam = family::find(name).expect("arena family registered");
                Self::matched_key(fam, preset)
            })
            .collect()
    }
}

impl Experiment for Arena {
    fn name(&self) -> &'static str {
        "arena"
    }
    fn paper_ref(&self) -> &'static str {
        "Arena"
    }
    fn summary(&self) -> &'static str {
        "cross-topology arena: 7 families at matched servers and matched CAPEX, with fault-degradation curves"
    }
    fn title(&self, preset: Preset) -> String {
        let target = Self::cfg(preset).target;
        titled(
            &format!("Arena: cross-topology comparison at ~{target} servers"),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "servers",
            "diam",
            "apl",
            "bisect",
            "capex $",
            "$/srv",
            "srv@budget",
            "done@worst",
        ]
    }
    fn footer(&self, preset: Preset) -> Vec<String> {
        let cfg = Self::cfg(preset);
        let worst = cfg.rates.last().copied().unwrap_or(0.0);
        vec![
            "(budget = the ABCCC entry's CAPEX; srv@budget = most servers the family buys within it)".into(),
            format!(
                "(done@worst = route completion at {worst:.0}% uniform server+switch faults; \
                 ABCCC on its resilient router, others on their native routing)",
                worst = worst * 100.0
            ),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0xA12E)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let cfg = Self::cfg(preset);
        vec![
            ("target_servers", cfg.target.to_string()),
            ("fault_rates", format!("{:?}", cfg.rates)),
            ("trials", cfg.trials.to_string()),
            ("pairs", cfg.pairs.to_string()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        let grid = Self::grid(preset);
        let reference = grid[0].clone();
        grid.into_iter()
            .map(|key| {
                let mut topos = vec![key.clone()];
                if key != reference {
                    // Every point prices itself against the ABCCC budget.
                    topos.push(reference.clone());
                }
                PointSpec {
                    label: key.label(),
                    topos,
                }
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let cfg = Self::cfg(ctx.preset);
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let stats = t.stats_full();
        let bisection = t.exact_bisection();
        let cost = CostModel::default();
        let capex = cost.capex(t.stats_quick());

        // Matched-CAPEX sizing: what does this family buy for the ABCCC
        // reference spend at the same target scale?
        let reference = ctx.topo(&grid[0])?;
        let budget = cost.capex(reference.stats_quick()).total();
        let fam = key.descriptor();
        let mut price = |params: &str| -> Option<f64> {
            let built = fam.build(params).ok()?;
            Some(cost.capex(&TopologyStats::quick(built.as_ref())).total())
        };
        let budget_spec =
            family::size_for_budget(fam, cfg.target.saturating_mul(4), budget, &mut price);
        let budget_servers = budget_spec.as_ref().and_then(|p| fam.server_count(p).ok());
        let budget_capex = budget_spec.as_ref().and_then(|p| price(p));

        // Fault-degradation curve over the same campaign engine for every
        // family; the plane (router vs native) is picked by `run_on`.
        let mut degradation = Vec::with_capacity(cfg.rates.len());
        for (i, &rate) in cfg.rates.iter().enumerate() {
            let report = CampaignConfig::new()
                .scenario(ScenarioKind::Uniform {
                    server_rate: rate,
                    switch_rate: rate,
                    link_rate: 0.0,
                })
                .pairs_per_trial(cfg.pairs)
                .trials(cfg.trials)
                .threads(1)
                .seed(mix_seed(ctx.seed, i as u64))
                .measure_throughput(false)
                .run_on(t.topology())
                .map_err(e)?;
            degradation.push(DegradationPoint {
                rate,
                route_completion: report.summary.route_completion,
                connectivity: report.summary.connectivity_fraction,
                mean_stretch: report.summary.mean_stretch,
            });
        }
        let worst_completion = degradation.last().map_or(1.0, |d| d.route_completion);

        let record = ArenaRecord {
            structure: key.label(),
            family: key.family().to_string(),
            spec: key.to_string(),
            servers: stats.servers,
            diameter_server_hops: stats.diameter_server_hops,
            avg_path_length: stats.avg_path_length,
            bisection_links: bisection,
            capex_total_usd: capex.total(),
            capex_per_server_usd: capex.per_server(),
            budget_usd: budget,
            budget_spec: budget_spec.map(|p| format!("{}:{p}", fam.name())),
            budget_servers,
            budget_capex_usd: budget_capex,
            degradation,
        };
        Ok(vec![Row::one(
            vec![
                record.structure.clone(),
                record.servers.to_string(),
                record
                    .diameter_server_hops
                    .map_or("—".into(), |d| d.to_string()),
                record.avg_path_length.map_or("—".into(), |v| fmt_f(v, 2)),
                record.bisection_links.to_string(),
                fmt_f(record.capex_total_usd, 0),
                fmt_f(record.capex_per_server_usd, 2),
                record.budget_servers.map_or("—".into(), |s| s.to_string()),
                fmt_f(worst_completion, 3),
            ],
            &record,
        )])
    }
}
